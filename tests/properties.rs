//! Property-based tests (proptest) on the workspace's core invariants.

use fedtrip_core::algorithms::{weighted_param_average, LocalOutcome};
use fedtrip_data::partition::{HeterogeneityKind, Partition};
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::stats::{ema, quantile, BoxplotSummary};
use fedtrip_tensor::vecops;
use proptest::prelude::*;

fn outcome(params: Vec<f32>, n: usize) -> LocalOutcome {
    LocalOutcome {
        params,
        n_samples: n,
        mean_loss: 0.0,
        iterations: 1,
        train_flops: 0.0,
        aux: None,
        staleness: 0,
        agg_weight: 1.0,
        dense_down: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregation stays inside the convex hull of the client parameters.
    #[test]
    fn aggregation_is_in_convex_hull(
        params in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 1..6),
        weights in prop::collection::vec(1usize..500, 1..6),
    ) {
        let k = params.len().min(weights.len());
        let outcomes: Vec<LocalOutcome> = params[..k]
            .iter()
            .zip(&weights[..k])
            .map(|(p, &w)| outcome(p.clone(), w))
            .collect();
        let avg = weighted_param_average(&outcomes);
        for (dim, &av) in avg.iter().enumerate().take(4) {
            let lo = outcomes.iter().map(|o| o.params[dim]).fold(f32::INFINITY, f32::min);
            let hi = outcomes.iter().map(|o| o.params[dim]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(av >= lo - 1e-4 && av <= hi + 1e-4,
                "dim {dim}: {av} outside [{lo}, {hi}]");
        }
    }

    /// Equal-weight aggregation of identical models is the identity.
    #[test]
    fn aggregation_identity(p in prop::collection::vec(-5.0f32..5.0, 1..64), k in 1usize..5) {
        let outcomes: Vec<LocalOutcome> = (0..k).map(|_| outcome(p.clone(), 10)).collect();
        let avg = weighted_param_average(&outcomes);
        for (a, b) in avg.iter().zip(&p) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// The fused triplet kernel agrees with the naive formulation for all
    /// inputs, and reduces to the proximal kernel at xi = 0.
    #[test]
    fn triplet_kernel_properties(
        w in prop::collection::vec(-3.0f32..3.0, 8),
        glob in prop::collection::vec(-3.0f32..3.0, 8),
        hist in prop::collection::vec(-3.0f32..3.0, 8),
        mu in 0.0f32..3.0,
        xi in 0.0f32..5.0,
    ) {
        let mut fused = vec![0.0f32; 8];
        let mut naive = vec![0.0f32; 8];
        vecops::triplet_adjust(&mut fused, mu, xi, &w, &glob, &hist);
        vecops::triplet_adjust_naive(&mut naive, mu, xi, &w, &glob, &hist);
        for (a, b) in fused.iter().zip(&naive) {
            prop_assert!((a - b).abs() < 1e-4, "fused {a} vs naive {b}");
        }
        let mut prox = vec![0.0f32; 8];
        vecops::prox_adjust(&mut prox, mu, &w, &glob);
        let mut trip0 = vec![0.0f32; 8];
        vecops::triplet_adjust(&mut trip0, mu, 0.0, &w, &glob, &hist);
        prop_assert_eq!(prox, trip0);
    }

    /// Partitions are exact partitions: right sizes, disjoint samples,
    /// ids within pools — for arbitrary client counts and alphas.
    #[test]
    fn partition_invariants(
        n_clients in 2usize..12,
        alpha in 0.05f64..5.0,
        seed in 0u64..1000,
    ) {
        let spec = DatasetKind::MnistLike.spec();
        let p = Partition::build(&spec, HeterogeneityKind::Dirichlet(alpha), n_clients, seed);
        prop_assert_eq!(p.n_clients(), n_clients);
        let mut seen = std::collections::HashSet::new();
        for c in 0..p.n_clients() {
            let refs = p.shard(c);
            prop_assert_eq!(refs.len(), spec.client_samples);
            for r in refs.iter() {
                prop_assert!((r.id as usize) < spec.pool_per_class());
                prop_assert!((r.class as usize) < spec.classes);
                prop_assert!(seen.insert((r.class, r.id)), "duplicate {:?}", r);
            }
        }
    }

    /// Smaller Dirichlet alpha never reduces expected skew (checked on
    /// averages over a few seeds to tame sampling noise).
    #[test]
    fn dirichlet_alpha_orders_skew(seed in 0u64..200) {
        let spec = DatasetKind::MnistLike.spec();
        let skew = |alpha: f64| -> f64 {
            (0..3)
                .map(|i| {
                    Partition::build(
                        &spec,
                        HeterogeneityKind::Dirichlet(alpha),
                        8,
                        seed.wrapping_add(i * 7919),
                    )
                    .skew()
                })
                .sum::<f64>()
                / 3.0
        };
        prop_assert!(skew(0.1) > skew(5.0) - 0.05);
    }

    /// EMA output is bounded by the input range and starts at the first value.
    #[test]
    fn ema_bounded(xs in prop::collection::vec(-100.0f64..100.0, 1..50), alpha in 0.01f64..1.0) {
        let y = ema(&xs, alpha);
        prop_assert_eq!(y.len(), xs.len());
        prop_assert_eq!(y[0], xs[0]);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in y {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// Boxplot quartiles are ordered and bounded by the sample extremes.
    #[test]
    fn boxplot_ordered(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let b = BoxplotSummary::of(&xs);
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.iqr() >= 0.0);
        prop_assert_eq!(b.median, quantile(&xs, 0.5));
    }
}
