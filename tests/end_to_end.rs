//! Cross-crate integration tests: full federated runs through the public
//! facade API at smoke scale.

use fedtrip::prelude::*;
use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_models::ModelKind;

fn smoke_cfg(seed: u64) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 8,
        clients_per_round: 4,
        rounds: 10,
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 10,
        client_samples_override: Some(75),
        eval_every: 1,
        ..SimulationConfig::default()
    }
}

#[test]
fn every_algorithm_learns_above_chance() {
    // 10 classes -> chance is 10%; every method must do much better after
    // 14 smoke rounds. Regularized methods trade early speed for stability,
    // so the bar is deliberately loose (2.5x chance).
    for kind in AlgorithmKind::ALL {
        let mut cfg = smoke_cfg(42);
        cfg.rounds = 14;
        let mut sim = Simulation::new(cfg, kind.build(&HyperParams::default()));
        sim.run();
        let acc = sim.final_accuracy(3);
        assert!(
            acc > 0.25,
            "{} reached only {:.1}% (chance = 10%)",
            kind.name(),
            acc * 100.0
        );
    }
}

#[test]
fn full_run_is_bit_deterministic() {
    for kind in [
        AlgorithmKind::FedTrip,
        AlgorithmKind::Moon,
        AlgorithmKind::Scaffold,
    ] {
        let mut a = Simulation::new(smoke_cfg(7), kind.build(&HyperParams::default()));
        let mut b = Simulation::new(smoke_cfg(7), kind.build(&HyperParams::default()));
        a.run();
        b.run();
        assert_eq!(
            a.global_params(),
            b.global_params(),
            "{} not deterministic",
            kind.name()
        );
    }
}

#[test]
fn fedtrip_tracks_participation_gaps() {
    let mut sim = Simulation::new(
        smoke_cfg(3),
        AlgorithmKind::FedTrip.build(&HyperParams::default()),
    );
    sim.run();
    // every participating client must have stored a historical model of the
    // right size, and its last_round must be its latest selected round
    let n = sim.global_params().len();
    let mut last_seen = [None; 8];
    for r in sim.records() {
        for &c in &r.selected {
            last_seen[c] = Some(r.round);
        }
    }
    for (c, &seen) in last_seen.iter().enumerate() {
        let st = sim.client_states().get(c);
        assert_eq!(st.and_then(|s| s.last_round), seen, "client {c} last_round");
        if seen.is_some() {
            assert_eq!(
                st.and_then(|s| s.historical.as_ref()).map(|h| h.len()),
                Some(n),
                "client {c} historical size"
            );
        }
    }
}

#[test]
fn moon_flops_exceed_fedavg_flops_exceed_zero() {
    let hp = HyperParams::default();
    let mut avg = Simulation::new(smoke_cfg(5), AlgorithmKind::FedAvg.build(&hp));
    let mut moon = Simulation::new(smoke_cfg(5), AlgorithmKind::Moon.build(&hp));
    let mut trip = Simulation::new(smoke_cfg(5), AlgorithmKind::FedTrip.build(&hp));
    avg.run();
    moon.run();
    trip.run();
    let f = |s: &Simulation| s.records().last().unwrap().cum_flops;
    assert!(f(&avg) > 0.0);
    // FedTrip adds only vector ops: a little above FedAvg
    assert!(f(&trip) > f(&avg));
    assert!(f(&trip) < f(&avg) * 1.5, "FedTrip overhead should be small");
    // MOON adds 2 forward passes per sample: far above FedTrip's overhead
    assert!(f(&moon) > f(&trip));
    let moon_overhead = f(&moon) - f(&avg);
    let trip_overhead = f(&trip) - f(&avg);
    assert!(
        moon_overhead > 5.0 * trip_overhead,
        "MOON overhead {moon_overhead} should dwarf FedTrip overhead {trip_overhead}"
    );
}

#[test]
fn communication_accounting_matches_cost_model() {
    let hp = HyperParams::default();
    for (kind, extra_factor) in [
        (AlgorithmKind::FedAvg, 1.0f64),
        (AlgorithmKind::FedTrip, 1.0),
        (AlgorithmKind::Scaffold, 2.0),
        (AlgorithmKind::MimeLite, 2.0),
    ] {
        let mut sim = Simulation::new(smoke_cfg(9), kind.build(&hp));
        sim.run();
        let w_bytes = sim.global_params().len() * 4;
        let expect = (10 * 4) as f64 * 2.0 * w_bytes as f64 * extra_factor;
        let got = sim.records().last().unwrap().cum_comm_bytes;
        assert!(
            (got - expect).abs() < 1.0,
            "{}: comm {got} != expected {expect}",
            kind.name()
        );
    }
}

#[test]
fn experiment_spec_facade_round_trip() {
    let spec = ExperimentSpec::quickstart()
        .with_scale(Scale::Smoke)
        .with_algorithm(AlgorithmKind::FedProx)
        .with_seed(11);
    let records = spec.run();
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.mean_loss.is_finite()));
    // comm and flops are monotone non-decreasing
    for w in records.windows(2) {
        assert!(w[1].cum_comm_bytes >= w[0].cum_comm_bytes);
        assert!(w[1].cum_flops >= w[0].cum_flops);
    }
}

#[test]
fn heterogeneity_hurts_early_convergence() {
    // IID should reach a higher accuracy than Orthogonal-10 at the same
    // early round — the basic premise of the paper's Fig. 1.
    let hp = HyperParams::default();
    let mut cfg_iid = smoke_cfg(21);
    cfg_iid.heterogeneity = HeterogeneityKind::Iid;
    let mut cfg_orth = smoke_cfg(21);
    cfg_orth.heterogeneity = HeterogeneityKind::Orthogonal(8);

    let mut iid = Simulation::new(cfg_iid, AlgorithmKind::FedAvg.build(&hp));
    let mut orth = Simulation::new(cfg_orth, AlgorithmKind::FedAvg.build(&hp));
    iid.run();
    orth.run();
    let a_iid = iid.final_accuracy(3);
    let a_orth = orth.final_accuracy(3);
    assert!(
        a_iid > a_orth,
        "IID ({a_iid:.3}) should beat Orthogonal-8 ({a_orth:.3}) early"
    );
}

#[test]
fn local_epochs_speed_up_early_rounds() {
    let hp = HyperParams::default();
    let mut cfg1 = smoke_cfg(13);
    cfg1.rounds = 5;
    let mut cfg5 = cfg1;
    cfg5.local_epochs = 5;
    let mut e1 = Simulation::new(cfg1, AlgorithmKind::FedTrip.build(&hp));
    let mut e5 = Simulation::new(cfg5, AlgorithmKind::FedTrip.build(&hp));
    e1.run();
    e5.run();
    assert!(
        e5.final_accuracy(2) >= e1.final_accuracy(2),
        "5 local epochs ({:.3}) should not lose to 1 ({:.3}) at round 5",
        e5.final_accuracy(2),
        e1.final_accuracy(2)
    );
}
