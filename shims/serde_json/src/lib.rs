//! Offline stand-in for `serde_json`.
//!
//! Implements compact and pretty JSON printing plus a recursive-descent
//! parser over the [`serde::Value`] model of the sibling `serde` shim, and
//! the [`to_string`] / [`to_string_pretty`] / [`from_str`] / [`json!`]
//! entry points this workspace uses.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Build a [`Value`] literally. Supports `null`, flat `{"key": expr, ...}`
/// objects, `[expr, ...]` arrays, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ------------------------------------------------------------------ printer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 is the shortest representation that round-trips.
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/inf; serde_json prints null too.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(x, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            xs.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let xs = vec![1i32, -5, 42];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,-5,42]");
        let back: Vec<i32> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn round_trip_nested_object() {
        let v = json!({"name": "fedtrip", "mu": 0.4, "rounds": 100u32, "accs": vec![0.1f64, 0.25]});
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back.get("name").and_then(Value::as_str), Some("fedtrip"));
        assert_eq!(back.get("rounds").and_then(Value::as_u64), Some(100));
        let accs = back.get("accs").and_then(Value::as_array).unwrap();
        assert_eq!(accs.len(), 2);
        assert_eq!(accs[1].as_f64(), Some(0.25));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F980}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn parses_standard_json() {
        let v: Value =
            from_str("{\"a\": [1, 2.5, true, null], \"b\": {\"c\": \"\\u0041\"}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Value::as_str),
            Some("A")
        );
    }

    #[test]
    fn big_u64_survives() {
        let big: u64 = (1 << 62) + 7;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }

    #[test]
    fn surrogate_pairs_validated_not_panicking() {
        // valid pair: U+1F600
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        // high surrogate followed by another high surrogate, a non-surrogate
        // escape, or nothing must be a parse error — not an underflow panic
        assert!(from_str::<String>("\"\\ud800\\ud800\"").is_err());
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud800x\"").is_err());
        // lone low surrogate is rejected by char::from_u32
        assert!(from_str::<String>("\"\\udc00\"").is_err());
    }
}
