//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range and collection strategies, and `prop::sample::select`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! sampled inputs' assertion message and the attempt number. Sampling is
//! deterministic — the RNG is seeded from the test's module path and name,
//! so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of proptest's `Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't count the case.
    Reject,
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test identity and attempt number, so each test gets
    /// its own reproducible stream and each attempt fresh inputs.
    pub fn for_case(test_id: &str, attempt: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// A source of sampled values (subset of proptest's `Strategy`).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + off
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.abs_diff(lo) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + off
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.start.abs_diff(self.end) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_signed_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let u = rng.uniform_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Rounding can land exactly on the excluded endpoint (u is
                // in [0, 1) but the fma rounds up); preserve the half-open
                // contract by nudging to the largest value below `end`.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

impl<T: Clone> Strategy for &[T] {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self[rng.below(self.len())].clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let len = self.size.min + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniformly pick one of the given items.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice set");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };

    /// Mirror of proptest's `prelude::prop` module re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __cases_done: u32 = 0;
            let mut __attempts: u64 = 0;
            let __max_attempts: u64 = (__config.cases as u64).saturating_mul(20).max(20);
            while __cases_done < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempts,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __cases_done += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed on attempt {}: {}",
                            stringify!($name), __attempts, msg
                        );
                    }
                }
            }
            assert!(
                __cases_done >= __config.cases,
                "proptest `{}`: only {} of {} cases ran ({} attempts; too many prop_assume! rejects)",
                stringify!($name), __cases_done, __config.cases, __attempts
            );
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __left, __right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if *__left == *__right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if *__left == *__right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled values respect their range bounds.
        #[test]
        fn ranges_respected(x in 3usize..17, y in -2.5f32..2.5, z in 10u64..11) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..=2.5).contains(&y));
            prop_assert_eq!(z, 10);
        }

        /// Vec strategy produces lengths within the size range.
        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u32..100, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&v| v < 100));
        }

        /// Exact-size vec strategy and nested vecs.
        #[test]
        fn nested_exact(grid in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 4), 1..4)) {
            prop_assert!(!grid.is_empty() && grid.len() < 4);
            for row in &grid {
                prop_assert_eq!(row.len(), 4);
            }
        }

        /// select picks only from the provided items.
        #[test]
        fn select_members(k in prop::sample::select(vec![2usize, 5, 10])) {
            prop_assert!(k == 2 || k == 5 || k == 10);
        }

        /// prop_assume! rejections resample instead of failing.
        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = 0.0f64..1.0;
        let mut r1 = TestRng::for_case("case", 1);
        let mut r2 = TestRng::for_case("case", 1);
        for _ in 0..32 {
            assert_eq!(s.sample(&mut r1).to_bits(), s.sample(&mut r2).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
