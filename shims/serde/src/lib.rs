//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable from the build environment, so this shim
//! provides the data-model the workspace needs: a JSON-shaped [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits that convert to and from it,
//! and `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! sibling `serde_derive` shim) for structs with named fields and enums
//! with unit, newtype-tuple, and struct variants.
//!
//! The wire representation matches serde_json's defaults closely enough
//! for this repo's round-trips: structs are objects keyed by field name,
//! unit enum variants are strings, and data-carrying variants are
//! externally tagged single-key objects.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped dynamic value.
///
/// Integers keep their own variants so `u64`/`i64` round-trip exactly
/// (an `f64`-only model would corrupt 64-bit seeds above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (stable output without a map dependency).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            Value::F64(x) if x.fract() == 0.0 && x.abs() < 9.2e18 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 1.9e19 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error::new(format!("expected {what}, got {}", got.kind()))
    }

    pub fn missing_field(field: &str) -> Self {
        Error::new(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a Rust value into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a Rust value from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(x).map_err(|_| Error::new(format!(
                    "integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(x).map_err(|_| Error::new(format!(
                    "integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let xs = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$( $idx , )+].len();
                if xs.len() != expected {
                    return Err(Error::new(format!(
                        "expected array of length {expected}, got {}", xs.len())));
                }
                Ok(($($name::from_value(&xs[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly_above_2_pow_53() {
        let big: u64 = (1 << 60) + 12345;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f32> = None;
        assert!(none.to_value().is_null());
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f32>::from_value(&Value::F64(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn nested_vec_round_trip() {
        let xs: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let v = xs.to_value();
        assert_eq!(Vec::<Vec<u32>>::from_value(&v).unwrap(), xs);
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(bool::from_value(&Value::Str("true".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(false)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn object_get_finds_keys() {
        let v = Value::Object(vec![("a".into(), Value::U64(1)), ("b".into(), Value::Null)]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").unwrap().is_null());
        assert!(v.get("c").is_none());
    }
}
