//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no crates.io access), so this derive
//! parses the item's `proc_macro::TokenStream` by hand and emits impls as
//! source strings. Supported shapes — everything this workspace derives:
//!
//! * structs with named fields → JSON objects keyed by field name;
//! * enums with unit variants (→ `"Variant"` strings), newtype/tuple
//!   variants (→ `{"Variant": value}` / `{"Variant": [values…]}`), and
//!   struct variants (→ `{"Variant": {fields…}}`), externally tagged like
//!   real serde's default representation.
//!
//! Generics and `#[serde(...)]` attributes are not supported and panic
//! with a clear message at expansion time.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    src.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    src.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}

// ------------------------------------------------------------------ parsing

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &mut Tokens) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body (tuple/unit structs \
             are unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Parse `field: Type, ...` out of a braced group, returning field names.
fn parse_named_fields(body: &Group) -> Vec<String> {
    let mut toks: Tokens = body.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let field = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{field}`, got {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(field);
    }
    fields
}

/// Consume type tokens up to (and including) the next comma at angle-depth 0.
fn skip_type(toks: &mut Tokens) {
    let mut angle_depth = 0i32;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

fn parse_variants(body: &Group) -> Vec<Variant> {
    let mut toks: Tokens = body.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let data = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g);
                toks.next();
                VariantData::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                toks.next();
                VariantData::Struct(fields)
            }
            _ => VariantData::Unit,
        };
        // Discriminant values (`Variant = 3`) are not supported; next token
        // must be the separating comma (or end of body).
        match toks.next() {
            None => {
                variants.push(Variant { name, data });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, data });
            }
            other => {
                panic!("serde_derive shim: expected `,` after variant `{name}`, got {other:?}")
            }
        }
    }
    variants
}

/// Number of comma-separated fields in a tuple-variant paren group.
fn count_top_level_fields(g: &Group) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in g.stream() {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

// ------------------------------------------------------------------ codegen

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "entries.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                {pushes}\
                ::serde::Value::Object(entries)\n\
            }}\n\
        }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")\
                 .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                if v.as_object().is_none() {{\n\
                    return ::std::result::Result::Err(::serde::Error::expected(\"object\", v));\n\
                }}\n\
                ::std::result::Result::Ok({name} {{\n\
                    {inits}\
                }})\n\
            }}\n\
        }}"
    )
}

fn bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("x{i}")).collect()
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.data {
            VariantData::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                ));
            }
            VariantData::Tuple(arity) => {
                let binds = bindings(*arity);
                let pat = binds.join(", ");
                let inner = if *arity == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let elems = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Array(vec![{elems}])")
                };
                arms.push_str(&format!(
                    "{name}::{vn}({pat}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n"
                ));
            }
            VariantData::Struct(fields) => {
                let pat = fields.join(", ");
                let entries = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect::<Vec<_>>()
                    .join(", ");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                match self {{\n\
                    {arms}\
                }}\n\
            }}\n\
        }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.data {
            VariantData::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            VariantData::Tuple(arity) => {
                let body = if *arity == 1 {
                    format!(
                        "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                    )
                } else {
                    let elems = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{{\n\
                            let xs = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", inner))?;\n\
                            if xs.len() != {arity} {{\n\
                                return ::std::result::Result::Err(::serde::Error::new(\
                                    format!(\"variant `{vn}` expects {arity} values, got {{}}\", xs.len())));\n\
                            }}\n\
                            ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                        }}"
                    )
                };
                tagged_arms.push_str(&format!("\"{vn}\" => {body},\n"));
            }
            VariantData::Struct(fields) => {
                let inits = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?"
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                    return match s {{\n\
                        {unit_arms}\
                        other => ::std::result::Result::Err(::serde::Error::new(\
                            format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                    }};\n\
                }}\n\
                if let ::std::option::Option::Some(entries) = v.as_object() {{\n\
                    if entries.len() == 1 {{\n\
                        let (tag, inner) = &entries[0];\n\
                        let _ = inner;\n\
                        return match tag.as_str() {{\n\
                            {tagged_arms}\
                            other => ::std::result::Result::Err(::serde::Error::new(\
                                format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                        }};\n\
                    }}\n\
                }}\n\
                ::std::result::Result::Err(::serde::Error::expected(\"`{name}` variant\", v))\n\
            }}\n\
        }}"
    )
}
