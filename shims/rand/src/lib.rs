//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the small slice of the `rand 0.8` API the repo actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`RngCore::next_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! platform-independent, and statistically strong enough for the workspace's
//! moment-matching tests. Streams differ from upstream `StdRng` (which is
//! ChaCha12); nothing in the repo depends on upstream's exact streams.

use std::ops::Range;

/// Core 64-bit generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f32`/`f64`: uniform in `[0, 1)`; integers: full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the bias for the
                // span sizes used here (< 2^32) is far below statistical noise.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
