//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition surface the workspace's `benches/*.rs`
//! files use — `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId` — backed by a simple
//! median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery. Reports `ns/iter` per benchmark to stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches importing `criterion::black_box` work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, self.measurement_time, &mut f);
        println!("  {name}: {report}");
        self
    }

    /// Mirror of `Criterion::sample_size` for config-style use.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Mirror of `Criterion::measurement_time` for config-style use.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self.sample_size, self.measurement_time, &mut f);
        println!("  {}/{}: {report}", self.name, id);
        self
    }

    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let report = run_bench(
            self.sample_size,
            self.measurement_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        println!("  {}/{}: {report}", self.name, id);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, storing per-iteration samples for the report.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that takes long
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(100) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;

        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
            if start.elapsed() > budget_per_sample.saturating_mul(4) {
                break; // this workload blows the budget; stop early
            }
        }
    }
}

struct Report {
    median_ns: f64,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.median_ns >= 1e9 {
            write!(f, "{:.3} s/iter", self.median_ns / 1e9)
        } else if self.median_ns >= 1e6 {
            write!(f, "{:.3} ms/iter", self.median_ns / 1e6)
        } else if self.median_ns >= 1e3 {
            write!(f, "{:.3} us/iter", self.median_ns / 1e3)
        } else {
            write!(f, "{:.1} ns/iter", self.median_ns)
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) -> Report {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        measurement_time,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        return Report { median_ns: 0.0 };
    }
    let mut ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    Report {
        median_ns: ns[ns.len() / 2],
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(smoke, quick);

    #[test]
    fn group_runs_to_completion() {
        smoke();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("gemm", 128).to_string(), "gemm/128");
    }
}
