//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this shim supplies the
//! exact parallel-iterator surface the workspace uses — `par_iter_mut()`,
//! `par_chunks_mut()`, `.enumerate()`, `.map(..).collect()`, `.for_each(..)`
//! — implemented with `std::thread::scope` fan-out over contiguous batches.
//! It is genuinely parallel (one OS thread per available core), preserves
//! item order in `collect`, and degrades to the plain sequential loop for
//! single-item or single-core workloads.
//!
//! Unlike rayon there is no work-stealing: each worker gets a contiguous
//! batch, which is adequate for this repo's uniform per-item workloads
//! (clients of one round, row panels of one GEMM). Nested parallel calls
//! (a GEMM inside a parallel client loop) run sequentially on the worker
//! that issued them — real rayon folds nesting into one global pool; this
//! shim must not multiply threads per nesting level and oversubscribe the
//! machine.

use std::cell::Cell;
use std::thread;

pub mod prelude {
    pub use crate::{IntoParallelRefMutIterator, ParallelSliceMut};
}

/// Number of worker threads to fan out to.
fn max_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads a top-level parallel region fans out to (the shim's
/// analogue of rayon's global-pool size): one per available core.
pub fn current_num_threads() -> usize {
    max_threads()
}

thread_local! {
    /// True on threads already executing inside a parallel region.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` over `items`, in order, on up to `max_threads()` scoped threads.
/// The result vector preserves item order. Called from inside another
/// parallel region, runs sequentially instead of spawning a second level of
/// threads.
fn run_ordered<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 || IN_PARALLEL_REGION.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let per = items.len().div_ceil(threads);
    let mut batches: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<I> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let f = &f;
    let mut out = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                s.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    batch.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// `slice.par_chunks_mut(n)` — parallel disjoint mutable chunks.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParEnumerate<ParChunksMut<'a, T>> {
        ParEnumerate { inner: self }
    }

    fn into_items(self) -> Vec<&'a mut [T]> {
        self.slice.chunks_mut(self.chunk_size).collect()
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_ordered(self.into_items(), f);
    }

    pub fn map<R, F>(self, f: F) -> ParMap<&'a mut [T], F>
    where
        R: Send,
        F: Fn(&mut [T]) -> R + Sync,
    {
        ParMap {
            items: self.into_items(),
            f,
        }
    }
}

/// `.enumerate()` adapter for the chunk/item producers above.
pub struct ParEnumerate<I> {
    inner: I,
}

impl<'a, T: Send> ParEnumerate<ParChunksMut<'a, T>> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let items: Vec<(usize, &'a mut [T])> =
            self.inner.into_items().into_iter().enumerate().collect();
        run_ordered(items, f);
    }

    pub fn map<R, F>(self, f: F) -> ParMap<(usize, &'a mut [T]), F>
    where
        R: Send,
        F: Fn((usize, &mut [T])) -> R + Sync,
    {
        ParMap {
            items: self.inner.into_items().into_iter().enumerate().collect(),
            f,
        }
    }
}

/// `collection.par_iter_mut()` — parallel `&mut` iteration.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            items: self.iter_mut().collect(),
        }
    }
}

pub struct ParIterMut<'a, T> {
    items: Vec<&'a mut T>,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<&'a mut T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        run_ordered(self.items, f);
    }

    pub fn enumerate(self) -> ParEnumIterMut<'a, T> {
        ParEnumIterMut { items: self.items }
    }
}

pub struct ParEnumIterMut<'a, T> {
    items: Vec<&'a mut T>,
}

impl<'a, T: Send> ParEnumIterMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let items: Vec<(usize, &'a mut T)> = self.items.into_iter().enumerate().collect();
        run_ordered(items, f);
    }
}

/// Lazy `.map(..)` holder; consumed by ordered `.collect()` / `.for_each()`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F>
where
    I: Send,
{
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(run_ordered(self.items, self.f))
    }

    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_ordered(self.items, |item| g(f(item)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut v = vec![0u64; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 11);
    }

    #[test]
    fn par_iter_mut_map_collect_preserves_order() {
        let mut v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<i32> = vec![1; 64];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn empty_input_is_fine() {
        let mut v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallelism_runs_sequentially_and_correctly() {
        // An outer parallel loop whose body issues another parallel call —
        // the GEMM-inside-client-loop shape. The inner call must not spawn
        // a second level of threads, and results must still be exact.
        let mut outer: Vec<Vec<u64>> = (0..32).map(|i| vec![i; 64]).collect();
        let sums: Vec<u64> = outer
            .par_iter_mut()
            .map(|row| {
                row.par_chunks_mut(8).enumerate().for_each(|(_, chunk)| {
                    for x in chunk.iter_mut() {
                        *x += 1;
                    }
                });
                row.iter().sum::<u64>()
            })
            .collect();
        let expected: Vec<u64> = (0..32u64).map(|i| (i + 1) * 64).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn worker_flag_does_not_leak_to_fresh_toplevel_calls() {
        // Two successive top-level parallel calls from the main thread must
        // both be allowed to fan out (the flag only marks worker threads).
        for _ in 0..2 {
            let mut v: Vec<usize> = (0..256).collect();
            let out: Vec<usize> = v.par_iter_mut().map(|x| *x + 1).collect();
            assert_eq!(out, (1..257).collect::<Vec<_>>());
        }
    }
}
