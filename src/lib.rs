//! # fedtrip
//!
//! Facade crate for the FedTrip reproduction workspace. Re-exports the
//! public API of every sub-crate so applications can depend on a single
//! crate:
//!
//! ```
//! use fedtrip::prelude::*;
//!
//! let spec = ExperimentSpec::quickstart();
//! assert_eq!(spec.algorithm, AlgorithmKind::FedTrip);
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

#![forbid(unsafe_code)]

pub use fedtrip_core as core;
pub use fedtrip_data as data;
pub use fedtrip_metrics as metrics;
pub use fedtrip_models as models;
pub use fedtrip_tensor as tensor;

/// Commonly used items, re-exported for `use fedtrip::prelude::*`.
pub mod prelude {
    pub use fedtrip_core::algorithms::{AlgorithmKind, FedTripConfig};
    pub use fedtrip_core::compression::{CompressionKind, Compressor};
    pub use fedtrip_core::engine::{RoundRecord, Simulation, SimulationConfig};
    pub use fedtrip_core::experiment::{ExperimentSpec, Scale};
    pub use fedtrip_data::partition::{HeterogeneityKind, Partition};
    pub use fedtrip_data::synth::{DatasetKind, SyntheticVision};
    pub use fedtrip_models::ModelKind;
    pub use fedtrip_tensor::{Sequential, Tensor};
}
