//! Appendix-A cost model exploration for a *custom* configuration.
//!
//! Shows how to price a federated deployment before running it: build the
//! cost model from any model architecture and data plan, then compare every
//! method's per-round attach FLOPs and communication overhead.
//!
//! ```bash
//! cargo run --release --example cost_accounting
//! ```

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::costs::CostModel;
use fedtrip_models::{ModelKind, ModelStats};

fn main() {
    println!("Appendix-A cost model for a custom deployment\n");

    // A hypothetical deployment: CNN, 1200 samples per client, batch 64,
    // 2 local epochs.
    let net = ModelKind::Cnn.build(&[1, 28, 28], 10, 0);
    let stats = ModelStats::of(&net);
    let samples = 1200usize;
    let batch = 64usize;
    let epochs = 2usize;
    let m = CostModel {
        n_params: stats.params,
        fp_per_sample: stats.flops_forward,
        bp_per_sample: stats.flops_backward,
        batch_size: batch,
        local_iterations: samples.div_ceil(batch) * epochs,
        local_samples: samples,
    };

    println!(
        "model: CNN ({} params, {:.2} MFLOPs fwd/sample); {} samples, batch {}, {} epochs",
        m.n_params,
        stats.mflops_forward(),
        samples,
        batch,
        epochs
    );
    println!(
        "baseline training compute: {:.2} GFLOPs/client/round\n",
        m.base_train_flops() / 1e9
    );

    let hp = HyperParams::default();
    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "method", "attach GFLOPs", "% of baseline", "extra comm"
    );
    for kind in AlgorithmKind::ALL {
        let alg = kind.build(&hp);
        let c = alg.attach_cost(&m);
        println!(
            "{:<10} {:>16.4} {:>15.2}% {:>9.2} MB",
            kind.name(),
            c.flops / 1e9,
            100.0 * c.flops / m.base_train_flops(),
            c.extra_comm_bytes() as f64 / 1e6
        );
    }

    println!("\nReading: FedTrip/FedDyn cost 4K|w| (a fraction of a percent of");
    println!("training compute); MOON re-runs two forward passes per sample and");
    println!("costs ~2/3 of an extra training pass; SCAFFOLD/MimeLite double the");
    println!("communication. This is the paper's Table VIII in executable form.");
}
