//! Quickstart: FedTrip vs FedAvg on a non-IID MNIST-like federation.
//!
//! Runs the paper's default cell (CNN, Dir-0.5, 4-of-10 clients) at reduced
//! scale and prints the accuracy trajectory of both methods side by side.
//!
//! ```bash
//! cargo run --release --example quickstart [-- smoke|default|paper]
//! ```

use fedtrip::prelude::*;
use fedtrip_core::engine::rounds_to_accuracy;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);

    let base = ExperimentSpec::quickstart().with_scale(scale);
    println!(
        "FedTrip quickstart — CNN on MNIST-like, Dir-0.5, {}-of-{} clients, {:?} scale\n",
        base.clients_per_round, base.n_clients, scale
    );

    let mut curves = Vec::new();
    for alg in [AlgorithmKind::FedTrip, AlgorithmKind::FedAvg] {
        let spec = base.with_algorithm(alg);
        let t0 = std::time::Instant::now();
        let records = spec.run();
        let accs: Vec<f64> = records.iter().filter_map(|r| r.accuracy).collect();
        println!(
            "{:<8} final accuracy {:.2}%  (rounds: {}, wall: {:.1?})",
            alg.name(),
            accs.last().unwrap_or(&0.0) * 100.0,
            records.len(),
            t0.elapsed()
        );
        if let Some(r) = rounds_to_accuracy(&records, 0.80) {
            println!("         reached 80% at round {r}");
        }
        curves.push((alg.name(), accs));
    }

    println!("\nround   FedTrip   FedAvg");
    let n = curves[0].1.len().min(curves[1].1.len());
    for i in (0..n).step_by((n / 20).max(1)) {
        println!(
            "{:>5}   {:>6.2}%   {:>6.2}%",
            i + 1,
            curves[0].1[i] * 100.0,
            curves[1].1[i] * 100.0
        );
    }
}
