//! Miniature of the paper's Fig. 7: FedTrip's sensitivity to `mu`.
//!
//! Sweeps `mu` over a small grid on the quickstart cell and reports best
//! accuracy and rounds-to-target per value.
//!
//! ```bash
//! cargo run --release --example mu_sensitivity [-- smoke|default]
//! ```

use fedtrip::prelude::*;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke);
    println!("FedTrip mu sensitivity — CNN on MNIST-like, Dir-0.5 ({scale:?} scale)\n");

    let mus = [0.1f32, 0.4, 1.0, 1.5, 2.5];
    let mut rows = Vec::new();
    for &mu in &mus {
        let mut spec = ExperimentSpec::quickstart().with_scale(scale);
        spec.hyper.fedtrip_mu = mu;
        let records = spec.run();
        let accs: Vec<f64> = records.iter().filter_map(|r| r.accuracy).collect();
        let best = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        rows.push((mu, best, accs));
    }
    let best_overall = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
    let target = 0.9 * best_overall;

    println!("{:<6} {:>12} {:>18}", "mu", "best acc %", "rounds->target");
    for (mu, best, accs) in &rows {
        let rounds = accs
            .iter()
            .position(|&a| a >= target)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| format!(">{}", accs.len()));
        println!("{:<6} {:>12.2} {:>18}", mu, best * 100.0, rounds);
    }
    println!(
        "\ntarget = {:.1}% (90% of best-over-mu). Paper's shape: moderate mu",
        target * 100.0
    );
    println!("accelerates convergence; large mu trades accuracy for speed.");
}
