//! Dataset calibration explorer.
//!
//! Reports, for each dataset preset: the label-flip rate actually observed,
//! a centralized-training plateau accuracy (upper bound for federated runs),
//! and a short federated trajectory under Dir-0.5. Used to sanity-check that
//! the synthetic tasks are neither trivial nor impossible before running the
//! full table/figure experiments.
//!
//! ```bash
//! cargo run --release --example calibration [-- <dataset>]
//! ```

use fedtrip::prelude::*;
use fedtrip_core::algorithms::AlgorithmKind;
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::synth::SampleRef;
use fedtrip_tensor::optim::{Optimizer, SgdMomentum};

fn flip_rate(ds: &SyntheticVision, n_per_class: u32) -> f64 {
    let spec = ds.spec();
    let pool = (spec.total_samples / spec.classes) as u32;
    let mut flips = 0usize;
    let mut total = 0usize;
    for c in 0..spec.classes as u16 {
        for i in 0..n_per_class {
            if ds.label_of(SampleRef {
                class: c,
                id: pool + i,
            }) != c as usize
            {
                flips += 1;
            }
            total += 1;
        }
    }
    flips as f64 / total as f64
}

/// Centralized training: all samples in one pot, CNN/AlexNet, few epochs.
fn centralized_plateau(kind: DatasetKind, samples: usize, epochs: usize) -> f64 {
    let ds = SyntheticVision::new(kind, 2023);
    let spec = *ds.spec();
    // probe with the default-scale model (AlexNet is not single-core viable)
    let model = match kind {
        DatasetKind::Cifar10Like => fedtrip_models::ModelKind::CifarCnn,
        _ => fedtrip_models::ModelKind::default_for(kind),
    };
    let mut net = model.build(&spec.sample_shape(), spec.classes, 2023);
    let per_class = samples / spec.classes;
    let refs: Vec<SampleRef> = (0..spec.classes as u16)
        .flat_map(|c| (0..per_class as u32).map(move |i| SampleRef { class: c, id: i }))
        .collect();
    let mut opt = SgdMomentum::new(0.01, 0.9);
    let mut rng = fedtrip_tensor::rng::Prng::seed_from_u64(7);
    for _ in 0..epochs {
        for (x, y) in fedtrip_data::loader::BatchIter::new(&ds, &refs, 50, &mut rng) {
            net.zero_grads();
            net.train_step(&x, &y);
            opt.step(&mut net);
        }
    }
    let (tx, ty) = ds.test_set(30);
    fedtrip_core::engine::evaluate_in_chunks(&mut net, &tx, &ty, 200)
}

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    let cent_samples: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let cent_epochs: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    for kind in DatasetKind::ALL {
        if let Some(o) = &only {
            if !kind.name().to_lowercase().contains(&o.to_lowercase()) {
                continue;
            }
        }
        let ds = SyntheticVision::new(kind, 2023);
        let spec = ds.spec();
        println!("=== {} ({} classes) ===", kind.name(), spec.classes);
        println!(
            "  flip rate (spec {:.2}): {:.3}",
            spec.label_flip,
            flip_rate(&ds, 50)
        );

        let t0 = std::time::Instant::now();
        let plateau = centralized_plateau(kind, cent_samples, cent_epochs);
        println!(
            "  centralized plateau ({cent_samples} samples, {cent_epochs} epochs): {:.2}%  [{:.1?}]",
            plateau * 100.0,
            t0.elapsed()
        );

        if std::env::var("FEDPROBE").map(|v| v == "0").unwrap_or(false) {
            continue;
        }
        // short federated run, Dir-0.5
        let mut cfg = SimulationConfig {
            dataset: kind,
            model: fedtrip_models::ModelKind::default_for(kind),
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            rounds: 30,
            client_samples_override: Some(200),
            test_per_class: 20,
            ..SimulationConfig::default()
        };
        if kind == DatasetKind::Cifar10Like {
            cfg.rounds = 10; // AlexNet is expensive; a short probe suffices
        }
        let hyper = ExperimentSpec::paper_hyper(kind, cfg.model);
        let t0 = std::time::Instant::now();
        let mut sim = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&hyper));
        sim.run();
        let accs: Vec<f64> = sim.records().iter().filter_map(|r| r.accuracy).collect();
        let shown: Vec<String> = accs
            .iter()
            .step_by((accs.len() / 10).max(1))
            .map(|a| format!("{:.0}", a * 100.0))
            .collect();
        println!(
            "  FedAvg Dir-0.5 trajectory (%): {}  [{:.1?}]",
            shown.join(" "),
            t0.elapsed()
        );
    }
}
