//! Extending the library: implementing a *new* federated method against the
//! public `Algorithm` trait and racing it inside the engine.
//!
//! `FedTripDecay` is FedTrip with an exponentially decaying `mu` — as
//! training approaches consensus the triplet force fades, removing the
//! late-training accuracy penalty the paper observes for large `mu`
//! (Fig. 7). This is exactly the kind of follow-up the paper's §VI
//! ("further discuss the influence of xi") invites.
//!
//! ```bash
//! cargo run --release --example custom_algorithm [-- smoke|default]
//! ```

use fedtrip::prelude::*;
use fedtrip_core::algorithms::{
    model_train_flops, run_local_sgd, Algorithm, AlgorithmKind, ClientData, ClientState,
    LocalContext, LocalOutcome,
};
use fedtrip_core::costs::{AttachCost, CostModel};
use fedtrip_core::engine::Simulation;
use fedtrip_tensor::GradAdjust;

/// FedTrip with round-decaying regularization strength:
/// `mu_t = mu0 * decay^t`.
struct FedTripDecay {
    mu0: f32,
    decay: f32,
}

impl Algorithm for FedTripDecay {
    fn name(&self) -> &'static str {
        "FedTripDecay"
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let mu = self.mu0 * self.decay.powi(ctx.round as i32 - 1);
        let xi = ctx.gap.map(|g| g as f32).unwrap_or(0.0);
        let global = ctx.global;
        // the adjustment is fused into the optimizer step — no flatten /
        // scatter round-trip, and the historical model is only borrowed
        let adjust = match state.historical.as_deref() {
            Some(hist) => GradAdjust::Triplet {
                mu,
                xi,
                global,
                hist,
            },
            None => GradAdjust::Prox { mu, anchor: global },
        };
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let (iterations, samples, mean_loss) = run_local_sgd(net, data, ctx, opt.as_mut(), &adjust);
        let params = net.params_flat();
        state.historical = Some(params.clone());
        state.last_round = Some(ctx.round);
        LocalOutcome {
            params,
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            train_flops: model_train_flops(net, samples)
                + 4.0 * iterations as f64 * net.num_params() as f64,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        // same vector ops as FedTrip: 4 K |w|
        AttachCost {
            flops: 4.0 * m.local_iterations as f64 * m.n_params as f64,
            ..AttachCost::ZERO
        }
    }
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke);
    println!("Custom algorithm demo — FedTripDecay vs FedTrip vs FedAvg ({scale:?} scale)\n");

    let base = ExperimentSpec::quickstart().with_scale(scale);
    let cfg = base.to_config();

    let mut contenders: Vec<(&str, Box<dyn Algorithm>)> = vec![
        (
            "FedTripDecay",
            Box::new(FedTripDecay {
                mu0: 1.0,
                decay: 0.95,
            }),
        ),
        ("FedTrip", AlgorithmKind::FedTrip.build(&base.hyper)),
        ("FedAvg", AlgorithmKind::FedAvg.build(&base.hyper)),
    ];

    println!(
        "{:<14} {:>12} {:>14}",
        "method", "final acc %", "best acc %"
    );
    for (name, alg) in contenders.drain(..) {
        let mut sim = Simulation::new(cfg, alg);
        sim.run();
        let accs: Vec<f64> = sim.records().iter().filter_map(|r| r.accuracy).collect();
        let best = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<14} {:>12.2} {:>14.2}",
            name,
            sim.final_accuracy(5) * 100.0,
            best * 100.0
        );
    }
    println!("\nThe point: a new method is ~40 lines against the public trait —");
    println!("local rule + cost row — and immediately gets selection, gap");
    println!("tracking, aggregation, accounting and evaluation from the engine.");
}
