//! Heterogeneity study: how label skew shapes convergence.
//!
//! Sweeps the paper's four heterogeneity regimes (IID control plus Dir-0.5,
//! Dir-0.1, Orthogonal-5) with FedTrip and FedAvg on the MNIST-like CNN and
//! prints rounds-to-target and final accuracy — a miniature of §V-C.
//!
//! ```bash
//! cargo run --release --example heterogeneity_study [-- smoke|default]
//! ```

use fedtrip::prelude::*;
use fedtrip_core::algorithms::AlgorithmKind;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke);
    println!("Heterogeneity study — CNN on MNIST-like, FedTrip vs FedAvg ({scale:?} scale)\n");

    let regimes = [
        HeterogeneityKind::Iid,
        HeterogeneityKind::Dirichlet(0.5),
        HeterogeneityKind::Dirichlet(0.1),
        HeterogeneityKind::Orthogonal(5),
    ];

    println!(
        "{:<16} {:<10} {:>10} {:>12} {:>12}",
        "regime", "method", "skew", "final acc %", "rounds->70%"
    );
    for regime in regimes {
        for alg in [AlgorithmKind::FedTrip, AlgorithmKind::FedAvg] {
            let spec = ExperimentSpec {
                heterogeneity: regime,
                algorithm: alg,
                ..ExperimentSpec::quickstart()
            }
            .with_scale(scale);
            let mut sim = spec.build();
            let skew = sim.partition().skew();
            sim.run();
            let final_acc = sim.final_accuracy(5);
            let to70 = sim
                .rounds_to_accuracy(0.70)
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!(">{}", sim.rounds_done()));
            println!(
                "{:<16} {:<10} {:>10.3} {:>12.2} {:>12}",
                regime.name(),
                alg.name(),
                skew,
                final_acc * 100.0,
                to70
            );
        }
    }
    println!("\nExpected shape (paper Fig. 5): higher skew => slower convergence,");
    println!("with FedTrip's advantage growing as skew increases.");
}
