//! Property-based tests for the data crate: loader completeness, sample
//! determinism, and partition/label invariants under arbitrary parameters.

use fedtrip_data::loader::BatchIter;
use fedtrip_data::partition::{HeterogeneityKind, Partition};
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use fedtrip_tensor::rng::Prng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batch iterator yields every sample exactly once for any batch
    /// size, with only the last batch allowed to be partial.
    #[test]
    fn loader_is_an_exact_cover(n in 1u32..120, batch in 1usize..40, seed in 0u64..100) {
        let ds = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let refs: Vec<SampleRef> = (0..n)
            .map(|i| SampleRef { class: (i % 10) as u16, id: i })
            .collect();
        let mut rng = Prng::seed_from_u64(seed);
        let it = BatchIter::new(&ds, &refs, batch, &mut rng);
        prop_assert_eq!(it.num_batches(), (n as usize).div_ceil(batch));
        let sizes: Vec<usize> = BatchIter::new(&ds, &refs, batch, &mut Prng::seed_from_u64(seed))
            .map(|(x, y)| {
                prop_assert_eq!(x.shape()[0], y.len());
                Ok(y.len())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(total, n as usize);
        for (i, &s) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                prop_assert_eq!(s, batch, "only the last batch may be partial");
            }
        }
    }

    /// Sample pixels and labels are pure functions of (seed, class, id).
    #[test]
    fn samples_are_pure_functions(class in 0u16..10, id in 0u32..5000, seed in 0u64..50) {
        let d1 = SyntheticVision::new(DatasetKind::FmnistLike, seed);
        let d2 = SyntheticVision::new(DatasetKind::FmnistLike, seed);
        let r = SampleRef { class, id };
        let mut a = vec![0.0; d1.spec().sample_elems()];
        let mut b = vec![0.0; d2.spec().sample_elems()];
        d1.write_sample(r, &mut a);
        d2.write_sample(r, &mut b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(d1.label_of(r), d2.label_of(r));
        prop_assert!(d1.label_of(r) < d1.spec().classes);
    }

    /// Orthogonal partitions never share a class across clusters, for any
    /// cluster count that divides the class space.
    #[test]
    fn orthogonal_clusters_disjoint(k in prop::sample::select(vec![2usize, 5, 10]), seed in 0u64..100) {
        let spec = DatasetKind::MnistLike.spec();
        let p = Partition::build(&spec, HeterogeneityKind::Orthogonal(k), 10, seed);
        let hists = p.label_histograms();
        for i in 0..10 {
            for j in 0..10 {
                if i % k == j % k {
                    continue;
                }
                for (c, (&a, &b)) in hists[i].iter().zip(&hists[j]).enumerate() {
                    prop_assert!(
                        !(a > 0 && b > 0),
                        "clients {} and {} in different clusters share class {}", i, j, c
                    );
                }
            }
        }
    }

    /// IID partitions have low skew regardless of seed.
    #[test]
    fn iid_skew_is_small(seed in 0u64..200) {
        let spec = DatasetKind::MnistLike.spec();
        let p = Partition::build(&spec, HeterogeneityKind::Iid, 6, seed);
        prop_assert!(p.skew() < 0.15, "IID skew {} too high", p.skew());
    }
}
