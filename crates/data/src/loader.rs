//! Mini-batch iteration over a client's samples.

use crate::synth::{SampleRef, SyntheticVision};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::Tensor;

/// An iterator over shuffled mini-batches of one client's local data.
///
/// Shuffling happens once per construction (i.e. per local epoch) with the
/// provided RNG, matching the per-epoch reshuffle of a PyTorch `DataLoader`.
/// The final partial batch is kept (drop_last = false), as in the paper's
/// framework defaults.
pub struct BatchIter<'a> {
    dataset: &'a SyntheticVision,
    order: Vec<SampleRef>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Create a shuffled batch iterator.
    ///
    /// # Panics
    /// Panics on a zero batch size.
    pub fn new(
        dataset: &'a SyntheticVision,
        refs: &[SampleRef],
        batch_size: usize,
        rng: &mut Prng,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order = refs.to_vec();
        rng.shuffle(&mut order);
        BatchIter {
            dataset,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches this iterator will yield in total.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Advance to the next batch, synthesizing it into caller-owned buffers
    /// (see [`SyntheticVision::batch_into`]). Returns `false` when the epoch
    /// is exhausted, leaving the buffers untouched. The allocation-free
    /// counterpart of the `Iterator` impl.
    pub fn next_into(&mut self, x: &mut Tensor, y: &mut Vec<usize>) -> bool {
        if self.cursor >= self.order.len() {
            return false;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = &self.order[self.cursor..end];
        self.cursor = end;
        self.dataset.batch_into(batch, x, y);
        true
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.batch(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetKind;

    fn refs(n: u32) -> Vec<SampleRef> {
        (0..n)
            .map(|i| SampleRef {
                class: (i % 10) as u16,
                id: i / 10,
            })
            .collect()
    }

    #[test]
    fn yields_all_samples_exactly_once() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let rs = refs(25);
        let mut rng = Prng::seed_from_u64(2);
        let it = BatchIter::new(&d, &rs, 10, &mut rng);
        assert_eq!(it.num_batches(), 3);
        let sizes: Vec<usize> = it.map(|(x, _)| x.shape()[0]).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn exact_division_has_no_partial_batch() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let rs = refs(20);
        let mut rng = Prng::seed_from_u64(2);
        let it = BatchIter::new(&d, &rs, 10, &mut rng);
        assert_eq!(it.num_batches(), 2);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn shuffling_is_seeded() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let rs = refs(30);
        let mut r1 = Prng::seed_from_u64(5);
        let mut r2 = Prng::seed_from_u64(5);
        let a: Vec<_> = BatchIter::new(&d, &rs, 8, &mut r1)
            .map(|(_, y)| y)
            .collect();
        let b: Vec<_> = BatchIter::new(&d, &rs, 8, &mut r2)
            .map(|(_, y)| y)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn next_into_matches_iterator_batches_exactly() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let rs = refs(25);
        let mut r1 = Prng::seed_from_u64(9);
        let mut r2 = Prng::seed_from_u64(9);
        let expected: Vec<_> = BatchIter::new(&d, &rs, 10, &mut r1).collect();
        let mut it = BatchIter::new(&d, &rs, 10, &mut r2);
        // deliberately undersized + poisoned so reuse/overwrite is exercised
        let mut x = Tensor::full(&[1], 7.0);
        let mut y = vec![99usize];
        for (ex, ey) in expected {
            assert!(it.next_into(&mut x, &mut y));
            assert_eq!(x.shape(), ex.shape());
            assert_eq!(x.as_slice(), ex.as_slice());
            assert_eq!(y, ey);
        }
        assert!(!it.next_into(&mut x, &mut y));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let mut rng = Prng::seed_from_u64(0);
        let _ = BatchIter::new(&d, &refs(4), 0, &mut rng);
    }
}
