//! Non-IID data partitioners (paper §V-A "Data Partitioning").
//!
//! Two heterogeneity families from the paper plus an IID control:
//!
//! * **Dirichlet**: each client draws a class-probability vector from
//!   `Dir(alpha)` and fills its quota by sampling classes from that vector
//!   *without replacement* from finite per-class pools (the LEAF-style
//!   procedure the paper describes). `alpha = 0.1` is highly skewed,
//!   `alpha = 0.5` moderate.
//! * **Orthogonal-k**: clients are split into `k` clusters; each cluster owns
//!   a disjoint slice of the classes and its clients sample IID within it.
//!   `Orthogonal-10` with 10 classes gives one class per client.
//! * **IID**: every client samples uniformly over all classes.

use crate::synth::{DatasetSpec, SampleRef};
use fedtrip_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

/// The heterogeneity regimes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeterogeneityKind {
    /// Independent and identically distributed labels.
    Iid,
    /// Dirichlet label skew with concentration `alpha` (paper: 0.1, 0.5).
    Dirichlet(f64),
    /// `k` clusters with mutually orthogonal class sets (paper: 5, 10).
    Orthogonal(usize),
}

impl HeterogeneityKind {
    /// Display name matching the paper's figure/table labels.
    pub fn name(&self) -> String {
        match self {
            HeterogeneityKind::Iid => "IID".to_string(),
            HeterogeneityKind::Dirichlet(a) => format!("Dir-{a}"),
            HeterogeneityKind::Orthogonal(k) => format!("Orthogonal-{k}"),
        }
    }
}

/// A federated partition: which samples each client owns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// Per-client sample references.
    pub clients: Vec<Vec<SampleRef>>,
    /// Number of classes in the underlying dataset.
    pub classes: usize,
    /// The regime that produced this partition.
    pub kind: HeterogeneityKind,
}

impl Partition {
    /// Build a partition of `n_clients`, each holding
    /// `spec.client_samples` samples, under the given regime.
    ///
    /// # Panics
    /// Panics if the total requested samples exceed the dataset pools, or if
    /// an orthogonal cluster count does not divide sensibly (more clusters
    /// than classes).
    pub fn build(
        spec: &DatasetSpec,
        kind: HeterogeneityKind,
        n_clients: usize,
        seed: u64,
    ) -> Partition {
        assert!(n_clients > 0, "need at least one client");
        let need = n_clients * spec.client_samples;
        assert!(
            need <= spec.total_samples,
            "partition needs {need} samples but dataset has {}",
            spec.total_samples
        );
        let mut pools = ClassPools::new(spec.classes, spec.pool_per_class());
        let clients = match kind {
            HeterogeneityKind::Iid => {
                let probs = vec![1.0; spec.classes];
                (0..n_clients)
                    .map(|c| {
                        let mut rng = Prng::derive(seed, &[0x1D, c as u64]);
                        pools.draw(&probs, spec.client_samples, &mut rng)
                    })
                    .collect()
            }
            HeterogeneityKind::Dirichlet(alpha) => {
                assert!(alpha > 0.0, "Dirichlet alpha must be positive");
                (0..n_clients)
                    .map(|c| {
                        let mut rng = Prng::derive(seed, &[0xD1, c as u64]);
                        let probs = dirichlet(alpha, spec.classes, &mut rng);
                        pools.draw(&probs, spec.client_samples, &mut rng)
                    })
                    .collect()
            }
            HeterogeneityKind::Orthogonal(k) => {
                assert!(k > 0 && k <= spec.classes, "need 1..=classes clusters");
                (0..n_clients)
                    .map(|c| {
                        let cluster = c % k;
                        // classes are split into k contiguous groups; group g
                        // covers classes [g*classes/k, (g+1)*classes/k)
                        let lo = cluster * spec.classes / k;
                        let hi = (cluster + 1) * spec.classes / k;
                        let probs: Vec<f64> = (0..spec.classes)
                            .map(|cl| if cl >= lo && cl < hi { 1.0 } else { 0.0 })
                            .collect();
                        let mut rng = Prng::derive(seed, &[0x0A, c as u64]);
                        pools.draw(&probs, spec.client_samples, &mut rng)
                    })
                    .collect()
            }
        };
        Partition {
            clients,
            classes: spec.classes,
            kind,
        }
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Per-client histogram over *generating* classes (paper Fig. 4).
    pub fn label_histograms(&self) -> Vec<Vec<usize>> {
        self.clients
            .iter()
            .map(|refs| {
                let mut h = vec![0usize; self.classes];
                for r in refs {
                    h[r.class as usize] += 1;
                }
                h
            })
            .collect()
    }

    /// Number of classes with at least one sample, per client.
    pub fn classes_per_client(&self) -> Vec<usize> {
        self.label_histograms()
            .iter()
            .map(|h| h.iter().filter(|&&c| c > 0).count())
            .collect()
    }

    /// Earth-mover-style skew statistic: mean total-variation distance
    /// between each client's label distribution and the global uniform one.
    /// 0 = perfectly IID, approaches `1 - 1/classes` for one-class clients.
    pub fn skew(&self) -> f64 {
        let hists = self.label_histograms();
        let mut total = 0.0;
        for h in &hists {
            let n: usize = h.iter().sum();
            if n == 0 {
                continue;
            }
            let tv: f64 = h
                .iter()
                .map(|&c| (c as f64 / n as f64 - 1.0 / self.classes as f64).abs())
                .sum::<f64>()
                / 2.0;
            total += tv;
        }
        total / hists.len() as f64
    }
}

/// Finite per-class sample pools; draws hand out fresh ids without
/// replacement and renormalize over non-empty classes.
struct ClassPools {
    /// Next unused id per class.
    next_id: Vec<u32>,
    /// Pool capacity per class.
    cap: u32,
}

impl ClassPools {
    fn new(classes: usize, per_class: usize) -> Self {
        ClassPools {
            next_id: vec![0; classes],
            cap: per_class as u32,
        }
    }

    fn remaining(&self, class: usize) -> u32 {
        self.cap - self.next_id[class]
    }

    /// Draw `count` samples according to unnormalized class weights,
    /// skipping exhausted classes.
    fn draw(&mut self, weights: &[f64], count: usize, rng: &mut Prng) -> Vec<SampleRef> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let total: f64 = weights
                .iter()
                .enumerate()
                .filter(|(c, _)| self.remaining(*c) > 0)
                .map(|(_, &w)| w)
                .sum();
            assert!(
                total > 0.0,
                "all requested classes exhausted (pools too small for partition)"
            );
            let mut u = rng.uniform() as f64 * total;
            let mut chosen = None;
            for (c, &w) in weights.iter().enumerate() {
                if self.remaining(c) == 0 {
                    continue;
                }
                u -= w;
                if u <= 0.0 {
                    chosen = Some(c);
                    break;
                }
            }
            // floating-point edge: fall back to the last viable class
            let c = chosen.unwrap_or_else(|| {
                (0..weights.len())
                    .rev()
                    .find(|&c| self.remaining(c) > 0 && weights[c] > 0.0)
                    .expect("viable class exists because total > 0")
            });
            out.push(SampleRef {
                class: c as u16,
                id: self.next_id[c],
            });
            self.next_id[c] += 1;
        }
        out
    }
}

/// Sample a probability vector from `Dir(alpha * 1)`.
fn dirichlet(alpha: f64, k: usize, rng: &mut Prng) -> Vec<f64> {
    let mut g: Vec<f64> = (0..k).map(|_| rng.gamma(alpha).max(1e-300)).collect();
    let s: f64 = g.iter().sum();
    for v in &mut g {
        *v /= s;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetKind;

    fn spec() -> DatasetSpec {
        DatasetKind::MnistLike.spec()
    }

    #[test]
    fn every_client_gets_its_quota() {
        let p = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 10, 1);
        assert_eq!(p.n_clients(), 10);
        for c in &p.clients {
            assert_eq!(c.len(), 600);
        }
    }

    #[test]
    fn samples_are_disjoint_across_clients() {
        let p = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.1), 10, 2);
        let mut seen = std::collections::HashSet::new();
        for c in &p.clients {
            for r in c {
                assert!(seen.insert((r.class, r.id)), "duplicate sample {r:?}");
            }
        }
    }

    #[test]
    fn ids_stay_within_pool() {
        let s = spec();
        let p = Partition::build(&s, HeterogeneityKind::Iid, 10, 3);
        let cap = s.pool_per_class() as u32;
        for c in &p.clients {
            for r in c {
                assert!(r.id < cap);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 6, 9);
        let b = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 6, 9);
        assert_eq!(a.clients, b.clients);
        let c = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 6, 10);
        assert_ne!(a.clients, c.clients);
    }

    #[test]
    fn dirichlet_skew_ordering_matches_paper() {
        // Fig. 4: Dir-0.1 is more skewed than Dir-0.5, which is more skewed
        // than IID.
        let iid = Partition::build(&spec(), HeterogeneityKind::Iid, 10, 4);
        let d5 = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 10, 4);
        let d1 = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.1), 10, 4);
        assert!(iid.skew() < d5.skew(), "{} !< {}", iid.skew(), d5.skew());
        assert!(d5.skew() < d1.skew(), "{} !< {}", d5.skew(), d1.skew());
    }

    #[test]
    fn dir01_clients_hold_few_classes() {
        // Paper: under Dir-0.1 most clients hold 1-2 dominant classes. With
        // finite pools some spillover happens; check the dominant mass.
        let p = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.1), 10, 5);
        let hists = p.label_histograms();
        let mut dominant = 0.0;
        for h in &hists {
            let n: usize = h.iter().sum();
            let mut sorted = h.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            dominant += (sorted[0] + sorted[1]) as f64 / n as f64;
        }
        dominant /= hists.len() as f64;
        assert!(dominant > 0.6, "top-2 class mass {dominant} too low for Dir-0.1");
    }

    #[test]
    fn orthogonal_5_two_classes_each() {
        // 10 classes, 5 clusters -> each cluster owns exactly 2 classes.
        let p = Partition::build(&spec(), HeterogeneityKind::Orthogonal(5), 10, 6);
        for (ci, h) in p.label_histograms().iter().enumerate() {
            let nz: Vec<usize> = (0..10).filter(|&c| h[c] > 0).collect();
            assert!(nz.len() <= 2, "client {ci} has classes {nz:?}");
            let cluster = ci % 5;
            for c in nz {
                assert_eq!(c / 2, cluster, "class {c} outside cluster {cluster}");
            }
        }
    }

    #[test]
    fn orthogonal_10_single_class_each() {
        let p = Partition::build(&spec(), HeterogeneityKind::Orthogonal(10), 10, 7);
        for h in p.classes_per_client() {
            assert_eq!(h, 1);
        }
    }

    #[test]
    fn orthogonal_clusters_are_mutually_disjoint_in_classes() {
        let p = Partition::build(&spec(), HeterogeneityKind::Orthogonal(5), 10, 8);
        let hists = p.label_histograms();
        // client i and client j in different clusters share no class
        for i in 0..10 {
            for j in 0..10 {
                if i % 5 == j % 5 {
                    continue;
                }
                for (c, (&a, &b)) in hists[i].iter().zip(&hists[j]).enumerate() {
                    assert!(!(a > 0 && b > 0), "clients {i},{j} share class {c}");
                }
            }
        }
    }

    #[test]
    fn iid_is_roughly_uniform() {
        let p = Partition::build(&spec(), HeterogeneityKind::Iid, 4, 9);
        for h in p.label_histograms() {
            for &c in &h {
                // 600 samples over 10 classes -> expect 60 per class
                assert!((20..=120).contains(&c), "count {c} too far from 60");
            }
        }
    }

    #[test]
    #[should_panic(expected = "partition needs")]
    fn rejects_oversubscription() {
        let mut s = spec();
        s.client_samples = s.total_samples; // one client wants everything
        let _ = Partition::build(&s, HeterogeneityKind::Iid, 2, 0);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(HeterogeneityKind::Dirichlet(0.1).name(), "Dir-0.1");
        assert_eq!(HeterogeneityKind::Orthogonal(5).name(), "Orthogonal-5");
        assert_eq!(HeterogeneityKind::Iid.name(), "IID");
    }

    #[test]
    fn dirichlet_probabilities_sum_to_one() {
        let mut rng = Prng::seed_from_u64(1);
        for &alpha in &[0.1, 0.5, 1.0, 10.0] {
            let p = dirichlet(alpha, 12, &mut rng);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }
}
