//! Non-IID data partitioners (paper §V-A "Data Partitioning"), built lazily
//! so federation size `N` stops being a memory axis.
//!
//! Two heterogeneity families from the paper plus an IID control:
//!
//! * **Dirichlet**: each client draws a class-probability vector from
//!   `Dir(alpha)` and fills its quota by sampling classes from that vector
//!   *without replacement* from finite per-class pools (the LEAF-style
//!   procedure the paper describes). `alpha = 0.1` is highly skewed,
//!   `alpha = 0.5` moderate.
//! * **Orthogonal-k**: clients are split into `k` clusters; each cluster owns
//!   a disjoint slice of the classes and its clients sample IID within it.
//!   `Orthogonal-10` with 10 classes gives one class per client.
//! * **IID**: every client samples uniformly over all classes.
//!
//! # Lazy shards
//!
//! [`Partition::build`] no longer materializes every client's sample list.
//! A shard is drawn on the client's *first* participation (from the same
//! seed-derived per-client RNG tag the eager builder used) and memoized for
//! repeat participants, so resident partition memory is O(participants),
//! not O(N). Two regimes decide how a shard is drawn:
//!
//! * [`ShardRegime::Pooled`] — the paper's setting: `N × client_samples`
//!   fits the dataset's finite per-class pools, and clients draw without
//!   replacement in client order. Because client `c`'s draw depends on the
//!   pool state left by clients `0..c`, the lazy builder advances a pool
//!   cursor on demand (discarding intermediate shards) and keeps a tiny
//!   per-client pool snapshot (`classes × u32`) so out-of-order repeat
//!   access stays O(client_samples). Shard bytes are **identical to the
//!   eager build** — pinned by the order-independence tests.
//! * [`ShardRegime::Independent`] — the cross-device setting: the requested
//!   population exceeds the finite pools (which the eager builder used to
//!   reject), so clients draw *with replacement across the federation*:
//!   each shard is a pure function of `(seed, client)` — the same per-kind
//!   RNG tag and class-probability draw as the pooled regime, with sample
//!   ids drawn uniformly from the per-class pool. This is what lets `flrun
//!   --clients 100000` exist at all: O(client_samples) per first touch,
//!   O(1) in `N`.

use crate::synth::{DatasetSpec, SampleRef};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The heterogeneity regimes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeterogeneityKind {
    /// Independent and identically distributed labels.
    Iid,
    /// Dirichlet label skew with concentration `alpha` (paper: 0.1, 0.5).
    Dirichlet(f64),
    /// `k` clusters with mutually orthogonal class sets (paper: 5, 10).
    Orthogonal(usize),
}

impl HeterogeneityKind {
    /// Display name matching the paper's figure/table labels.
    pub fn name(&self) -> String {
        match self {
            HeterogeneityKind::Iid => "IID".to_string(),
            HeterogeneityKind::Dirichlet(a) => format!("Dir-{a}"),
            HeterogeneityKind::Orthogonal(k) => format!("Orthogonal-{k}"),
        }
    }
}

/// How client shards are drawn from the dataset (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardRegime {
    /// Finite per-class pools, drawn without replacement in client order
    /// (the paper's setting; byte-identical to the historical eager build).
    Pooled,
    /// Per-client independent draws with replacement across the federation
    /// (the cross-device setting for populations beyond the pool capacity).
    Independent,
}

/// A federated partition: which samples each client owns, drawn lazily.
pub struct Partition {
    classes: usize,
    client_samples: usize,
    pool_per_class: usize,
    n_clients: usize,
    kind: HeterogeneityKind,
    seed: u64,
    regime: ShardRegime,
    cache: Mutex<ShardCache>,
}

/// Interior-mutable shard memo + pooled-regime replay state.
struct ShardCache {
    /// Shards of clients that have participated, by client id.
    shards: HashMap<usize, Arc<[SampleRef]>>,
    /// Pooled regime: pool state reflecting the draws of clients
    /// `0..cursor`.
    pools: ClassPools,
    /// Pooled regime: clients whose draws are reflected in `pools`.
    cursor: usize,
    /// Pooled regime: `snapshots[c]` is the per-class next-id vector at the
    /// *start* of client `c`'s draw, so out-of-order repeat access can
    /// replay any single client in O(client_samples).
    snapshots: Vec<Vec<u32>>,
}

impl Partition {
    /// Build a (lazy) partition of `n_clients`, each holding
    /// `spec.client_samples` samples, under the given regime.
    ///
    /// When the requested population fits the dataset's finite pools
    /// (`n_clients * client_samples <= total_samples`) shards draw without
    /// replacement exactly like the historical eager builder
    /// ([`ShardRegime::Pooled`]); beyond that — which the eager builder
    /// rejected outright — clients draw independently with replacement
    /// across the federation ([`ShardRegime::Independent`]).
    ///
    /// Construction itself is O(1) in `n_clients`; shards materialize on
    /// first access via [`Partition::shard`].
    ///
    /// # Panics
    /// Panics when `n_clients == 0`, `client_samples == 0`, or an orthogonal
    /// cluster count does not divide sensibly (more clusters than classes).
    pub fn build(
        spec: &DatasetSpec,
        kind: HeterogeneityKind,
        n_clients: usize,
        seed: u64,
    ) -> Partition {
        assert!(n_clients > 0, "need at least one client");
        assert!(
            spec.client_samples > 0,
            "need at least one sample per client"
        );
        if let HeterogeneityKind::Orthogonal(k) = kind {
            assert!(k > 0 && k <= spec.classes, "need 1..=classes clusters");
        }
        if let HeterogeneityKind::Dirichlet(alpha) = kind {
            assert!(alpha > 0.0, "Dirichlet alpha must be positive");
        }
        let regime = if n_clients.saturating_mul(spec.client_samples) <= spec.total_samples {
            ShardRegime::Pooled
        } else {
            ShardRegime::Independent
        };
        Partition {
            classes: spec.classes,
            client_samples: spec.client_samples,
            pool_per_class: spec.pool_per_class(),
            n_clients,
            kind,
            seed,
            regime,
            cache: Mutex::new(ShardCache {
                shards: HashMap::new(),
                pools: ClassPools::new(spec.classes, spec.pool_per_class()),
                cursor: 0,
                snapshots: Vec::new(),
            }),
        }
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Samples per client (uniform across the federation).
    pub fn client_samples(&self) -> usize {
        self.client_samples
    }

    /// Number of classes in the underlying dataset.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The heterogeneity regime that parameterizes this partition.
    pub fn kind(&self) -> HeterogeneityKind {
        self.kind
    }

    /// Which shard-drawing regime the population size selected.
    pub fn regime(&self) -> ShardRegime {
        self.regime
    }

    /// Number of shards currently materialized (== distinct clients ever
    /// passed to [`Partition::shard`]); the population-scale bench asserts
    /// this stays O(participants).
    pub fn resident_shards(&self) -> usize {
        self.cache
            .lock()
            .expect("partition cache poisoned") // lint:allow(panic) — poisoning implies a prior panic
            .shards
            .len()
    }

    /// This client's samples, drawing (and memoizing) the shard on first
    /// access. Cheap `Arc` clone on repeat access; safe to call from
    /// multiple threads, though the engine materializes a round's shards
    /// before its parallel fan-out.
    ///
    /// # Panics
    /// Panics when `client >= n_clients`.
    pub fn shard(&self, client: usize) -> Arc<[SampleRef]> {
        assert!(
            client < self.n_clients,
            "client {client} out of range (n_clients {})",
            self.n_clients
        );
        let mut cache = self.cache.lock().expect("partition cache poisoned"); // lint:allow(panic) — poisoning implies a prior panic
        if let Some(s) = cache.shards.get(&client) {
            return Arc::clone(s);
        }
        let refs: Arc<[SampleRef]> = self.draw_shard(&mut cache, client).into();
        cache.shards.insert(client, Arc::clone(&refs));
        refs
    }

    /// Draw client `client`'s shard without memoizing it (shared by
    /// [`Partition::shard`] and the transient analysis walks).
    fn draw_shard(&self, cache: &mut ShardCache, client: usize) -> Vec<SampleRef> {
        match self.regime {
            ShardRegime::Independent => self.draw_independent(client),
            ShardRegime::Pooled => {
                if client < cache.cursor {
                    // replay just this client from its pool snapshot
                    let mut pools = ClassPools::from_snapshot(
                        cache.snapshots[client].clone(),
                        self.pool_per_class as u32,
                    );
                    self.draw_pooled(&mut pools, client)
                } else {
                    // advance the pool cursor, discarding intermediate
                    // shards (their pool consumption is all that matters)
                    let mut out = Vec::new();
                    while cache.cursor <= client {
                        let c = cache.cursor;
                        cache.snapshots.push(cache.pools.next_id.clone());
                        let refs = {
                            let pools = &mut cache.pools;
                            self.draw_pooled(pools, c)
                        };
                        if c == client {
                            out = refs;
                        }
                        cache.cursor += 1;
                    }
                    out
                }
            }
        }
    }

    /// The per-client RNG stream and class weights — identical derivations
    /// to the historical eager builder, per heterogeneity kind.
    fn client_rng_and_weights(&self, client: usize) -> (Prng, Vec<f64>) {
        match self.kind {
            HeterogeneityKind::Iid => {
                let rng = Prng::derive(self.seed, &[rng_tags::PARTITION_IID, client as u64]);
                (rng, vec![1.0; self.classes])
            }
            HeterogeneityKind::Dirichlet(alpha) => {
                let mut rng =
                    Prng::derive(self.seed, &[rng_tags::PARTITION_DIRICHLET, client as u64]);
                let probs = dirichlet(alpha, self.classes, &mut rng);
                (rng, probs)
            }
            HeterogeneityKind::Orthogonal(k) => {
                let cluster = client % k;
                // classes are split into k contiguous groups; group g
                // covers classes [g*classes/k, (g+1)*classes/k)
                let lo = cluster * self.classes / k;
                let hi = (cluster + 1) * self.classes / k;
                let probs: Vec<f64> = (0..self.classes)
                    .map(|cl| if cl >= lo && cl < hi { 1.0 } else { 0.0 })
                    .collect();
                let rng = Prng::derive(self.seed, &[rng_tags::PARTITION_ORTHOGONAL, client as u64]);
                (rng, probs)
            }
        }
    }

    /// Pooled-regime draw for one client against the given pool state.
    fn draw_pooled(&self, pools: &mut ClassPools, client: usize) -> Vec<SampleRef> {
        let (mut rng, probs) = self.client_rng_and_weights(client);
        pools.draw(&probs, self.client_samples, &mut rng)
    }

    /// Independent-regime draw: ids sampled uniformly from the per-class
    /// pool *with replacement across the federation*, so the shard is a
    /// pure function of `(seed, client)`.
    fn draw_independent(&self, client: usize) -> Vec<SampleRef> {
        let (mut rng, probs) = self.client_rng_and_weights(client);
        let total: f64 = probs.iter().sum();
        assert!(total > 0.0, "class weights must have positive mass");
        let mut out = Vec::with_capacity(self.client_samples);
        for _ in 0..self.client_samples {
            let mut u = rng.uniform() as f64 * total;
            let mut chosen = 0;
            for (c, &w) in probs.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                u -= w;
                chosen = c;
                if u <= 0.0 {
                    break;
                }
            }
            let id = rng.below(self.pool_per_class) as u32;
            out.push(SampleRef {
                class: chosen as u16,
                id,
            });
        }
        out
    }

    /// Per-client histogram over *generating* classes (paper Fig. 4).
    ///
    /// Walks every client — O(N × client_samples) — without memoizing the
    /// shards it draws, so analysis over a small federation stays cheap and
    /// a large one doesn't pin O(N) shard memory.
    pub fn label_histograms(&self) -> Vec<Vec<usize>> {
        let mut cache = self.cache.lock().expect("partition cache poisoned"); // lint:allow(panic) — poisoning implies a prior panic
        (0..self.n_clients)
            .map(|c| {
                let mut h = vec![0usize; self.classes];
                let refs = match cache.shards.get(&c) {
                    Some(s) => s.to_vec(),
                    None => self.draw_shard(&mut cache, c),
                };
                for r in &refs {
                    h[r.class as usize] += 1;
                }
                h
            })
            .collect()
    }

    /// Number of classes with at least one sample, per client.
    pub fn classes_per_client(&self) -> Vec<usize> {
        self.label_histograms()
            .iter()
            .map(|h| h.iter().filter(|&&c| c > 0).count())
            .collect()
    }

    /// Earth-mover-style skew statistic: mean total-variation distance
    /// between each client's label distribution and the global uniform one.
    /// 0 = perfectly IID, approaches `1 - 1/classes` for one-class clients.
    pub fn skew(&self) -> f64 {
        let hists = self.label_histograms();
        let mut total = 0.0;
        for h in &hists {
            let n: usize = h.iter().sum();
            if n == 0 {
                continue;
            }
            let tv: f64 = h
                .iter()
                .map(|&c| (c as f64 / n as f64 - 1.0 / self.classes as f64).abs())
                .sum::<f64>()
                / 2.0;
            total += tv;
        }
        total / hists.len() as f64
    }
}

/// Finite per-class sample pools; draws hand out fresh ids without
/// replacement and renormalize over non-empty classes.
struct ClassPools {
    /// Next unused id per class.
    next_id: Vec<u32>,
    /// Pool capacity per class.
    cap: u32,
}

impl ClassPools {
    fn new(classes: usize, per_class: usize) -> Self {
        ClassPools {
            next_id: vec![0; classes],
            cap: per_class as u32,
        }
    }

    /// Rehydrate pool state from a per-class next-id snapshot.
    fn from_snapshot(next_id: Vec<u32>, cap: u32) -> Self {
        ClassPools { next_id, cap }
    }

    fn remaining(&self, class: usize) -> u32 {
        self.cap - self.next_id[class]
    }

    /// Draw `count` samples according to unnormalized class weights,
    /// skipping exhausted classes.
    fn draw(&mut self, weights: &[f64], count: usize, rng: &mut Prng) -> Vec<SampleRef> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let total: f64 = weights
                .iter()
                .enumerate()
                .filter(|(c, _)| self.remaining(*c) > 0)
                .map(|(_, &w)| w)
                .sum();
            assert!(
                total > 0.0,
                "all requested classes exhausted (pools too small for partition)"
            );
            let mut u = rng.uniform() as f64 * total;
            let mut chosen = None;
            for (c, &w) in weights.iter().enumerate() {
                if self.remaining(c) == 0 {
                    continue;
                }
                u -= w;
                if u <= 0.0 {
                    chosen = Some(c);
                    break;
                }
            }
            // floating-point edge: fall back to the last viable class
            let c = chosen.unwrap_or_else(|| {
                (0..weights.len())
                    .rev()
                    .find(|&c| self.remaining(c) > 0 && weights[c] > 0.0)
                    .expect("viable class exists because total > 0") // lint:allow(panic) — guarded by total > 0 above
            });
            out.push(SampleRef {
                class: c as u16,
                id: self.next_id[c],
            });
            self.next_id[c] += 1;
        }
        out
    }
}

/// Sample a probability vector from `Dir(alpha * 1)`.
fn dirichlet(alpha: f64, k: usize, rng: &mut Prng) -> Vec<f64> {
    let mut g: Vec<f64> = (0..k).map(|_| rng.gamma(alpha).max(1e-300)).collect();
    let s: f64 = g.iter().sum();
    for v in &mut g {
        *v /= s;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetKind;

    fn spec() -> DatasetSpec {
        DatasetKind::MnistLike.spec()
    }

    /// Materialize every shard in client order (the historical eager shape).
    fn materialize(p: &Partition) -> Vec<Vec<SampleRef>> {
        (0..p.n_clients()).map(|c| p.shard(c).to_vec()).collect()
    }

    /// The pre-lazy eager builder, kept verbatim as the ground truth the
    /// lazy pooled regime must reproduce byte-for-byte.
    fn eager_reference(
        spec: &DatasetSpec,
        kind: HeterogeneityKind,
        n_clients: usize,
        seed: u64,
    ) -> Vec<Vec<SampleRef>> {
        let mut pools = ClassPools::new(spec.classes, spec.pool_per_class());
        (0..n_clients)
            .map(|c| match kind {
                HeterogeneityKind::Iid => {
                    let probs = vec![1.0; spec.classes];
                    let mut rng = Prng::derive(seed, &[rng_tags::PARTITION_IID, c as u64]);
                    pools.draw(&probs, spec.client_samples, &mut rng)
                }
                HeterogeneityKind::Dirichlet(alpha) => {
                    let mut rng = Prng::derive(seed, &[rng_tags::PARTITION_DIRICHLET, c as u64]);
                    let probs = dirichlet(alpha, spec.classes, &mut rng);
                    pools.draw(&probs, spec.client_samples, &mut rng)
                }
                HeterogeneityKind::Orthogonal(k) => {
                    let cluster = c % k;
                    let lo = cluster * spec.classes / k;
                    let hi = (cluster + 1) * spec.classes / k;
                    let probs: Vec<f64> = (0..spec.classes)
                        .map(|cl| if cl >= lo && cl < hi { 1.0 } else { 0.0 })
                        .collect();
                    let mut rng = Prng::derive(seed, &[rng_tags::PARTITION_ORTHOGONAL, c as u64]);
                    pools.draw(&probs, spec.client_samples, &mut rng)
                }
            })
            .collect()
    }

    #[test]
    fn lazy_pooled_matches_eager_reference_bit_for_bit() {
        for kind in [
            HeterogeneityKind::Iid,
            HeterogeneityKind::Dirichlet(0.5),
            HeterogeneityKind::Orthogonal(5),
        ] {
            let p = Partition::build(&spec(), kind, 10, 42);
            assert_eq!(p.regime(), ShardRegime::Pooled);
            assert_eq!(
                materialize(&p),
                eager_reference(&spec(), kind, 10, 42),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn lazy_access_order_never_changes_shards() {
        // out-of-order, repeated, and interleaved access must produce the
        // same bytes as a clean sequential walk
        let kind = HeterogeneityKind::Dirichlet(0.5);
        let sequential = materialize(&Partition::build(&spec(), kind, 10, 7));
        let p = Partition::build(&spec(), kind, 10, 7);
        for &c in &[9usize, 3, 3, 0, 7, 1, 9, 5, 2, 8, 6, 4, 0] {
            assert_eq!(p.shard(c).to_vec(), sequential[c], "client {c}");
        }
        assert_eq!(p.resident_shards(), 10);
    }

    #[test]
    fn shards_memoize_and_stay_sparse() {
        let p = Partition::build(&spec(), HeterogeneityKind::Iid, 50, 3);
        assert_eq!(p.resident_shards(), 0);
        let a = p.shard(30);
        let b = p.shard(30);
        assert!(Arc::ptr_eq(&a, &b), "repeat access must hit the memo");
        p.shard(4);
        assert_eq!(p.resident_shards(), 2, "only touched clients materialize");
    }

    #[test]
    fn every_client_gets_its_quota() {
        let p = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 10, 1);
        assert_eq!(p.n_clients(), 10);
        for c in materialize(&p) {
            assert_eq!(c.len(), 600);
        }
    }

    #[test]
    fn samples_are_disjoint_across_clients() {
        let p = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.1), 10, 2);
        let mut seen = std::collections::HashSet::new();
        for c in materialize(&p) {
            for r in c {
                assert!(seen.insert((r.class, r.id)), "duplicate sample {r:?}");
            }
        }
    }

    #[test]
    fn ids_stay_within_pool() {
        let s = spec();
        let p = Partition::build(&s, HeterogeneityKind::Iid, 10, 3);
        let cap = s.pool_per_class() as u32;
        for c in materialize(&p) {
            for r in c {
                assert!(r.id < cap);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 6, 9);
        let b = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 6, 9);
        assert_eq!(materialize(&a), materialize(&b));
        let c = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 6, 10);
        assert_ne!(materialize(&a), materialize(&c));
    }

    #[test]
    fn dirichlet_skew_ordering_matches_paper() {
        // Fig. 4: Dir-0.1 is more skewed than Dir-0.5, which is more skewed
        // than IID.
        let iid = Partition::build(&spec(), HeterogeneityKind::Iid, 10, 4);
        let d5 = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.5), 10, 4);
        let d1 = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.1), 10, 4);
        assert!(iid.skew() < d5.skew(), "{} !< {}", iid.skew(), d5.skew());
        assert!(d5.skew() < d1.skew(), "{} !< {}", d5.skew(), d1.skew());
    }

    #[test]
    fn dir01_clients_hold_few_classes() {
        // Paper: under Dir-0.1 most clients hold 1-2 dominant classes. With
        // finite pools some spillover happens; check the dominant mass.
        let p = Partition::build(&spec(), HeterogeneityKind::Dirichlet(0.1), 10, 5);
        let hists = p.label_histograms();
        let mut dominant = 0.0;
        for h in &hists {
            let n: usize = h.iter().sum();
            let mut sorted = h.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            dominant += (sorted[0] + sorted[1]) as f64 / n as f64;
        }
        dominant /= hists.len() as f64;
        assert!(
            dominant > 0.6,
            "top-2 class mass {dominant} too low for Dir-0.1"
        );
    }

    #[test]
    fn orthogonal_5_two_classes_each() {
        // 10 classes, 5 clusters -> each cluster owns exactly 2 classes.
        let p = Partition::build(&spec(), HeterogeneityKind::Orthogonal(5), 10, 6);
        for (ci, h) in p.label_histograms().iter().enumerate() {
            let nz: Vec<usize> = (0..10).filter(|&c| h[c] > 0).collect();
            assert!(nz.len() <= 2, "client {ci} has classes {nz:?}");
            let cluster = ci % 5;
            for c in nz {
                assert_eq!(c / 2, cluster, "class {c} outside cluster {cluster}");
            }
        }
    }

    #[test]
    fn orthogonal_10_single_class_each() {
        let p = Partition::build(&spec(), HeterogeneityKind::Orthogonal(10), 10, 7);
        for h in p.classes_per_client() {
            assert_eq!(h, 1);
        }
    }

    #[test]
    fn orthogonal_clusters_are_mutually_disjoint_in_classes() {
        let p = Partition::build(&spec(), HeterogeneityKind::Orthogonal(5), 10, 8);
        let hists = p.label_histograms();
        // client i and client j in different clusters share no class
        for i in 0..10 {
            for j in 0..10 {
                if i % 5 == j % 5 {
                    continue;
                }
                for (c, (&a, &b)) in hists[i].iter().zip(&hists[j]).enumerate() {
                    assert!(!(a > 0 && b > 0), "clients {i},{j} share class {c}");
                }
            }
        }
    }

    #[test]
    fn iid_is_roughly_uniform() {
        let p = Partition::build(&spec(), HeterogeneityKind::Iid, 4, 9);
        for h in p.label_histograms() {
            for &c in &h {
                // 600 samples over 10 classes -> expect 60 per class
                assert!((20..=120).contains(&c), "count {c} too far from 60");
            }
        }
    }

    #[test]
    fn oversubscription_switches_to_independent_regime() {
        // requesting more samples than the dataset holds used to panic the
        // eager builder; it now selects per-client independent draws
        let mut s = spec();
        s.client_samples = s.total_samples; // one client wants everything
        let p = Partition::build(&s, HeterogeneityKind::Iid, 2, 0);
        assert_eq!(p.regime(), ShardRegime::Independent);
        let shard = p.shard(1);
        assert_eq!(shard.len(), s.total_samples);
        let cap = s.pool_per_class() as u32;
        assert!(shard.iter().all(|r| r.id < cap));
    }

    #[test]
    fn independent_regime_is_flat_in_population_size() {
        // a 100k-client federation constructs instantly and touches only
        // the shards actually requested
        let mut s = spec();
        s.client_samples = 60; // smoke-style override
        let p = Partition::build(&s, HeterogeneityKind::Dirichlet(0.5), 100_000, 11);
        assert_eq!(p.regime(), ShardRegime::Independent);
        for &c in &[0usize, 99_999, 31_337] {
            assert_eq!(p.shard(c).len(), 60);
        }
        assert_eq!(p.resident_shards(), 3);
        // pure function of (seed, client): a fresh instance agrees
        let q = Partition::build(&s, HeterogeneityKind::Dirichlet(0.5), 100_000, 11);
        assert_eq!(q.shard(31_337).to_vec(), p.shard(31_337).to_vec());
    }

    #[test]
    fn independent_regime_respects_orthogonal_class_slices() {
        let mut s = spec();
        s.client_samples = 50;
        let p = Partition::build(&s, HeterogeneityKind::Orthogonal(5), 10_000, 12);
        assert_eq!(p.regime(), ShardRegime::Independent);
        for &c in &[17usize, 9_998] {
            let cluster = c % 5;
            for r in p.shard(c).iter() {
                assert_eq!(r.class as usize / 2, cluster, "client {c}");
            }
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(HeterogeneityKind::Dirichlet(0.1).name(), "Dir-0.1");
        assert_eq!(HeterogeneityKind::Orthogonal(5).name(), "Orthogonal-5");
        assert_eq!(HeterogeneityKind::Iid.name(), "IID");
    }

    #[test]
    fn dirichlet_probabilities_sum_to_one() {
        let mut rng = Prng::seed_from_u64(1);
        for &alpha in &[0.1, 0.5, 1.0, 10.0] {
            let p = dirichlet(alpha, 12, &mut rng);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }
}
