//! # fedtrip-data
//!
//! Federated datasets for the FedTrip reproduction.
//!
//! The paper evaluates on MNIST, FashionMNIST, EMNIST and CIFAR-10. Real
//! downloads are unavailable in this environment, so [`synth`] provides
//! *procedural class-conditional* image datasets with the exact geometry of
//! Table II (classes, channels, sizes, per-client sample counts). What the
//! experiments actually measure — relative convergence speed under label-skew
//! heterogeneity — depends on the *label distribution across clients*, which
//! [`partition`] reproduces faithfully (Dirichlet and orthogonal-cluster
//! partitioning as described in §V-A).
//!
//! Every sample is a pure function of `(dataset seed, class, sample id)`, so
//! datasets are never materialized in full: clients hold lightweight
//! [`synth::SampleRef`]s and synthesize mini-batches on demand.

#![forbid(unsafe_code)]

pub mod loader;
pub mod partition;
pub mod synth;

pub use loader::BatchIter;
pub use partition::{HeterogeneityKind, Partition};
pub use synth::{DatasetKind, DatasetSpec, SampleRef, SyntheticVision};
