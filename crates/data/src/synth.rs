//! Procedural class-conditional image datasets.
//!
//! Each class of a dataset owns a *prototype* image — a seeded mixture of
//! Gaussian blobs (per channel). A sample is the prototype under a random
//! integer translation and amplitude scaling, plus per-pixel Gaussian noise,
//! and (to give the paper's "target accuracy" thresholds meaning) a fixed
//! fraction of samples carry a *flipped label*, which caps the achievable
//! accuracy per dataset near the paper's reported plateaus.
//!
//! Determinism: pixels and the (possibly flipped) label of a sample are pure
//! functions of `(dataset seed, class, sample id)` — no global state, no
//! materialized arrays, safe to synthesize concurrently from rayon workers.

use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use fedtrip_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The four dataset presets of paper Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// MNIST-like: 28x28 grayscale, 10 classes, 600 samples/client.
    MnistLike,
    /// FashionMNIST-like: 28x28 grayscale, 10 classes, 1000 samples/client.
    FmnistLike,
    /// EMNIST-like: 28x28 grayscale, 47 classes, 3000 samples/client.
    EmnistLike,
    /// CIFAR-10-like: 32x32 RGB, 10 classes, 2000 samples/client.
    Cifar10Like,
}

impl DatasetKind {
    /// All presets, in the paper's Table II order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::MnistLike,
        DatasetKind::FmnistLike,
        DatasetKind::EmnistLike,
        DatasetKind::Cifar10Like,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "MNIST",
            DatasetKind::FmnistLike => "FMNIST",
            DatasetKind::EmnistLike => "EMNIST",
            DatasetKind::Cifar10Like => "CIFAR-10",
        }
    }

    /// The dataset geometry and difficulty parameters.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::MnistLike => DatasetSpec {
                kind: *self,
                classes: 10,
                channels: 1,
                height: 28,
                width: 28,
                total_samples: 60_000,
                client_samples: 600,
                pixel_noise: 0.55,
                jitter: 3,
                label_flip: 0.02,
                blob_count: 4,
                class_scale: 0.55,
                amp_jitter: 0.35,
            },
            DatasetKind::FmnistLike => DatasetSpec {
                kind: *self,
                classes: 10,
                channels: 1,
                height: 28,
                width: 28,
                total_samples: 60_000,
                client_samples: 1_000,
                pixel_noise: 0.60,
                jitter: 3,
                label_flip: 0.08,
                blob_count: 3,
                class_scale: 0.60,
                amp_jitter: 0.45,
            },
            DatasetKind::EmnistLike => DatasetSpec {
                kind: *self,
                classes: 47,
                channels: 1,
                height: 28,
                width: 28,
                total_samples: 112_800,
                client_samples: 3_000,
                pixel_noise: 0.45,
                jitter: 2,
                label_flip: 0.15,
                blob_count: 4,
                class_scale: 0.85,
                amp_jitter: 0.35,
            },
            DatasetKind::Cifar10Like => DatasetSpec {
                kind: *self,
                classes: 10,
                channels: 3,
                height: 32,
                width: 32,
                total_samples: 50_000,
                client_samples: 2_000,
                pixel_noise: 0.90,
                jitter: 3,
                label_flip: 0.20,
                blob_count: 3,
                class_scale: 0.40,
                amp_jitter: 0.55,
            },
        }
    }
}

/// Geometry + difficulty of one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which preset this spec belongs to.
    pub kind: DatasetKind,
    /// Number of classes.
    pub classes: usize,
    /// Image channels (1 = grayscale, 3 = RGB).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Total training samples (paper Table II "Total Samples").
    pub total_samples: usize,
    /// Training samples held by each client (paper Table II).
    pub client_samples: usize,
    /// Standard deviation of additive pixel noise.
    pub pixel_noise: f32,
    /// Maximum absolute integer translation applied to the prototype.
    pub jitter: i32,
    /// Fraction of samples whose label is flipped to a random other class —
    /// this bounds achievable accuracy and makes "target accuracy" rows
    /// meaningful.
    pub label_flip: f64,
    /// Gaussian blobs per prototype channel.
    pub blob_count: usize,
    /// Amplitude of the class-specific pattern relative to the shared
    /// (class-independent) background pattern. Smaller values make classes
    /// harder to tell apart.
    pub class_scale: f32,
    /// Per-sample multiplicative jitter on each class blob's amplitude
    /// (intra-class appearance variability).
    pub amp_jitter: f32,
}

impl DatasetSpec {
    /// Elements of one sample (`channels * height * width`).
    pub fn sample_elems(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Per-sample tensor shape `[channels, height, width]`.
    pub fn sample_shape(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// Training pool size per class (balanced pools).
    pub fn pool_per_class(&self) -> usize {
        self.total_samples / self.classes
    }
}

/// A reference to one synthesizable sample: `(class, id)` within the class
/// pool. Test-set samples use ids beyond the training pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleRef {
    /// Generating class (the *true* class; the observed label may be flipped).
    pub class: u16,
    /// Sample id within the class pool.
    pub id: u32,
}

/// One Gaussian blob of a class prototype.
#[derive(Debug, Clone, Copy)]
struct Blob {
    cx: f32,
    cy: f32,
    sigma: f32,
    amp: f32,
}

/// A procedural class-conditional image dataset.
///
/// Cheap to clone (prototypes are shared via `Arc`-free copy of a small
/// `Vec`), and all sampling is deterministic in `(seed, class, id)`.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    spec: DatasetSpec,
    seed: u64,
    /// `[class][channel]` blob lists — the class-specific pattern.
    prototypes: Vec<Vec<Vec<Blob>>>,
    /// `[channel]` blob lists — the shared background pattern every class
    /// sits on (classes differ only by `class_scale * prototype`).
    base: Vec<Vec<Blob>>,
}

impl SyntheticVision {
    /// Build a dataset with the given preset and seed.
    pub fn new(kind: DatasetKind, seed: u64) -> Self {
        let spec = kind.spec();
        let mut prototypes = Vec::with_capacity(spec.classes);
        for class in 0..spec.classes {
            let mut per_channel = Vec::with_capacity(spec.channels);
            for ch in 0..spec.channels {
                let mut rng = Prng::derive(seed, &[rng_tags::SYNTH_PROTO, class as u64, ch as u64]);
                let blobs = (0..spec.blob_count)
                    .map(|_| Blob {
                        cx: rng.uniform() * spec.width as f32,
                        cy: rng.uniform() * spec.height as f32,
                        sigma: spec.height as f32 * (0.10 + 0.15 * rng.uniform()),
                        amp: if rng.uniform() < 0.25 { -1.0 } else { 1.0 }
                            * (0.6 + 0.4 * rng.uniform()),
                    })
                    .collect();
                per_channel.push(blobs);
            }
            prototypes.push(per_channel);
        }
        let mut base = Vec::with_capacity(spec.channels);
        for ch in 0..spec.channels {
            let mut rng = Prng::derive(seed, &[rng_tags::SYNTH_BASE, ch as u64]);
            let blobs = (0..spec.blob_count + 1)
                .map(|_| Blob {
                    cx: rng.uniform() * spec.width as f32,
                    cy: rng.uniform() * spec.height as f32,
                    sigma: spec.height as f32 * (0.15 + 0.20 * rng.uniform()),
                    amp: if rng.uniform() < 0.5 { -1.0 } else { 1.0 } * (0.5 + 0.5 * rng.uniform()),
                })
                .collect();
            base.push(blobs);
        }
        SyntheticVision {
            spec,
            seed,
            prototypes,
            base,
        }
    }

    /// The dataset spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Seed the dataset was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The *observed* label of a sample (true class, except for the
    /// deterministic `label_flip` fraction, which maps to a different class).
    pub fn label_of(&self, r: SampleRef) -> usize {
        let mut rng = Prng::derive(
            self.seed,
            &[
                rng_tags::SYNTH_SAMPLE,
                r.class as u64,
                r.id as u64,
                rng_tags::SYNTH_LABEL_FLIP,
            ],
        );
        if (rng.uniform() as f64) < self.spec.label_flip {
            // flip to a uniformly random *other* class
            let other = rng.below(self.spec.classes - 1);
            if other >= r.class as usize {
                other + 1
            } else {
                other
            }
        } else {
            r.class as usize
        }
    }

    /// Synthesize the pixels of one sample into `out` (length
    /// `sample_elems()`), normalized to roughly `[-1, 1]`.
    pub fn write_sample(&self, r: SampleRef, out: &mut [f32]) {
        let spec = &self.spec;
        debug_assert_eq!(out.len(), spec.sample_elems());
        let mut rng = Prng::derive(
            self.seed,
            &[rng_tags::SYNTH_SAMPLE, r.class as u64, r.id as u64],
        );
        let dx = rng.below(2 * spec.jitter as usize + 1) as i32 - spec.jitter;
        let dy = rng.below(2 * spec.jitter as usize + 1) as i32 - spec.jitter;
        let scale = 0.8 + 0.4 * rng.uniform();

        let (h, w) = (spec.height, spec.width);
        for (ch, blobs) in self.prototypes[r.class as usize].iter().enumerate() {
            // per-sample multiplicative jitter on each class blob
            let amp_jit: Vec<f32> = blobs
                .iter()
                .map(|_| 1.0 + spec.amp_jitter * rng.normal())
                .collect();
            let base_blobs = &self.base[ch];
            let plane = &mut out[ch * h * w..(ch + 1) * h * w];
            for y in 0..h {
                for x in 0..w {
                    // evaluate both patterns at the *source* location
                    let sx = x as f32 - dx as f32;
                    let sy = y as f32 - dy as f32;
                    let mut shared = 0.0f32;
                    for b in base_blobs {
                        let ddx = sx - b.cx;
                        let ddy = sy - b.cy;
                        let d2 = ddx * ddx + ddy * ddy;
                        shared += b.amp * (-d2 / (2.0 * b.sigma * b.sigma)).exp();
                    }
                    let mut class_part = 0.0f32;
                    for (b, &jit) in blobs.iter().zip(&amp_jit) {
                        let ddx = sx - b.cx;
                        let ddy = sy - b.cy;
                        let d2 = ddx * ddx + ddy * ddy;
                        class_part += jit * b.amp * (-d2 / (2.0 * b.sigma * b.sigma)).exp();
                    }
                    plane[y * w + x] = scale * (shared + spec.class_scale * class_part);
                }
            }
            for v in plane.iter_mut() {
                *v += spec.pixel_noise * rng.normal();
            }
        }
    }

    /// Synthesize a mini-batch: `[batch, C, H, W]` tensor plus observed labels.
    pub fn batch(&self, refs: &[SampleRef]) -> (Tensor, Vec<usize>) {
        assert!(!refs.is_empty(), "empty batch");
        let spec = &self.spec;
        let mut t = Tensor::zeros(&[refs.len(), spec.channels, spec.height, spec.width]);
        let mut labels = Vec::with_capacity(refs.len());
        self.batch_into(refs, &mut t, &mut labels);
        (t, labels)
    }

    /// Like [`SyntheticVision::batch`], but synthesizes into caller-owned
    /// buffers: `x` is re-shaped in place (its storage is reused when large
    /// enough) and `labels` is cleared and refilled. This is the hot-loop
    /// form used by the local-SGD trainer so steady-state batch synthesis
    /// does not allocate. Every pixel is overwritten, so stale contents in
    /// `x` never leak through.
    pub fn batch_into(&self, refs: &[SampleRef], x: &mut Tensor, labels: &mut Vec<usize>) {
        assert!(!refs.is_empty(), "empty batch");
        let spec = &self.spec;
        let elems = spec.sample_elems();
        x.reuse(&[refs.len(), spec.channels, spec.height, spec.width]);
        labels.clear();
        let data = x.as_mut_slice();
        for (i, &r) in refs.iter().enumerate() {
            self.write_sample(r, &mut data[i * elems..(i + 1) * elems]);
            labels.push(self.label_of(r));
        }
    }

    /// A balanced held-out test set (`per_class` samples per class), drawn
    /// from ids *beyond* the training pool so it never overlaps client data.
    pub fn test_set(&self, per_class: usize) -> (Tensor, Vec<usize>) {
        let pool = self.spec.pool_per_class() as u32;
        let refs: Vec<SampleRef> = (0..self.spec.classes as u16)
            .flat_map(|class| {
                (0..per_class as u32).map(move |i| SampleRef {
                    class,
                    id: pool + i,
                })
            })
            .collect();
        self.batch(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometry_matches_paper() {
        // Paper Table II rows.
        let m = DatasetKind::MnistLike.spec();
        assert_eq!(
            (m.total_samples, m.classes, m.channels, m.client_samples),
            (60_000, 10, 1, 600)
        );
        let f = DatasetKind::FmnistLike.spec();
        assert_eq!(
            (f.total_samples, f.classes, f.channels, f.client_samples),
            (60_000, 10, 1, 1_000)
        );
        let e = DatasetKind::EmnistLike.spec();
        assert_eq!(
            (e.total_samples, e.classes, e.channels, e.client_samples),
            (112_800, 47, 1, 3_000)
        );
        let c = DatasetKind::Cifar10Like.spec();
        assert_eq!(
            (c.total_samples, c.classes, c.channels, c.client_samples),
            (50_000, 10, 3, 2_000)
        );
    }

    #[test]
    fn samples_are_deterministic() {
        let d1 = SyntheticVision::new(DatasetKind::MnistLike, 42);
        let d2 = SyntheticVision::new(DatasetKind::MnistLike, 42);
        let r = SampleRef { class: 3, id: 17 };
        let mut a = vec![0.0; d1.spec().sample_elems()];
        let mut b = vec![0.0; d2.spec().sample_elems()];
        d1.write_sample(r, &mut a);
        d2.write_sample(r, &mut b);
        assert_eq!(a, b);
        assert_eq!(d1.label_of(r), d2.label_of(r));
    }

    #[test]
    fn different_seeds_differ() {
        let d1 = SyntheticVision::new(DatasetKind::MnistLike, 1);
        let d2 = SyntheticVision::new(DatasetKind::MnistLike, 2);
        let r = SampleRef { class: 0, id: 0 };
        let mut a = vec![0.0; d1.spec().sample_elems()];
        let mut b = vec![0.0; d2.spec().sample_elems()];
        d1.write_sample(r, &mut a);
        d2.write_sample(r, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn different_ids_differ_within_class() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 7);
        let mut a = vec![0.0; d.spec().sample_elems()];
        let mut b = vec![0.0; d.spec().sample_elems()];
        d.write_sample(SampleRef { class: 5, id: 0 }, &mut a);
        d.write_sample(SampleRef { class: 5, id: 1 }, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn label_flip_rate_is_near_spec() {
        let d = SyntheticVision::new(DatasetKind::EmnistLike, 11);
        let n = 8_000u32;
        let flipped = (0..n)
            .filter(|&id| d.label_of(SampleRef { class: 4, id }) != 4)
            .count();
        let rate = flipped as f64 / n as f64;
        let expect = d.spec().label_flip;
        assert!(
            (rate - expect).abs() < 0.02,
            "flip rate {rate} vs spec {expect}"
        );
    }

    #[test]
    fn flipped_labels_stay_in_range() {
        let d = SyntheticVision::new(DatasetKind::Cifar10Like, 13);
        for id in 0..500 {
            let l = d.label_of(SampleRef { class: 9, id });
            assert!(l < d.spec().classes);
        }
    }

    #[test]
    fn batch_shape_and_labels() {
        let d = SyntheticVision::new(DatasetKind::Cifar10Like, 3);
        let refs: Vec<SampleRef> = (0..4).map(|i| SampleRef { class: i, id: 0 }).collect();
        let (x, y) = d.batch(&refs);
        assert_eq!(x.shape(), &[4, 3, 32, 32]);
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn test_set_is_balanced_and_disjoint_from_train_pool() {
        let d = SyntheticVision::new(DatasetKind::MnistLike, 5);
        let (x, y) = d.test_set(3);
        assert_eq!(x.shape()[0], 30);
        // 3 of each true class were requested; observed labels may be
        // flipped but counts of generating classes are exact by construction.
        assert_eq!(y.len(), 30);
    }

    #[test]
    fn class_prototypes_are_separable() {
        // nearest-class-mean classification must beat chance by a wide
        // margin — this guards against degenerate prototypes. (The tasks are
        // deliberately noisy; a trained CNN reaches ~93%, while this crude
        // pixel-space classifier only needs to clear 5x chance.)
        let d = SyntheticVision::new(DatasetKind::MnistLike, 19);
        let elems = d.spec().sample_elems();
        let per_class = 32;
        // class means from samples
        let mut means = vec![vec![0.0f32; elems]; 10];
        for c in 0..10u16 {
            let mut buf = vec![0.0; elems];
            for id in 0..per_class {
                d.write_sample(SampleRef { class: c, id }, &mut buf);
                for (m, &v) in means[c as usize].iter_mut().zip(&buf) {
                    *m += v / per_class as f32;
                }
            }
        }
        // classify fresh samples by nearest mean
        let mut correct = 0;
        let mut total = 0;
        let mut buf = vec![0.0; elems];
        for c in 0..10u16 {
            for id in per_class..per_class + 8 {
                d.write_sample(SampleRef { class: c, id }, &mut buf);
                let best = (0..10)
                    .min_by(|&a, &b| {
                        let da: f32 = means[a]
                            .iter()
                            .zip(&buf)
                            .map(|(m, v)| (m - v).powi(2))
                            .sum();
                        let db: f32 = means[b]
                            .iter()
                            .zip(&buf)
                            .map(|(m, v)| (m - v).powi(2))
                            .sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                if best == c as usize {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.5, "nearest-prototype accuracy too low: {acc}");
    }

    #[test]
    fn pixel_values_are_bounded_sane() {
        let d = SyntheticVision::new(DatasetKind::FmnistLike, 23);
        let mut buf = vec![0.0; d.spec().sample_elems()];
        d.write_sample(SampleRef { class: 2, id: 9 }, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite() && v.abs() < 6.0));
    }
}
