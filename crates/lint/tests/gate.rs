//! Fixture corpus + self-application.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace shaped
//! like the real one (`crates/<name>/src/…`), crafted so exactly one rule
//! fires — proving every rule can actually bite — plus sanction-behavior
//! and false-positive guards. The final test lints the real repository
//! and requires it clean: the gate in CI can only stay green if this
//! test's view of the tree matches `lint_gate`'s.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use fedtrip_lint::{lint_workspace, LintConfig, LintReport};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> LintReport {
    lint_workspace(&fixture(name), &LintConfig::default()).unwrap()
}

/// The set of distinct rule ids a fixture trips.
fn rules_hit(name: &str) -> BTreeSet<&'static str> {
    lint_fixture(name)
        .diagnostics
        .iter()
        .map(|d| d.rule)
        .collect()
}

fn only(rule: &'static str) -> BTreeSet<&'static str> {
    [rule].into_iter().collect()
}

#[test]
fn r1_map_iteration_fires_alone() {
    assert_eq!(rules_hit("r1_map_iter"), only("determinism"));
}

#[test]
fn r1_wall_clock_fires_alone() {
    assert_eq!(rules_hit("r1_time"), only("determinism"));
}

#[test]
fn r2_inline_tag_fires_alone() {
    let report = lint_fixture("r2_inline_tag");
    assert_eq!(
        report
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect::<BTreeSet<_>>(),
        only("rng-tags")
    );
    assert!(report.diagnostics[0].message.contains("0xBEEF"));
}

#[test]
fn r2_registry_collision_fires_alone() {
    let report = lint_fixture("r2_registry_collision");
    assert_eq!(
        report
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect::<BTreeSet<_>>(),
        only("rng-tags")
    );
    assert!(report.diagnostics[0].message.contains("DISPATCH"));
}

#[test]
fn r3_sum_fires_alone() {
    assert_eq!(rules_hit("r3_sum"), only("float-fold"));
}

#[test]
fn r3_loop_accumulation_fires_alone() {
    assert_eq!(rules_hit("r3_loop_acc"), only("float-fold"));
}

#[test]
fn r4_missing_safety_comment_fires_alone() {
    assert_eq!(rules_hit("r4_missing_safety"), only("unsafe"));
}

#[test]
fn r4_missing_forbid_fires_alone() {
    let report = lint_fixture("r4_missing_forbid");
    assert_eq!(
        report
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect::<BTreeSet<_>>(),
        only("unsafe")
    );
    assert!(report.diagnostics[0]
        .message
        .contains("#![forbid(unsafe_code)]"));
}

#[test]
fn r5_unwrap_fires_alone() {
    assert_eq!(rules_hit("r5_unwrap"), only("panic"));
}

#[test]
fn r6_schema_drift_fires_alone() {
    let report = lint_fixture("r6_drift");
    assert_eq!(
        report
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect::<BTreeSet<_>>(),
        only("checkpoint-schema")
    );
    assert!(report.diagnostics[0].message.contains("drifted"));
}

#[test]
fn reasoned_sanction_suppresses_the_finding() {
    let report = lint_fixture("sanctioned");
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn reasonless_sanction_suppresses_nothing_and_is_flagged() {
    let hit = rules_hit("reasonless");
    assert_eq!(hit, ["lint-syntax", "panic"].into_iter().collect());
}

#[test]
fn trip_words_in_comments_and_strings_do_not_fire() {
    let report = lint_fixture("false_positives");
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, &LintConfig::default()).unwrap();
    assert!(
        report.is_clean(),
        "workspace has unsanctioned findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // the walker must actually be looking at the tree, not an empty dir
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}
