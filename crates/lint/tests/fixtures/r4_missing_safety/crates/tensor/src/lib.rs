//! Fixture: `unsafe` block missing its safety-proof comment (R4).

pub fn peek(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
