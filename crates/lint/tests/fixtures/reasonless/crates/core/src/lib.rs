#![forbid(unsafe_code)]
//! Fixture: a reasonless sanction suppresses nothing and is itself
//! flagged — both `lint-syntax` and `panic` must fire.

pub fn first(xs: &[u32]) -> u32 {
    // lint:allow(panic)
    *xs.first().unwrap()
}
