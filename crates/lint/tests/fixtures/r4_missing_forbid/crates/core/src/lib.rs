//! Fixture: unsafe-free crate missing `#![forbid(unsafe_code)]` (R4).

pub fn id(x: u64) -> u64 {
    x
}
