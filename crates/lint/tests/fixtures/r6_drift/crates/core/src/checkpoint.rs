//! Fixture: serialized layout drifted from the committed manifest (R6).

pub const CHECKPOINT_VERSION: u32 = 2;

#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub version: u32,
    pub round: u64,
}
