#![forbid(unsafe_code)]
//! Fixture: the same R5 violation as `r5_unwrap`, but sanctioned with a
//! reason — must lint clean.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint:allow(panic) — caller guarantees non-empty input
}
