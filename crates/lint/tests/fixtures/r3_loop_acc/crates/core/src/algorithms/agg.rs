//! Fixture: float `+=` loop accumulation outside sanctioned helpers (R3).

pub fn fold_params(acc: &mut [f32], xs: &[f32], w: f32) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += w * x;
    }
}
