#![forbid(unsafe_code)]
//! Fixture: HashMap iteration in a deterministic crate (R1).

use std::collections::HashMap;

/// Keyed access stays legal; iteration does not.
pub fn total(m: &HashMap<u64, u64>) -> u64 {
    let mut t = m.get(&0).copied().unwrap_or(0);
    for v in m.values() {
        t = t.wrapping_add(*v);
    }
    t
}
