#![forbid(unsafe_code)]
//! Fixture: wall-clock read in a deterministic crate (R1).

pub fn stamp() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
