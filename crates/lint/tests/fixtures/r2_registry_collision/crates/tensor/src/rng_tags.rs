//! Fixture: two registry tags share a value (R2).

pub const SELECT: u64 = 0x10;
pub const DISPATCH: u64 = 0x10;
