#![forbid(unsafe_code)]
//! Fixture: `.unwrap()` in library code (R5).

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
