#![forbid(unsafe_code)]
//! Fixture: inline RNG tag literal at a derive call site (R2).

pub struct Prng(u64);

impl Prng {
    pub fn derive(seed: u64, tags: &[u64]) -> Prng {
        Prng(seed ^ tags.iter().copied().fold(0, u64::wrapping_add))
    }
}

pub fn stream(seed: u64, round: u64) -> Prng {
    Prng::derive(seed, &[0xBEEF, round])
}
