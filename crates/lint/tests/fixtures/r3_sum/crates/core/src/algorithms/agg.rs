//! Fixture: `.sum()` reduction outside the sanctioned fold helpers (R3).

pub fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len().max(1) as f32
}
