#![forbid(unsafe_code)]
//! Fixture: trip-words inside comments and strings must NOT fire any
//! rule. Docs mention .unwrap(), panic!, std::time::Instant, SystemTime,
//! HashMap iteration via .keys(), and Prng::derive(seed, &[1, 2]).

/// Instantiate the report ("Instantiate" contains "Instant" as a
/// substring; the whole-ident check must not bite).
pub fn instantiate() -> &'static str {
    // a comment calling x.unwrap() and m.values() and panic!("nope")
    "calls .unwrap() and panic! and SystemTime and Prng::derive(s, &[7])"
}

/// Raw strings get the same treatment.
pub fn raw() -> &'static str {
    r#"for v in m.values() { q.sum::<f32>() } unsafe { }"#
}
