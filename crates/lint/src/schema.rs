//! R6 — checkpoint schema drift.
//!
//! Extracts the serialized field lists of every `#[derive(Serialize/
//! Deserialize)]` struct in the checkpoint source file and compares them
//! against the committed manifest (`results/checkpoint_schema.json`).
//! A layout change without a `CHECKPOINT_VERSION` bump — or a doc comment /
//! error string still advertising the old version — is exactly the drift
//! that turns "snapshot does not fit the layout" errors into silent
//! misloads, so it fails the gate.

use crate::context::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// Everything extracted from the checkpoint source file.
pub struct SchemaInfo {
    /// Value of `CHECKPOINT_VERSION`.
    pub version: u64,
    /// Serialized structs: (name, field names, (start_line, end_line)).
    pub structs: Vec<(String, Vec<String>, (u32, u32))>,
}

/// Extract [`SchemaInfo`] from the checkpoint source, or `None` when the
/// file defines no `CHECKPOINT_VERSION` (then R6 does not apply).
pub fn extract(ctx: &FileCtx) -> Option<SchemaInfo> {
    let t = ctx.tokens;
    let mut version = None;
    for i in 0..t.len() {
        if t[i].kind == TokenKind::Ident && t[i].text == "CHECKPOINT_VERSION" {
            // const CHECKPOINT_VERSION: u32 = 5;
            let mut j = i + 1;
            while j < t.len() && t[j].text != "=" && t[j].text != ";" {
                j += 1;
            }
            if j + 1 < t.len() && t[j].text == "=" && t[j + 1].kind == TokenKind::Num {
                version = t[j + 1].text.replace('_', "").parse::<u64>().ok();
                break;
            }
        }
    }
    let version = version?;

    let mut structs = Vec::new();
    let mut i = 0;
    while i + 1 < t.len() {
        // a `#[derive(… Serialize|Deserialize …)]` attribute
        let is_derive = t[i].text == "#"
            && t[i + 1].text == "["
            && t.get(i + 2).map(|x| x.text == "derive").unwrap_or(false);
        if !is_derive {
            i += 1;
            continue;
        }
        // bracket-match the attribute, noting whether it serializes
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut serialized = false;
        while j < t.len() {
            match t[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "Serialize" | "Deserialize" => serialized = true,
                _ => {}
            }
            j += 1;
        }
        // skip further attributes to the item
        while j + 1 < t.len() && t[j].text == "#" && t[j + 1].text == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < t.len() {
                match t[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if t.get(j).map(|x| x.text == "pub").unwrap_or(false) {
            j += 1;
        }
        if serialized
            && t.get(j).map(|x| x.text == "struct").unwrap_or(false)
            && t.get(j + 1)
                .map(|x| x.kind == TokenKind::Ident)
                .unwrap_or(false)
        {
            let name = t[j + 1].text.clone();
            // find the body `{`
            let mut k = j + 2;
            while k < t.len() && t[k].text != "{" && t[k].text != ";" {
                k += 1;
            }
            if k < t.len() && t[k].text == "{" {
                let (fields, end) = struct_fields(t, k);
                structs.push((name, fields, (t[j + 1].line, end)));
            }
        }
        i = j.max(i + 1);
    }
    Some(SchemaInfo { version, structs })
}

/// Field names of the struct body opening at token index `open` (a `{`),
/// plus the closing line.
fn struct_fields(t: &[crate::lexer::Token], open: usize) -> (Vec<String>, u32) {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    let mut expecting = false;
    let mut end_line = t[open].line;
    while i < t.len() {
        match t[i].text.as_str() {
            "{" | "(" | "[" => {
                depth += 1;
                if depth == 1 {
                    expecting = true;
                }
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    end_line = t[i].line;
                    break;
                }
            }
            "," if depth == 1 => expecting = true,
            "#" if depth == 1 => {
                // field attribute: skip `#[ … ]`
                if t.get(i + 1).map(|x| x.text == "[").unwrap_or(false) {
                    let mut d = 0usize;
                    i += 1;
                    while i < t.len() {
                        match t[i].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            "pub" if depth == 1 => {
                // swallow `pub` and an optional `(crate)` restriction
                if t.get(i + 1).map(|x| x.text == "(").unwrap_or(false) {
                    while i < t.len() && t[i].text != ")" {
                        i += 1;
                    }
                }
            }
            _ => {
                if expecting
                    && depth == 1
                    && t[i].kind == TokenKind::Ident
                    && t.get(i + 1).map(|x| x.text == ":").unwrap_or(false)
                {
                    fields.push(t[i].text.clone());
                    expecting = false;
                }
            }
        }
        i += 1;
    }
    (fields, end_line)
}

/// Render the canonical manifest for `info` (what `lint_gate
/// --update-schema` writes).
pub fn render_manifest(info: &SchemaInfo) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"checkpoint_version\": {},\n", info.version));
    s.push_str("  \"structs\": {\n");
    for (i, (name, fields, _)) in info.structs.iter().enumerate() {
        let list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
        s.push_str(&format!(
            "    \"{name}\": [{}]{}\n",
            list.join(", "),
            if i + 1 < info.structs.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Run the R6 checks for the checkpoint source `ctx` against the manifest
/// file contents (`None` when the manifest is missing on disk).
pub fn check(ctx: &FileCtx, manifest: Option<&str>, manifest_rel: &str, out: &mut Vec<Diagnostic>) {
    let Some(info) = extract(ctx) else {
        return;
    };
    let push = |out: &mut Vec<Diagnostic>, line: u32, message: String| {
        if !ctx.sanctioned("checkpoint-schema", line) {
            out.push(Diagnostic {
                file: ctx.rel.clone(),
                line,
                rule: "checkpoint-schema",
                message,
            });
        }
    };

    // 1. the manifest must exist and parse
    let manifest_value = manifest.and_then(|m| serde_json::from_str::<serde_json::Value>(m).ok());
    let Some(mv) = manifest_value else {
        push(
            out,
            1,
            format!(
                "serialized checkpoint layout has no committed manifest; run \
                 `cargo run --release -p fedtrip-bench --bin lint_gate -- --update-schema` \
                 to write {manifest_rel}"
            ),
        );
        doc_checks(ctx, &info, out);
        return;
    };

    // 2. version agreement
    let manifest_version = mv.get("checkpoint_version").and_then(|v| v.as_u64());
    if manifest_version != Some(info.version) {
        push(
            out,
            1,
            format!(
                "CHECKPOINT_VERSION is {} but {manifest_rel} records {:?}; schema changes \
                 must bump the version and regenerate the manifest together",
                info.version, manifest_version
            ),
        );
    }

    // 3. field lists agree both ways
    let empty: &[(String, serde_json::Value)] = &[];
    let manifest_structs = mv
        .get("structs")
        .and_then(|v| v.as_object())
        .unwrap_or(empty);
    for (name, fields, (line, _)) in &info.structs {
        let Some((_, mf)) = manifest_structs.iter().find(|(k, _)| k == name) else {
            push(
                out,
                *line,
                format!(
                    "serialized struct {name} is not in {manifest_rel}; bump \
                     CHECKPOINT_VERSION and regenerate the manifest"
                ),
            );
            continue;
        };
        let manifest_fields: Vec<String> = mf
            .as_array()
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        if manifest_fields != *fields {
            push(
                out,
                *line,
                format!(
                    "struct {name} fields [{}] drifted from the manifest's [{}]; bump \
                     CHECKPOINT_VERSION and regenerate {manifest_rel}",
                    fields.join(", "),
                    manifest_fields.join(", ")
                ),
            );
        }
    }
    for (name, _) in manifest_structs {
        if !info.structs.iter().any(|(n, _, _)| n == name) {
            push(
                out,
                1,
                format!(
                    "{manifest_rel} records struct {name} which no longer exists in the \
                     checkpoint source; regenerate the manifest"
                ),
            );
        }
    }

    doc_checks(ctx, &info, out);
}

/// Doc-text and string-literal version checks: `always N` comments must
/// match their struct's version, and no string literal may hardcode a
/// `v<N> layout` phrase (it goes stale the moment the version bumps).
fn doc_checks(ctx: &FileCtx, info: &SchemaInfo, out: &mut Vec<Diagnostic>) {
    let mut push = |line: u32, message: String| {
        if !ctx.sanctioned("checkpoint-schema", line) {
            out.push(Diagnostic {
                file: ctx.rel.clone(),
                line,
                rule: "checkpoint-schema",
                message,
            });
        }
    };
    for c in ctx.comments {
        for claimed in phrase_numbers(&c.text, "always ") {
            // expected version: the suffix of the enclosing `…V<M>` legacy
            // struct, else the current version
            let enclosing = info
                .structs
                .iter()
                .find(|(_, _, (s, e))| c.line >= *s && c.line <= *e)
                .or_else(|| {
                    // leading doc: attribute to a struct starting within a
                    // few lines below the comment (attributes in between)
                    info.structs
                        .iter()
                        .filter(|(_, _, (s, _))| *s >= c.end_line && *s - c.end_line <= 6)
                        .min_by_key(|(_, _, (s, _))| *s)
                });
            let expected = enclosing
                .and_then(|(name, _, _)| version_suffix(name))
                .unwrap_or(info.version);
            if claimed != expected {
                push(
                    c.line,
                    format!(
                        "doc says the version field is always {claimed}, but this layout is \
                         version {expected}; stale version docs mislead checkpoint forensics"
                    ),
                );
            }
        }
    }
    for t in ctx.tokens {
        if t.kind != TokenKind::Str {
            continue;
        }
        for n in phrase_numbers(&t.text, "v") {
            // legacy-loader messages pin their own frozen version forever;
            // only the *current* layout's message can go stale at a bump
            if n < info.version || !t.text.contains(&format!("v{n} layout")) {
                continue;
            }
            push(
                t.line,
                format!(
                    "string literal hardcodes \"v{n} layout\"; interpolate \
                     CHECKPOINT_VERSION so the message cannot go stale"
                ),
            );
        }
    }
}

/// Numbers directly following `prefix` in `text` (`"always 4"` → `[4]`).
fn phrase_numbers(text: &str, prefix: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(prefix) {
        let tail = &rest[pos + prefix.len()..];
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() {
            // require a word boundary before the prefix ("v5" yes, "env5" no)
            let boundary = rest[..pos]
                .chars()
                .next_back()
                .map(|c| !c.is_alphanumeric())
                .unwrap_or(true);
            if boundary {
                if let Ok(n) = digits.parse() {
                    out.push(n);
                }
            }
        }
        rest = &rest[pos + prefix.len()..];
    }
    out
}

/// `CheckpointV4` → `Some(4)`.
fn version_suffix(name: &str) -> Option<u64> {
    let pos = name.rfind('V')?;
    let digits = &name[pos + 1..];
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const SRC: &str = r#"
pub const CHECKPOINT_VERSION: u32 = 5;
/// The version field is always 5.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub version: u32,
    pub round: u64,
}
/// Legacy layout; version is always 4 here.
#[derive(Deserialize)]
struct CheckpointV4 {
    version: u32,
}
struct NotSerialized { x: u32 }
"#;

    #[test]
    fn extracts_version_and_serialized_structs_only() {
        let l = lex(SRC);
        let ctx = FileCtx::new("c.rs".into(), "core".into(), &l);
        let info = extract(&ctx).unwrap();
        assert_eq!(info.version, 5);
        let names: Vec<&str> = info.structs.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["Checkpoint", "CheckpointV4"]);
        assert_eq!(info.structs[0].1, ["version", "round"]);
    }

    #[test]
    fn manifest_agreement_is_clean_and_drift_fires() {
        let l = lex(SRC);
        let ctx = FileCtx::new("c.rs".into(), "core".into(), &l);
        let info = extract(&ctx).unwrap();
        let manifest = render_manifest(&info);
        let mut out = Vec::new();
        check(&ctx, Some(&manifest), "m.json", &mut out);
        assert!(out.is_empty(), "clean schema flagged: {out:?}");

        let drifted = manifest.replace("\"round\"", "\"rounds\"");
        check(&ctx, Some(&drifted), "m.json", &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("drifted"));
    }

    #[test]
    fn stale_always_doc_and_hardcoded_layout_string_fire() {
        let src = SRC.replace("always 4 here", "always 3 here")
            + "fn f() -> &'static str { \"does not fit the v5 layout\" }\n";
        let l = lex(&src);
        let ctx = FileCtx::new("c.rs".into(), "core".into(), &l);
        let info = extract(&ctx).unwrap();
        let manifest = render_manifest(&info);
        let mut out = Vec::new();
        check(&ctx, Some(&manifest), "m.json", &mut out);
        let msgs: Vec<&str> = out.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("always 3")));
        assert!(msgs.iter().any(|m| m.contains("v5 layout")));
    }

    #[test]
    fn missing_manifest_fires() {
        let l = lex(SRC);
        let ctx = FileCtx::new("c.rs".into(), "core".into(), &l);
        let mut out = Vec::new();
        check(&ctx, None, "results/checkpoint_schema.json", &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no committed manifest"));
    }
}
