//! A hand-rolled token-level scanner for Rust source.
//!
//! Deliberately **not** an AST parser (no `syn` — consistent with the
//! workspace's offline-shim philosophy): the rules this crate enforces are
//! about *lexical* facts — which identifiers appear where, which literals
//! sit in which argument position, which comments precede which keyword —
//! and a token stream answers those questions without a grammar. What the
//! lexer must get exactly right is the part naive `grep` cannot: comments
//! (line, nested block, doc), string literals (escaped, raw with `#`
//! fences, byte), char literals versus lifetimes, and numeric literals
//! with `_` separators. Everything inside a comment or string is opaque to
//! the rules, which is what kills the "`unwrap` mentioned in a doc
//! comment" class of false positive.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// Numeric literal (`1`, `0xD15_9A7C`, `1.0e-3`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), quotes
    /// included in `text`.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-char operators (`::`, `+=`, `..=`, …) come as
    /// one token.
    Punct,
}

/// One source token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line `//`, doc `///` / `//!`, or block `/* */`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// True when a token precedes the comment on its start line (a
    /// trailing comment annotates its own line, not the next one).
    pub trailing: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order. Comments are *not* tokens.
    pub tokens: Vec<Token>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. The lexer is total: unexpected bytes become single-char
/// punct tokens rather than errors, so a half-written file still lints.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_token = false;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            line_has_token = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line,
                end_line: line,
                trailing: line_has_token,
            });
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let trailing = line_has_token;
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
                end_line: line,
                trailing,
            });
            continue;
        }
        // raw / byte strings and raw identifiers
        if c == 'r' || c == 'b' {
            // br"..", rb is not a thing; rb#".."# invalid; rb ident fine
            let mut j = i;
            let mut saw_b = false;
            if b[j] == 'b' {
                saw_b = true;
                j += 1;
            }
            let raw = j < n && b[j] == 'r';
            if raw {
                j += 1;
            }
            let mut hashes = 0usize;
            while raw && j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if (raw || saw_b) && j < n && b[j] == '"' {
                // raw or byte string: scan to closing quote + hashes
                let start = i;
                let start_line = line;
                i = j + 1;
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if !raw && b[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if b[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: b[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
                line_has_token = true;
                continue;
            }
            if raw && hashes == 1 && j < n && is_ident_start(b[j]) {
                // raw identifier r#type
                let start = i;
                i = j;
                while i < n && is_ident(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
                line_has_token = true;
                continue;
            }
            // plain identifier starting with r/b — fall through
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            line_has_token = true;
            continue;
        }
        // plain strings
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            line_has_token = true;
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let start = i;
            if i + 1 < n && b[i + 1] == '\\' {
                // escaped char literal '\n', '\'', '\u{..}'
                i += 2;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i = (i + 1).min(n);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else if i + 2 < n && b[i + 2] == '\'' {
                // one-char literal 'a' (also '_' and digits)
                i += 3;
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                // lifetime 'a / 'static
                i += 1;
                while i < n && is_ident(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            line_has_token = true;
            continue;
        }
        // numbers (incl. 0xAB_CD, 1.0e-3, 42u64)
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            let hex = i < n && (b[i] == 'x' || b[i] == 'X' || b[i] == 'o' || b[i] == 'b');
            if hex {
                i += 1;
            }
            while i < n {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == '_' {
                    // exponent sign: 1e-3 / 1E+3 (decimal floats only)
                    if !hex
                        && (d == 'e' || d == 'E')
                        && i + 1 < n
                        && (b[i + 1] == '+' || b[i + 1] == '-')
                        && i + 2 < n
                        && b[i + 2].is_ascii_digit()
                    {
                        i += 2;
                    }
                    i += 1;
                } else if d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() && !hex {
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            line_has_token = true;
            continue;
        }
        // punctuation; longest-match multi-char operators first
        const MULTI: [&str; 18] = [
            "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "&&",
            "||", "==", "!=", "<=",
        ];
        let rest: String = b[i..(i + 3).min(n)].iter().collect();
        let mut matched = None;
        for op in MULTI {
            if rest.starts_with(op) {
                matched = Some(op);
                break;
            }
        }
        if let Some(op) = matched {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: op.to_string(),
                line,
            });
            i += op.len();
        } else {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
        line_has_token = true;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let l = lex("let x = \"a.unwrap()\"; // .unwrap() here too\n");
        assert!(l.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].trailing);
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex("let s = r#\"panic!(\"no\")\"#; let t = b\"bytes\";");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert!(l.tokens.iter().all(|t| t.text != "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn hex_literals_with_separators() {
        let l = lex("const T: u64 = 0xD15_9A7C;");
        let num = l.tokens.iter().find(|t| t.kind == TokenKind::Num).unwrap();
        assert_eq!(num.text, "0xD15_9A7C");
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        assert!(texts("for i in 0..n {}").contains(&"..".to_string()));
        assert!(texts("for i in 0..=k {}").contains(&"..=".to_string()));
    }

    #[test]
    fn multi_char_ops() {
        let t = texts("a += 1; b::c(); x -> y");
        assert!(t.contains(&"+=".to_string()));
        assert!(t.contains(&"::".to_string()));
        assert!(t.contains(&"->".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens[0].text, "fn");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
