//! The rule catalogue: R1–R6 plus the sanction-syntax meta rule.
//!
//! Each rule is a pure function from a [`FileCtx`] (or, for the
//! workspace-level rules, a set of them) to diagnostics. Rules skip
//! `#[cfg(test)]` regions where noted and honour per-site
//! `// lint:allow(<rule>) — <reason>` sanctions; a sanction without a
//! reason suppresses nothing (and is itself flagged by `lint-syntax`).

use crate::context::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::LintConfig;

/// Rule ids with one-line summaries (also rendered in the JSON report).
pub const RULES: &[(&str, &str)] = &[
    (
        "determinism",
        "no HashMap/HashSet iteration or wall-clock reads in deterministic crates (R1)",
    ),
    (
        "rng-tags",
        "Prng::derive first tag element must be a named registry constant; registry values pairwise-distinct (R2)",
    ),
    (
        "float-fold",
        "f32/f64 reductions only inside sanctioned fold helpers in aggregation code (R3)",
    ),
    (
        "unsafe",
        "every unsafe block/fn carries a SAFETY comment; unsafe-free crates forbid unsafe_code (R4)",
    ),
    (
        "panic",
        "no unwrap/expect/panic! in library code without a reasoned sanction (R5)",
    ),
    (
        "checkpoint-schema",
        "serialized checkpoint layouts match the committed manifest and version docs (R6)",
    ),
    (
        "lint-syntax",
        "lint:allow sanctions must name known rules and give a reason",
    ),
];

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Emit `d` unless a sanction covers (rule, line).
fn push(out: &mut Vec<Diagnostic>, ctx: &FileCtx, rule: &'static str, line: u32, message: String) {
    if !ctx.sanctioned(rule, line) {
        out.push(Diagnostic {
            file: ctx.rel.clone(),
            line,
            rule,
            message,
        });
    }
}

/// Meta rule: malformed sanctions (no reason, no rules, unknown rule id).
pub fn lint_syntax(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for s in &ctx.sanctions {
        if !s.has_reason {
            out.push(Diagnostic {
                file: ctx.rel.clone(),
                line: s.at,
                rule: "lint-syntax",
                message: "lint:allow sanction has no reason; write `// lint:allow(rule) — why`"
                    .into(),
            });
        }
        if s.rules.is_empty() && s.has_reason {
            out.push(Diagnostic {
                file: ctx.rel.clone(),
                line: s.at,
                rule: "lint-syntax",
                message: "lint:allow sanction names no rules".into(),
            });
        }
        for r in &s.rules {
            if !known_rule(r) {
                out.push(Diagnostic {
                    file: ctx.rel.clone(),
                    line: s.at,
                    rule: "lint-syntax",
                    message: format!("lint:allow names unknown rule `{r}`"),
                });
            }
        }
    }
}

/// R1 — determinism: no `HashMap`/`HashSet` *iteration* (keyed access stays
/// legal) in the deterministic crates, and no `SystemTime`/`Instant`
/// outside the bench crate.
pub fn determinism(ctx: &FileCtx, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    let deterministic = cfg.deterministic_crates.contains(&ctx.crate_name);
    let time_exempt = cfg.time_exempt_crates.contains(&ctx.crate_name);

    if !time_exempt {
        for (i, tok) in t.iter().enumerate() {
            if tok.kind == TokenKind::Ident
                && (tok.text == "SystemTime" || tok.text == "Instant")
                && !ctx.in_test_code(i)
            {
                push(
                    out,
                    ctx,
                    "determinism",
                    tok.line,
                    format!(
                        "std::time::{} breaks run reproducibility; simulated time goes through \
                         VirtualClock (wall-clock reads are bench-crate-only)",
                        tok.text
                    ),
                );
            }
        }
    }
    if !deterministic {
        return;
    }

    // names bound to HashMap/HashSet via `name: HashMap<..>` ascription
    // (let bindings, struct fields, closure params) or
    // `name = HashMap::new()/with_capacity(..)`
    let mut maps: Vec<String> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if tok.kind != TokenKind::Ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        // walk back over path/reference noise to a possible `name :`
        let mut j = i;
        while j > 0 {
            let p = &t[j - 1].text;
            if p == "::" || p == "std" || p == "collections" || p == "&" || p == "mut" {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && t[j - 1].text == ":" && t[j - 2].kind == TokenKind::Ident {
            maps.push(t[j - 2].text.clone());
        }
        // `= HashMap::new(` / `with_capacity(` / `from(`
        if i + 2 < t.len() && t[i + 1].text == "::" && t[i + 2].kind == TokenKind::Ident {
            let ctor = &t[i + 2].text;
            if (ctor == "new" || ctor == "with_capacity" || ctor == "from")
                && j >= 2
                && t[j - 1].text == "="
                && t[j - 2].kind == TokenKind::Ident
            {
                maps.push(t[j - 2].text.clone());
            }
        }
    }
    maps.sort_unstable();
    maps.dedup();

    const ITER_METHODS: [&str; 7] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "drain",
    ];
    for i in 0..t.len() {
        if ctx.in_test_code(i) {
            continue;
        }
        // name.iter() / name.keys() / …
        if i + 3 < t.len()
            && t[i].kind == TokenKind::Ident
            && maps.iter().any(|m| *m == t[i].text)
            && t[i + 1].text == "."
            && ITER_METHODS.contains(&t[i + 2].text.as_str())
            && t[i + 3].text == "("
        {
            push(
                out,
                ctx,
                "determinism",
                t[i].line,
                format!(
                    "`{}.{}()` iterates a Hash{{Map,Set}} in arbitrary order; keyed access is \
                     fine, iteration must go through a sorted/BTree view",
                    t[i].text,
                    t[i + 2].text
                ),
            );
        }
        // for x in &name { … }
        if t[i].kind == TokenKind::Ident && t[i].text == "for" {
            // find the `in` of this for-loop, then the loop `{`
            let mut j = i + 1;
            while j < t.len() && t[j].text != "in" && t[j].text != "{" && t[j].text != ";" {
                j += 1;
            }
            if j >= t.len() || t[j].text != "in" {
                continue;
            }
            let mut k = j + 1;
            while k < t.len() && t[k].text != "{" {
                if t[k].kind == TokenKind::Ident
                    && maps.iter().any(|m| *m == t[k].text)
                    && t.get(k + 1).map(|n| n.text != ".").unwrap_or(true)
                {
                    push(
                        out,
                        ctx,
                        "determinism",
                        t[k].line,
                        format!(
                            "`for … in {}` iterates a Hash{{Map,Set}} in arbitrary order",
                            t[k].text
                        ),
                    );
                }
                k += 1;
            }
        }
    }
}

/// R2 (call-site half) — every `Prng::derive(seed, &[…])` first element
/// must be a named SCREAMING_SNAKE constant, never an inline literal.
pub fn rng_tags_call_sites(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    for i in 0..t.len().saturating_sub(3) {
        if !(t[i].text == "Prng"
            && t[i + 1].text == "::"
            && t[i + 2].text == "derive"
            && t[i + 3].text == "(")
        {
            continue;
        }
        if ctx.in_test_code(i) {
            continue;
        }
        // scan the argument list for the `&[` opening the tag slice
        let mut j = i + 4;
        let mut depth = 1i32; // inside the call parens
        let mut slice_start = None;
        while j < t.len() && depth > 0 {
            match t[j].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                "&" if depth == 1 && t.get(j + 1).map(|n| n.text == "[").unwrap_or(false) => {
                    slice_start = Some(j + 2);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(s) = slice_start else {
            // tags passed as a variable — nothing checkable at token level
            continue;
        };
        // first element: tokens until `,` or `]` at slice depth
        let mut k = s;
        let mut d = 0i32;
        let mut elem: Vec<&crate::lexer::Token> = Vec::new();
        while k < t.len() {
            let tx = t[k].text.as_str();
            if d == 0 && (tx == "," || tx == "]") {
                break;
            }
            match tx {
                "(" | "[" => d += 1,
                ")" | "]" => d -= 1,
                _ => {}
            }
            elem.push(&t[k]);
            k += 1;
        }
        let line = t[i].line;
        let ok = !elem.is_empty()
            && elem
                .iter()
                .all(|e| e.kind == TokenKind::Ident || e.text == "::")
            && elem
                .last()
                .map(|e| {
                    let s = &e.text;
                    s.len() > 1
                        && s.chars().any(|c| c.is_ascii_uppercase())
                        && !s.chars().any(|c| c.is_ascii_lowercase())
                })
                .unwrap_or(false);
        if !ok {
            let rendered: String = elem.iter().map(|e| e.text.as_str()).collect();
            push(
                out,
                ctx,
                "rng-tags",
                line,
                format!(
                    "first Prng::derive tag element `{rendered}` is not a named rng_tags \
                     constant; inline tags invite silent stream collisions"
                ),
            );
        }
    }
}

/// R2 (registry half) — `pub const NAME: u64 = …;` values in the registry
/// file must be pairwise-distinct.
pub fn rng_tags_registry(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    let mut seen: Vec<(String, u64, u32)> = Vec::new();
    for i in 0..t.len().saturating_sub(5) {
        if !(t[i].text == "const"
            && t[i + 1].kind == TokenKind::Ident
            && t[i + 2].text == ":"
            && t[i + 3].text == "u64"
            && t[i + 4].text == "="
            && t[i + 5].kind == TokenKind::Num)
        {
            continue;
        }
        let name = t[i + 1].text.clone();
        let lit = t[i + 5].text.replace('_', "");
        let value = if let Some(hex) = lit.strip_prefix("0x").or_else(|| lit.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            lit.parse::<u64>().ok()
        };
        let Some(value) = value else { continue };
        if let Some((prev, _, _)) = seen.iter().find(|(_, v, _)| *v == value) {
            push(
                out,
                ctx,
                "rng-tags",
                t[i + 5].line,
                format!(
                    "registry tag {name} collides with {prev} on {value:#x}; colliding tags \
                     silently correlate their derived streams"
                ),
            );
        }
        seen.push((name, value, t[i + 5].line));
    }
}

/// R3 — float-fold discipline: in aggregation code, `.sum()` / `.fold(` /
/// `+=`-in-loop reductions live only inside the sanctioned fold helpers,
/// because reassociating a sum is exactly how golden fixtures break.
pub fn float_fold(ctx: &FileCtx, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    if !cfg.float_fold_paths.iter().any(|p| ctx.rel.contains(p)) {
        return;
    }
    let t = ctx.tokens;
    let in_sanctioned_fn = |i: usize| -> bool {
        ctx.enclosing_fn(i).is_some_and(|f| {
            cfg.sanctioned_fold_fns.contains(&f.name)
                || f.name.ends_with("_sweep")
                || cfg
                    .sanctioned_fold_methods
                    .iter()
                    .any(|(ty, m)| *m == f.name && f.impl_type.as_deref() == Some(ty.as_str()))
        })
    };
    // loop body spans, for the `+=` check
    let mut loops: Vec<(usize, usize)> = Vec::new();
    for i in 0..t.len() {
        if t[i].kind == TokenKind::Ident
            && (t[i].text == "for" || t[i].text == "while" || t[i].text == "loop")
        {
            let mut j = i + 1;
            let mut paren = 0i32;
            while j < t.len() {
                match t[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "{" if paren == 0 => break,
                    ";" if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < t.len() && t[j].text == "{" {
                let mut depth = 0usize;
                let mut k = j;
                while k < t.len() {
                    match t[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                loops.push((j, k));
            }
        }
    }
    let in_loop = |i: usize| loops.iter().any(|&(s, e)| i > s && i < e);

    for i in 0..t.len() {
        if ctx.in_test_code(i) || in_sanctioned_fn(i) {
            continue;
        }
        // .sum( / .sum::< / .fold(
        if t[i].text == "."
            && i + 2 < t.len()
            && t[i + 1].kind == TokenKind::Ident
            && (t[i + 1].text == "sum" || t[i + 1].text == "fold")
            && (t[i + 2].text == "(" || t[i + 2].text == "::")
        {
            push(
                out,
                ctx,
                "float-fold",
                t[i + 1].line,
                format!(
                    "`.{}(…)` reduction outside the sanctioned fold helpers; a reassociated \
                     float sum breaks the golden fixtures — route through \
                     weighted_param_average / ServerFold / a *_sweep kernel or sanction with \
                     a reason",
                    t[i + 1].text
                ),
            );
        }
        // `+=` accumulation inside a loop, when the statement shows float
        // evidence: a deref LHS (`*d += …` — the param-slice fold pattern)
        // or an RHS mentioning f32/f64/a float literal. Integer counters
        // (`samples += batch`) carry no reassociation hazard and pass.
        if t[i].text == "+=" && in_loop(i) {
            let stmt_start = (0..i)
                .rev()
                .find(|&j| t[j].text == ";" || t[j].text == "{" || t[j].text == "}")
                .map(|j| j + 1)
                .unwrap_or(0);
            let deref_lhs = t.get(stmt_start).map(|s| s.text == "*").unwrap_or(false);
            let mut float_rhs = false;
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < t.len() {
                match t[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    "f32" | "f64" => float_rhs = true,
                    _ => {
                        if t[j].kind == TokenKind::Num && t[j].text.contains('.') {
                            float_rhs = true;
                        }
                    }
                }
                j += 1;
            }
            if deref_lhs || float_rhs {
                push(
                    out,
                    ctx,
                    "float-fold",
                    t[i].line,
                    "float `+=` accumulation in a loop outside the sanctioned fold helpers; \
                     fold order is part of the reproducibility contract"
                        .to_string(),
                );
            }
        }
    }
}

/// R4 (site half) — every `unsafe` block / fn / impl is immediately
/// preceded by a `SAFETY` comment (`// SAFETY: …` or a `# Safety` doc
/// section).
pub fn unsafe_hygiene(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if !(t[i].kind == TokenKind::Ident && t[i].text == "unsafe") {
            continue;
        }
        let next = t.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        let (what, window) = match next {
            "{" => ("block", 8),
            "fn" => ("fn", 10),
            "impl" => ("impl", 10),
            _ => continue,
        };
        let line = t[i].line;
        let documented = ctx.comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + window > line
                && (c.text.contains("SAFETY") || c.text.contains("# Safety"))
        });
        if !documented {
            push(
                out,
                ctx,
                "unsafe",
                line,
                format!(
                    "`unsafe` {what} without an immediately-preceding `// SAFETY:` comment \
                     (or `# Safety` doc section) stating the proof obligation"
                ),
            );
        }
    }
}

/// Does this file's token stream contain real `unsafe` code?
pub fn has_unsafe(ctx: &FileCtx) -> bool {
    ctx.tokens.iter().enumerate().any(|(i, tok)| {
        tok.kind == TokenKind::Ident
            && tok.text == "unsafe"
            && ctx
                .tokens
                .get(i + 1)
                .map(|n| n.text == "{" || n.text == "fn" || n.text == "impl" || n.text == "trait")
                .unwrap_or(false)
    })
}

/// Does this (crate-root) file carry `#![forbid(unsafe_code)]`?
pub fn forbids_unsafe(ctx: &FileCtx) -> bool {
    let t = ctx.tokens;
    (0..t.len().saturating_sub(2))
        .any(|i| t[i].text == "forbid" && t[i + 1].text == "(" && t[i + 2].text == "unsafe_code")
}

/// R5 — panic hygiene: no `.unwrap()` / `.expect(` / `panic!` in library
/// code (bins, benches, examples and test code are exempt).
pub fn panic_hygiene(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.bin_or_test_path {
        return;
    }
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.in_test_code(i) {
            continue;
        }
        if t[i].text == "."
            && i + 2 < t.len()
            && t[i + 1].kind == TokenKind::Ident
            && (t[i + 1].text == "unwrap" || t[i + 1].text == "expect")
            && t[i + 2].text == "("
        {
            push(
                out,
                ctx,
                "panic",
                t[i + 1].line,
                format!(
                    "`.{}(…)` in library code; return an error (or sanction the genuinely \
                     infallible case with `// lint:allow(panic) — <invariant>`)",
                    t[i + 1].text
                ),
            );
        }
        if t[i].kind == TokenKind::Ident
            && t[i].text == "panic"
            && t.get(i + 1).map(|n| n.text == "!").unwrap_or(false)
        {
            push(
                out,
                ctx,
                "panic",
                t[i].line,
                "`panic!` in library code; return an error (or sanction with a reason)".to_string(),
            );
        }
    }
}
