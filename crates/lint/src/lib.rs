//! `fedtrip-lint` — workspace-local static analysis.
//!
//! A hand-rolled, token-level scanner (no `syn`, no proc-macro machinery —
//! consistent with the workspace's offline-shim philosophy) plus a rule
//! engine enforcing the invariants the test suite cannot see:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `determinism` | no `HashMap`/`HashSet` iteration or wall-clock reads in deterministic crates |
//! | `rng-tags` | `Prng::derive` first tag element is a named registry constant; registry pairwise-distinct |
//! | `float-fold` | f32/f64 reductions in aggregation code only inside sanctioned fold helpers |
//! | `unsafe` | every `unsafe` carries a `SAFETY` comment; unsafe-free crates `forbid(unsafe_code)` |
//! | `panic` | no `unwrap`/`expect`/`panic!` in library code |
//! | `checkpoint-schema` | serialized layouts match `results/checkpoint_schema.json` |
//!
//! Individual sites opt out with `// lint:allow(<rule>) — <reason>`; the
//! reason is mandatory (a reasonless sanction suppresses nothing and is
//! itself flagged). The `lint_gate` binary in `fedtrip-bench` runs
//! [`lint_workspace`] over the repository and fails CI on any finding.

#![forbid(unsafe_code)]

pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod schema;

pub use diag::{Diagnostic, LintReport};

use context::FileCtx;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What the rules need to know about the workspace being linted.
///
/// [`LintConfig::default`] encodes this repository's layout; fixtures in
/// `tests/fixtures/` reuse it by mimicking the same crate names and paths.
pub struct LintConfig {
    /// Crates whose library code must be bit-reproducible (R1 map-iteration
    /// check applies).
    pub deterministic_crates: Vec<String>,
    /// Crates allowed to read wall-clock time (`Instant`/`SystemTime`).
    pub time_exempt_crates: Vec<String>,
    /// Path fragments marking aggregation code subject to R3.
    pub float_fold_paths: Vec<String>,
    /// Free functions sanctioned to fold floats.
    pub sanctioned_fold_fns: Vec<String>,
    /// `(impl type, method)` pairs sanctioned to fold floats.
    pub sanctioned_fold_methods: Vec<(String, String)>,
    /// Workspace-relative path of the RNG tag registry (R2 distinctness).
    pub rng_registry: String,
    /// Workspace-relative path of the checkpoint source (R6).
    pub checkpoint_source: String,
    /// Workspace-relative path of the committed schema manifest (R6).
    pub checkpoint_manifest: String,
}

impl Default for LintConfig {
    fn default() -> Self {
        let own = |s: &[&str]| s.iter().map(|x| x.to_string()).collect();
        LintConfig {
            deterministic_crates: own(&["core", "tensor", "data", "models"]),
            time_exempt_crates: own(&["bench"]),
            float_fold_paths: own(&["/algorithms/", "runtime/scheduler.rs"]),
            // `server_fold` / `server_merge` are the AlgorithmStrategy fold
            // hooks — the *designated* place for per-outcome accumulation,
            // invoked in deterministic outcome order by the engine
            sanctioned_fold_fns: own(&["weighted_param_average", "server_fold", "server_merge"]),
            sanctioned_fold_methods: vec![
                ("ServerFold".into(), "absorb".into()),
                ("ServerFold".into(), "merge".into()),
                ("ServerFold".into(), "finish".into()),
                ("FoldPlan".into(), "for_outcomes".into()),
            ],
            rng_registry: "crates/tensor/src/rng_tags.rs".into(),
            checkpoint_source: "crates/core/src/checkpoint.rs".into(),
            checkpoint_manifest: "results/checkpoint_schema.json".into(),
        }
    }
}

/// One loaded source file, pre-lex.
struct SourceFile {
    rel: String,
    crate_name: String,
    lexed: lexer::Lexed,
}

/// Recursively collect `.rs` files under `dir` (sorted for deterministic
/// reports).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Load every lintable file under `root`: `src/` (the facade crate,
/// `fedtrip`) and `crates/*/src/` (crate name = directory name). Shims are
/// intentionally out of scope — they imitate external APIs.
fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut paths)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut paths)?;
        }
    }
    let mut out = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = match rel.strip_prefix("crates/") {
            Some(tail) => tail.split('/').next().unwrap_or("").to_string(),
            None => "fedtrip".to_string(),
        };
        let src = fs::read_to_string(&p)?;
        out.push(SourceFile {
            rel,
            crate_name,
            lexed: lexer::lex(&src),
        });
    }
    Ok(out)
}

/// Lint the workspace rooted at `root` with `cfg`.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<LintReport> {
    let files = load_workspace(root)?;
    let ctxs: Vec<FileCtx<'_>> = files
        .iter()
        .map(|f| FileCtx::new(f.rel.clone(), f.crate_name.clone(), &f.lexed))
        .collect();

    let mut diagnostics = Vec::new();
    for ctx in &ctxs {
        rules::lint_syntax(ctx, &mut diagnostics);
        rules::determinism(ctx, cfg, &mut diagnostics);
        rules::rng_tags_call_sites(ctx, &mut diagnostics);
        rules::float_fold(ctx, cfg, &mut diagnostics);
        rules::unsafe_hygiene(ctx, &mut diagnostics);
        rules::panic_hygiene(ctx, &mut diagnostics);
        if ctx.rel == cfg.rng_registry {
            rules::rng_tags_registry(ctx, &mut diagnostics);
        }
        if ctx.rel == cfg.checkpoint_source {
            let manifest = fs::read_to_string(root.join(&cfg.checkpoint_manifest)).ok();
            schema::check(
                ctx,
                manifest.as_deref(),
                &cfg.checkpoint_manifest,
                &mut diagnostics,
            );
        }
    }

    // R4b: crates with zero unsafe must forbid it at the crate root
    let mut crate_names: Vec<&str> = ctxs.iter().map(|c| c.crate_name.as_str()).collect();
    crate_names.sort_unstable();
    crate_names.dedup();
    for name in crate_names {
        let members: Vec<&FileCtx<'_>> = ctxs.iter().filter(|c| c.crate_name == name).collect();
        if members.iter().any(|c| rules::has_unsafe(c)) {
            continue;
        }
        let root_rel = if name == "fedtrip" {
            "src/lib.rs".to_string()
        } else {
            format!("crates/{name}/src/lib.rs")
        };
        let Some(lib) = members.iter().find(|c| c.rel == root_rel) else {
            continue; // bin-only crate: nothing to attach the attribute to
        };
        if !rules::forbids_unsafe(lib) && !lib.sanctioned("unsafe", 1) {
            diagnostics.push(Diagnostic {
                file: lib.rel.clone(),
                line: 1,
                rule: "unsafe",
                message: format!(
                    "crate `{name}` contains no unsafe code; add #![forbid(unsafe_code)] \
                     so none can creep in unnoticed"
                ),
            });
        }
    }

    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintReport {
        files_scanned: files.len(),
        diagnostics,
    })
}

/// Extract the checkpoint schema manifest text for the workspace at
/// `root`, or `None` when the checkpoint source is absent or defines no
/// `CHECKPOINT_VERSION`.
pub fn render_schema_manifest(root: &Path, cfg: &LintConfig) -> io::Result<Option<String>> {
    let path = root.join(&cfg.checkpoint_source);
    if !path.is_file() {
        return Ok(None);
    }
    let src = fs::read_to_string(&path)?;
    let lexed = lexer::lex(&src);
    let ctx = FileCtx::new(cfg.checkpoint_source.clone(), "core".to_string(), &lexed);
    Ok(schema::extract(&ctx).map(|info| schema::render_manifest(&info)))
}
