//! Diagnostics and the machine-readable report.

use std::fmt;

/// One finding: `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`determinism`, `rng-tags`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Full result of one workspace pass.
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the report as pretty JSON (hand-rolled: the report is the
    /// CI artifact, so its shape must not depend on shim internals).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"findings\": {},\n", self.diagnostics.len()));
        s.push_str("  \"rules\": [\n");
        for (i, (id, summary)) in crate::rules::RULES.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"summary\": {}}}{}\n",
                json_str(id),
                json_str(summary),
                if i + 1 < crate::rules::RULES.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.message),
                if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escape a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips_through_the_shim_parser() {
        let report = LintReport {
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                file: "crates/core/src/a.rs".into(),
                line: 7,
                rule: "panic",
                message: "a \"quoted\" message\nwith a newline".into(),
            }],
        };
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(v.get("files_scanned").and_then(|x| x.as_u64()), Some(2));
        let diags = v.get("diagnostics").and_then(|x| x.as_array()).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("rule").and_then(|x| x.as_str()), Some("panic"));
    }

    #[test]
    fn display_matches_grep_friendly_shape() {
        let d = Diagnostic {
            file: "src/lib.rs".into(),
            line: 3,
            rule: "determinism",
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "src/lib.rs:3: determinism: msg");
    }
}
