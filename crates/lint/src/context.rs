//! Per-file context derived from the token stream: `#[cfg(test)]` regions,
//! function and `impl` spans, and `lint:allow` sanction comments.

use crate::lexer::{Comment, Lexed, Token, TokenKind};

/// A half-open token-index range `[start, end)`.
pub type TokRange = (usize, usize);

/// One function's span in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type name, if any.
    pub impl_type: Option<String>,
    /// Token range of the whole item (from the `fn` keyword to the closing
    /// brace, exclusive).
    pub range: TokRange,
}

/// One site-level sanction parsed from a `// lint:allow(rule, …) — reason`
/// comment.
#[derive(Debug, Clone)]
pub struct Sanction {
    /// Rule ids the sanction covers.
    pub rules: Vec<String>,
    /// Source lines the sanction applies to (the comment's own line plus
    /// the next code line).
    pub lines: Vec<u32>,
    /// Line of the sanction comment itself.
    pub at: u32,
    /// True when a non-empty reason follows the rule list.
    pub has_reason: bool,
}

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path (`crates/core/src/engine.rs`).
    pub rel: String,
    /// Crate the file belongs to (`core`, `tensor`, …; the facade crate is
    /// `fedtrip`).
    pub crate_name: String,
    /// True when the path goes through `tests/`, `benches/`, `examples/`
    /// or `src/bin/` — binary or test code, exempt from library-hygiene
    /// rules.
    pub bin_or_test_path: bool,
    /// Token stream.
    pub tokens: &'a [Token],
    /// Comments.
    pub comments: &'a [Comment],
    /// Token ranges under `#[cfg(test)]`.
    pub test_ranges: Vec<TokRange>,
    /// Function spans, outermost first.
    pub fns: Vec<FnSpan>,
    /// Parsed sanctions.
    pub sanctions: Vec<Sanction>,
}

impl<'a> FileCtx<'a> {
    /// Build the context for one lexed file.
    pub fn new(rel: String, crate_name: String, lexed: &'a Lexed) -> FileCtx<'a> {
        let bin_or_test_path = rel
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples" || c == "bin");
        let test_ranges = cfg_test_ranges(&lexed.tokens);
        let fns = fn_spans(&lexed.tokens);
        let sanctions = parse_sanctions(&lexed.comments, &lexed.tokens);
        FileCtx {
            rel,
            crate_name,
            bin_or_test_path,
            tokens: &lexed.tokens,
            comments: &lexed.comments,
            test_ranges,
            fns,
            sanctions,
        }
    }

    /// Is token index `i` inside a `#[cfg(test)]` region?
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Innermost function span containing token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| i >= f.range.0 && i < f.range.1)
            .min_by_key(|f| f.range.1 - f.range.0)
    }

    /// Is `rule` sanctioned at source line `line`?
    pub fn sanctioned(&self, rule: &str, line: u32) -> bool {
        self.sanctions
            .iter()
            .any(|s| s.has_reason && s.lines.contains(&line) && s.rules.iter().any(|r| r == rule))
    }
}

/// Find the matching `}` for the `{` at token index `open` (returns the
/// index *after* it).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Token ranges covered by `#[cfg(test)]` attributes (the attribute's item
/// body, brace-matched).
fn cfg_test_ranges(tokens: &[Token]) -> Vec<TokRange> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 < tokens.len() {
        let is_cfg_test = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // skip to the end of this attribute, then over any further
        // attributes, to the annotated item
        let mut j = i + 1;
        loop {
            // j points at `[`: match brackets
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
                j += 1; // next attribute
            } else {
                break;
            }
        }
        // j is at the item start; its body ends at the matching `}` of the
        // first `{`, or at a `;` that comes first (e.g. `mod name;`)
        let mut k = j;
        let end = loop {
            if k >= tokens.len() {
                break tokens.len();
            }
            match tokens[k].text.as_str() {
                "{" => break match_brace(tokens, k),
                ";" => break k + 1,
                _ => k += 1,
            }
        };
        out.push((i, end));
        i = j.max(i + 1);
    }
    out
}

/// All function spans with their enclosing `impl` target (if any).
fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    // impl spans first
    let mut impls: Vec<(String, TokRange)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "impl" {
            // scan to the body `{`, remembering the last ident seen outside
            // generics (after `for`, that ident is the target type)
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut target = String::new();
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => break,
                    ";" if angle <= 0 => break,
                    _ => {
                        if tokens[j].kind == TokenKind::Ident && angle <= 0 {
                            target = tokens[j].text.clone();
                        }
                    }
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "{" {
                impls.push((target, (i, match_brace(tokens, j))));
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    // then fns
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i].text == "fn"
            && tokens[i + 1].kind == TokenKind::Ident
        {
            let name = tokens[i + 1].text.clone();
            // find the body `{` at paren/bracket depth 0 (stop at `;` for
            // bodyless trait methods)
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut end = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "{" if paren == 0 => {
                        end = Some(match_brace(tokens, j));
                        break;
                    }
                    ";" if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(end) = end {
                let impl_type = impls
                    .iter()
                    .filter(|(_, (s, e))| i >= *s && i < *e)
                    .min_by_key(|(_, (s, e))| e - s)
                    .map(|(t, _)| t.clone());
                out.push(FnSpan {
                    name,
                    impl_type,
                    range: (i, end),
                });
            }
        }
        i += 1;
    }
    out
}

/// Parse `lint:allow(rule, …)` comments into [`Sanction`]s.
///
/// A sanction covers its own line (trailing-comment form) and the next
/// line holding a code token (own-line form).
fn parse_sanctions(comments: &[Comment], tokens: &[Token]) -> Vec<Sanction> {
    let mut out = Vec::new();
    for c in comments {
        // only plain `//` / `/*` comments sanction; doc comments merely
        // *describe* the syntax (rustdoc examples of the allow marker must
        // not suppress anything)
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let after = &c.text[pos + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            // malformed; record as reason-less so it suppresses nothing and
            // the lint-syntax rule can flag it
            out.push(Sanction {
                rules: Vec::new(),
                lines: vec![c.line],
                at: c.line,
                has_reason: false,
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // the reason is whatever follows the `)` minus separator dashes
        let reason = after[close + 1..]
            .trim_start_matches([' ', '\t', '-', '—', '–', ':'])
            .trim();
        let mut lines = vec![c.line];
        if !c.trailing {
            if let Some(t) = tokens.iter().find(|t| t.line > c.end_line) {
                lines.push(t.line);
            }
        }
        out.push(Sanction {
            rules,
            lines,
            at: c.line,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let l = lex(src);
        let ctx = FileCtx::new("a.rs".into(), "core".into(), &l);
        let unwrap_idx = l.tokens.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(ctx.in_test_code(unwrap_idx));
        let live_idx = l.tokens.iter().position(|t| t.text == "live").unwrap();
        assert!(!ctx.in_test_code(live_idx));
    }

    #[test]
    fn fn_spans_carry_impl_target() {
        let src = "impl ServerFold { fn merge(&mut self) { body(); } }\nfn free() {}";
        let l = lex(src);
        let ctx = FileCtx::new("a.rs".into(), "core".into(), &l);
        let body_idx = l.tokens.iter().position(|t| t.text == "body").unwrap();
        let f = ctx.enclosing_fn(body_idx).unwrap();
        assert_eq!(f.name, "merge");
        assert_eq!(f.impl_type.as_deref(), Some("ServerFold"));
    }

    #[test]
    fn sanction_applies_to_next_code_line() {
        let src = "// lint:allow(panic) — startup invariant\nx.unwrap();\ny.unwrap();";
        let l = lex(src);
        let ctx = FileCtx::new("a.rs".into(), "core".into(), &l);
        assert!(ctx.sanctioned("panic", 2));
        assert!(!ctx.sanctioned("panic", 3));
        assert!(!ctx.sanctioned("determinism", 2));
    }

    #[test]
    fn trailing_sanction_covers_its_own_line() {
        let src = "x.unwrap(); // lint:allow(panic) — checked above\n";
        let l = lex(src);
        let ctx = FileCtx::new("a.rs".into(), "core".into(), &l);
        assert!(ctx.sanctioned("panic", 1));
    }

    #[test]
    fn reasonless_sanction_suppresses_nothing() {
        let src = "// lint:allow(panic)\nx.unwrap();";
        let l = lex(src);
        let ctx = FileCtx::new("a.rs".into(), "core".into(), &l);
        assert!(!ctx.sanctioned("panic", 2));
    }
}
