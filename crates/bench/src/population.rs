//! Population-scale measurement harness shared by the `population_scale`
//! sweep binary and the CI `bench_gate`.
//!
//! The claim under test: with the sparse client-state store, lazy
//! partition shards and lazy device profiles, **per-round cost and
//! resident state are O(K), not O(N)** — a 100 000-client federation's
//! round takes as long as a 1 000-client one at the same `K`, and the
//! number of materialized state entries/shards never exceeds `rounds × K`.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// The population axis the sweep walks (the gate smoke skips `50`).
pub const SWEEP_NS: [usize; 4] = [50, 1_000, 10_000, 100_000];

/// Fixed participants per round across the sweep.
pub const SWEEP_K: usize = 4;

/// A smoke-scale configuration whose only variable is the population size.
///
/// Evaluation is pushed past the round budget (it is O(test set),
/// independent of `N`, and would only add noise to the per-round timing).
pub fn population_cfg(n_clients: usize, k: usize, rounds: usize, seed: u64) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients,
        clients_per_round: k,
        rounds,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 1,
        client_samples_override: Some(40),
        eval_every: rounds + 1,
        ..SimulationConfig::default()
    }
}

/// One point of the population sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationPoint {
    /// Federation size `N`.
    pub n_clients: usize,
    /// Median wall time of one synchronous round, in nanoseconds.
    pub median_round_ns: u64,
    /// Fastest observed round, in nanoseconds — the noise-robust estimator
    /// the regression gate compares (a machine can run slower than its
    /// best for many reasons, but never faster).
    pub min_round_ns: u64,
    /// Client-state entries resident after the run (≤ rounds × K).
    pub resident_entries: usize,
    /// Partition shards resident after the run (≤ rounds × K).
    pub resident_shards: usize,
    /// Communication bytes charged per round (all participants).
    pub bytes_per_round: f64,
}

/// Median of raw nanosecond samples (empty input → 0).
pub fn median_ns(samples: &mut [u128]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2] as u64
}

/// Run `reps` federations of `rounds` rounds at population `n` and measure
/// the per-round wall time plus residency counters.
pub fn measure_population(
    n: usize,
    k: usize,
    rounds: usize,
    reps: usize,
    seed: u64,
) -> PopulationPoint {
    let mut round_ns: Vec<u128> = Vec::with_capacity(reps * rounds);
    let mut resident_entries = 0;
    let mut resident_shards = 0;
    let mut bytes_per_round = 0.0;
    for rep in 0..reps {
        let cfg = population_cfg(n, k, rounds, seed.wrapping_add(rep as u64));
        let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        for _ in 0..rounds {
            let t0 = Instant::now();
            sim.run_round();
            round_ns.push(t0.elapsed().as_nanos());
        }
        resident_entries = resident_entries.max(sim.client_states().resident());
        resident_shards = resident_shards.max(sim.partition().resident_shards());
        bytes_per_round = sim
            .records()
            .last()
            .map(|r| r.cum_comm_bytes / rounds as f64)
            .unwrap_or(0.0);
    }
    PopulationPoint {
        n_clients: n,
        min_round_ns: round_ns.iter().min().copied().unwrap_or(0) as u64,
        median_round_ns: median_ns(&mut round_ns),
        resident_entries,
        resident_shards,
        bytes_per_round,
    }
}

/// The artifact `bench_gate` writes (`BENCH_population.json`) and the
/// committed baseline (`results/bench_baseline.json`) share this shape;
/// the gate compares the `metrics` medians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Artifact schema version.
    pub schema: u32,
    /// Named median-nanosecond metrics (round/local-step benches).
    pub metrics: BTreeMap<String, u64>,
    /// The population sweep points.
    pub population: Vec<PopulationPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        assert_eq!(median_ns(&mut []), 0);
        assert_eq!(median_ns(&mut [5]), 5);
        assert_eq!(median_ns(&mut [9, 1, 5]), 5);
        assert_eq!(median_ns(&mut [4, 1, 9, 5]), 5);
    }

    #[test]
    fn population_point_measures_something() {
        let p = measure_population(20, 4, 2, 1, 9);
        assert_eq!(p.n_clients, 20);
        assert!(p.median_round_ns > 0);
        assert!(p.resident_entries > 0 && p.resident_entries <= 8);
        assert!(p.resident_shards <= 8);
        assert!(p.bytes_per_round > 0.0);
    }
}
