//! The paper's Table IV / Table V experiment cases and reported values.

use fedtrip_core::algorithms::AlgorithmKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;

/// One column of Table IV: a (model, dataset) pair with its target accuracy.
#[derive(Debug, Clone, Copy)]
pub struct Case {
    /// Display name, e.g. `"CNN MNIST-90%"`.
    pub name: &'static str,
    /// Dataset preset.
    pub dataset: DatasetKind,
    /// Model architecture.
    pub model: ModelKind,
    /// The paper's target accuracy (fraction).
    pub paper_target: f64,
    /// Rounds-to-target the paper reports, in [`METHODS`] order.
    pub paper_rounds: [Option<usize>; 6],
    /// GFLOPs-to-target the paper reports (Table V), in [`METHODS`] order.
    pub paper_gflops: [f64; 6],
}

/// Method order used by the paper's tables.
pub const METHODS: [AlgorithmKind; 6] = [
    AlgorithmKind::FedTrip,
    AlgorithmKind::FedAvg,
    AlgorithmKind::FedProx,
    AlgorithmKind::SlowMo,
    AlgorithmKind::Moon,
    AlgorithmKind::FedDyn,
];

/// The six Table IV / Table V cases (Dir-0.5, 4-of-10 clients).
pub const CASES: [Case; 6] = [
    Case {
        name: "MLP MNIST-87%",
        dataset: DatasetKind::MnistLike,
        model: ModelKind::Mlp,
        paper_target: 0.87,
        paper_rounds: [Some(28), Some(49), Some(53), Some(46), Some(25), Some(28)],
        paper_gflops: [1.441, 2.334, 2.626, 2.191, 3.573, 1.441],
    },
    Case {
        name: "MLP FMNIST-75%",
        dataset: DatasetKind::FmnistLike,
        model: ModelKind::Mlp,
        paper_target: 0.75,
        paper_rounds: [Some(9), Some(19), Some(16), Some(26), Some(14), Some(17)],
        paper_gflops: [0.772, 1.509, 1.321, 2.064, 3.335, 1.458],
    },
    Case {
        name: "CNN MNIST-90%",
        dataset: DatasetKind::MnistLike,
        model: ModelKind::Cnn,
        paper_target: 0.90,
        paper_rounds: [Some(24), Some(39), Some(41), Some(40), Some(46), Some(40)],
        paper_gflops: [6.161, 9.897, 10.465, 10.151, 35.02, 10.269],
    },
    Case {
        name: "CNN FMNIST-75%",
        dataset: DatasetKind::FmnistLike,
        model: ModelKind::Cnn,
        paper_target: 0.75,
        paper_rounds: [Some(19), Some(52), Some(45), Some(65), Some(35), Some(51)],
        paper_gflops: [8.13, 21.993, 19.144, 27.491, 44.409, 21_822.0 / 1000.0],
    },
    Case {
        name: "CNN EMNIST-62%",
        dataset: DatasetKind::EmnistLike,
        model: ModelKind::Cnn,
        paper_target: 0.62,
        paper_rounds: [Some(32), Some(45), Some(45), Some(92), Some(44), Some(97)],
        paper_gflops: [41.077, 57.097, 57.431, 116.733, 167.486, 124.513],
    },
    Case {
        name: "AlexNet CIFAR-50%",
        dataset: DatasetKind::Cifar10Like,
        model: ModelKind::AlexNet,
        paper_target: 0.50,
        paper_rounds: [Some(46), Some(74), Some(75), Some(87), Some(84), Some(79)],
        paper_gflops: [13_446.0, 21_596.0, 21_906.0, 25_392.0, 73_549.0, 23_091.0],
    },
];

/// An adaptive target for reduced-scale runs: a fixed fraction of the best
/// final accuracy achieved by any method on the case, so that
/// rounds-to-target stays finite and comparable when the reduced-scale
/// plateau sits below the paper's absolute target.
pub fn adaptive_target(final_accuracies: &[f64], fraction: f64) -> f64 {
    let best = final_accuracies
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    (best * fraction).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_cases_six_methods() {
        assert_eq!(CASES.len(), 6);
        assert_eq!(METHODS.len(), 6);
        assert_eq!(METHODS[0], AlgorithmKind::FedTrip);
    }

    #[test]
    fn paper_rounds_fedtrip_always_fastest_or_close() {
        // In the paper's Table IV FedTrip has the fewest rounds except on
        // MLP/MNIST where MOON is slightly faster.
        for case in &CASES {
            let trip = case.paper_rounds[0].unwrap();
            let min = case.paper_rounds.iter().flatten().min().unwrap();
            assert!(trip as f64 <= *min as f64 * 1.2, "{}", case.name);
        }
    }

    #[test]
    fn adaptive_target_is_fraction_of_best() {
        let t = adaptive_target(&[0.5, 0.9, 0.7], 0.9);
        assert!((t - 0.81).abs() < 1e-12);
    }
}
