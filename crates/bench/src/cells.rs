//! Cached experiment-cell execution.
//!
//! A *cell* is one complete simulation run (spec + seed). Because several
//! tables/figures share cells (Table IV and Table V report the same runs in
//! different units; Fig. 5's Dir-0.5 panels are Table IV's CNN rows), every
//! finished cell's round records are persisted under
//! `results/cells/<key>.json` and transparently reused.

use fedtrip_core::engine::RoundRecord;
use fedtrip_core::experiment::ExperimentSpec;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// A finished cell: the spec that produced it plus its per-round records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// The exact spec that was run.
    pub spec: ExperimentSpec,
    /// Per-round measurements.
    pub records: Vec<RoundRecord>,
    /// Wall-clock seconds the run took (0 when loaded from cache).
    pub wall_seconds: f64,
}

impl CellResult {
    /// Accuracy trajectory (evaluated rounds only).
    pub fn accuracies(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.accuracy).collect()
    }

    /// First round reaching `target` accuracy.
    pub fn rounds_to(&self, target: f64) -> Option<usize> {
        fedtrip_core::engine::rounds_to_accuracy(&self.records, target)
    }

    /// Cumulative local-compute GFLOPs at the first round reaching `target`.
    pub fn gflops_to(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.accuracy.map(|a| a >= target).unwrap_or(false))
            .map(|r| r.cum_flops / 1e9)
    }

    /// Mean accuracy over the last `n` evaluated rounds.
    pub fn final_accuracy(&self, n: usize) -> f64 {
        fedtrip_core::engine::final_accuracy(&self.records, n)
    }

    /// Accuracy at a given round (last evaluated round `<= round`).
    pub fn accuracy_at(&self, round: usize) -> Option<f64> {
        self.records
            .iter()
            .take_while(|r| r.round <= round)
            .filter_map(|r| r.accuracy)
            .last()
    }
}

/// Stable, filesystem-safe cache key for a spec.
fn cell_key(spec: &ExperimentSpec) -> String {
    // hash the canonical JSON encoding
    let json = serde_json::to_string(spec).expect("spec serializes"); // lint:allow(panic) — plain data struct, shim serializer has no failure path
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!(
        "{}_{}_{}_r{}_s{}_{:016x}",
        spec.algorithm.name().to_lowercase(),
        spec.dataset.name().to_lowercase().replace('-', ""),
        spec.model.name().to_lowercase(),
        spec.rounds,
        spec.seed,
        h
    )
}

fn cache_path(results: &Path, spec: &ExperimentSpec) -> PathBuf {
    results
        .join("cells")
        .join(format!("{}.json", cell_key(spec)))
}

/// Run a cell, or load it from the cache when an identical spec has already
/// been run. Prints one progress line either way.
pub fn run_or_load(results: &Path, spec: &ExperimentSpec) -> CellResult {
    let path = cache_path(results, spec);
    if let Ok(body) = fs::read_to_string(&path) {
        if let Ok(cell) = serde_json::from_str::<CellResult>(&body) {
            if cell.spec == *spec {
                println!(
                    "  [cached] {:<8} {:<8} {:<9} {}",
                    spec.algorithm.name(),
                    spec.dataset.name(),
                    spec.model.name(),
                    spec.heterogeneity.name(),
                );
                return cell;
            }
        }
    }
    let t0 = std::time::Instant::now();
    let records = spec.run();
    let wall = t0.elapsed().as_secs_f64();
    let cell = CellResult {
        spec: *spec,
        records,
        wall_seconds: wall,
    };
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Ok(json) = serde_json::to_string(&cell) {
        let _ = fs::write(&path, json);
    }
    let final_acc = cell.final_accuracy(5);
    println!(
        "  [ran {:>6.1}s] {:<8} {:<8} {:<9} {:<14} final {:.1}%",
        wall,
        spec.algorithm.name(),
        spec.dataset.name(),
        spec.model.name(),
        spec.heterogeneity.name(),
        final_acc * 100.0
    );
    cell
}

/// Run `trials` seeds of the same cell and return all results.
pub fn run_trials(results: &Path, spec: &ExperimentSpec, trials: usize) -> Vec<CellResult> {
    (0..trials)
        .map(|t| {
            let s = spec.with_seed(spec.seed.wrapping_add(1000 * t as u64));
            run_or_load(results, &s)
        })
        .collect()
}

/// Mean rounds-to-target over trials; `None` when no trial reached it.
pub fn mean_rounds_to(cells: &[CellResult], target: f64) -> Option<f64> {
    let hits: Vec<f64> = cells
        .iter()
        .filter_map(|c| c.rounds_to(target).map(|r| r as f64))
        .collect();
    if hits.is_empty() {
        None
    } else {
        Some(hits.iter().sum::<f64>() / hits.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedtrip_core::experiment::Scale;

    fn smoke_spec() -> ExperimentSpec {
        ExperimentSpec::quickstart().with_scale(Scale::Smoke)
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join("fedtrip_cells_test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = smoke_spec();
        let a = run_or_load(&dir, &spec);
        assert!(a.wall_seconds > 0.0);
        let b = run_or_load(&dir, &spec);
        // loaded from cache: identical records
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.accuracies(), b.accuracies());
    }

    #[test]
    fn different_seeds_get_different_keys() {
        let a = cell_key(&smoke_spec());
        let b = cell_key(&smoke_spec().with_seed(999));
        assert_ne!(a, b);
    }

    #[test]
    fn accuracy_at_round_is_monotone_in_round_index() {
        let dir = std::env::temp_dir().join("fedtrip_cells_test2");
        let cell = run_or_load(&dir, &smoke_spec());
        let at2 = cell.accuracy_at(2);
        assert!(at2.is_some());
        assert!(cell.accuracy_at(0).is_none());
    }

    #[test]
    fn trials_produce_distinct_seeds() {
        let dir = std::env::temp_dir().join("fedtrip_cells_test3");
        let cells = run_trials(&dir, &smoke_spec(), 2);
        assert_eq!(cells.len(), 2);
        assert_ne!(cells[0].spec.seed, cells[1].spec.seed);
    }
}
