//! Table V — total local-computation GFLOPs (forward + backward + attaching
//! operations) spent until the global model reaches the target accuracy.
//!
//! Reuses the cached cells of Table IV (same runs, different unit): the
//! engine accumulates each client's model FLOPs plus the Appendix-A attach
//! FLOPs per round, and this binary reads the cumulative counter at the
//! round where the target is first reached.

use fedtrip_bench::cases::{adaptive_target, CASES, METHODS};
use fedtrip_bench::cells::{run_or_load, CellResult};
use fedtrip_bench::Cli;
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_metrics::report::{save_json, Table};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    cli.banner("Table V — GFLOPs of local computation to reach target accuracy");

    let mut artifacts = Vec::new();
    for case in &CASES {
        println!("--- {} ---", case.name);
        let cells: Vec<CellResult> = METHODS
            .iter()
            .map(|&alg| {
                let spec = ExperimentSpec {
                    dataset: case.dataset,
                    model: case.model,
                    heterogeneity: HeterogeneityKind::Dirichlet(0.5),
                    n_clients: 10,
                    clients_per_round: 4,
                    rounds: 100,
                    local_epochs: 1,
                    algorithm: alg,
                    hyper: ExperimentSpec::paper_hyper(case.dataset, case.model),
                    scale: cli.scale,
                    seed: cli.seed,
                };
                run_or_load(&cli.results, &spec)
            })
            .collect();

        let finals: Vec<f64> = cells.iter().map(|c| c.final_accuracy(10)).collect();
        let adaptive = adaptive_target(&finals, 0.90);

        let mut t = Table::new(
            format!(
                "{} — GFLOPs to adaptive target {:.1}%",
                case.name,
                adaptive * 100.0
            ),
            &[
                "Method",
                "paper GFLOPs",
                "GFLOPs@adaptive",
                "vs FedTrip",
                "GFLOPs/round",
            ],
        );
        let trip_gf = cells[0].gflops_to(adaptive);
        for (i, (&alg, cell)) in METHODS.iter().zip(&cells).enumerate() {
            let gf = cell.gflops_to(adaptive);
            let per_round = cell
                .records
                .last()
                .map(|r| r.cum_flops / 1e9 / r.round as f64)
                .unwrap_or(0.0);
            let ratio = match (trip_gf, gf) {
                (Some(a), Some(b)) if a > 0.0 => format!("{:.2}x", b / a),
                _ => "-".into(),
            };
            t.row(&[
                alg.name().to_string(),
                format!("{:.2}", case.paper_gflops[i]),
                gf.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
                ratio,
                format!("{per_round:.2}"),
            ]);
            artifacts.push(json!({
                "case": case.name,
                "method": alg.name(),
                "paper_gflops": case.paper_gflops[i],
                "gflops_adaptive_target": gf,
                "gflops_per_round": per_round,
            }));
        }
        println!("{}", t.render());
    }

    let path = save_json(&cli.results, "table5_gflops", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
