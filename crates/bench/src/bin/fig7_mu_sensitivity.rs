//! Fig. 7 — sensitivity of FedTrip to `mu`: final accuracy and rounds to
//! the 90%-of-plateau target as `mu` sweeps 0.1 → 2.5, for CNN/MNIST under
//! Dir-0.1, Dir-0.5 and Orthogonal-5, and MLP/FMNIST under Dir-0.5.
//!
//! Also runs the `xi` ablation DESIGN.md calls out: the paper's
//! participation-gap `xi` versus a fixed `xi = 1`.

use fedtrip_bench::cells::run_or_load;
use fedtrip_bench::Cli;
use fedtrip_core::algorithms::{AlgorithmKind, XiMode};
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_models::ModelKind;
use serde_json::json;

const MUS: [f32; 7] = [0.1, 0.4, 0.8, 1.2, 1.5, 2.0, 2.5];

fn main() {
    let cli = Cli::parse();
    cli.banner("Fig. 7 — FedTrip mu sensitivity (+ xi ablation)");

    let panels: [(DatasetKind, ModelKind, HeterogeneityKind); 4] = [
        (
            DatasetKind::MnistLike,
            ModelKind::Cnn,
            HeterogeneityKind::Dirichlet(0.1),
        ),
        (
            DatasetKind::MnistLike,
            ModelKind::Cnn,
            HeterogeneityKind::Dirichlet(0.5),
        ),
        (
            DatasetKind::MnistLike,
            ModelKind::Cnn,
            HeterogeneityKind::Orthogonal(5),
        ),
        (
            DatasetKind::FmnistLike,
            ModelKind::Mlp,
            HeterogeneityKind::Dirichlet(0.5),
        ),
    ];

    let mut artifacts = Vec::new();
    for (dataset, model, het) in panels {
        println!(
            "--- {} / {} under {} ---",
            model.name(),
            dataset.name(),
            het.name()
        );
        // reference plateau at the paper's mu to define the rounds target
        let mut results = Vec::new();
        for &mu in &MUS {
            let spec = ExperimentSpec {
                dataset,
                model,
                heterogeneity: het,
                n_clients: 10,
                clients_per_round: 4,
                rounds: 100,
                local_epochs: 1,
                algorithm: AlgorithmKind::FedTrip,
                hyper: {
                    let mut h = ExperimentSpec::paper_hyper(dataset, model);
                    h.fedtrip_mu = mu;
                    h
                },
                scale: cli.scale,
                seed: cli.seed,
            };
            let cell = run_or_load(&cli.results, &spec);
            // "final accuracy" in Fig. 7 = best test accuracy over training
            let best = cell
                .accuracies()
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max);
            results.push((mu, best, cell));
        }
        let best_overall = results
            .iter()
            .map(|(_, b, _)| *b)
            .fold(f64::NEG_INFINITY, f64::max);
        let target = best_overall * 0.9;

        let mut t = Table::new(
            format!("target = {:.1}% (90% of best-over-mu)", target * 100.0),
            &["mu", "best acc %", "rounds to target"],
        );
        for (mu, best, cell) in &results {
            t.row(&[
                format!("{mu}"),
                format!("{:.2}", best * 100.0),
                cell.rounds_to(target)
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| format!(">{}", cell.records.len())),
            ]);
            artifacts.push(json!({
                "dataset": dataset.name(),
                "model": model.name(),
                "heterogeneity": het.name(),
                "mu": mu,
                "best_accuracy": best,
                "rounds_to_target": cell.rounds_to(target),
            }));
        }
        println!("{}", t.render());
    }

    // xi ablation: inverse-gap (the faithful reading of the paper's theory)
    // vs raw gap (the literal prose reading — diverges) vs fixed xi = 1
    println!("--- xi ablation (CNN/MNIST, Dir-0.5, mu = 0.4) ---");
    let mut t = Table::new("xi mode", &["mode", "best acc %", "final acc %"]);
    for (label, mode) in [
        ("1/gap (paper theory)", XiMode::Gap),
        ("raw gap (prose; unstable)", XiMode::RawGap),
        ("fixed 1.0", XiMode::Fixed(1.0)),
    ] {
        let spec = ExperimentSpec {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::Cnn,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 10,
            clients_per_round: 4,
            rounds: 100,
            local_epochs: 1,
            algorithm: AlgorithmKind::FedTrip,
            hyper: {
                let mut h = ExperimentSpec::paper_hyper(DatasetKind::MnistLike, ModelKind::Cnn);
                h.fedtrip_mu = 0.4;
                h.xi_mode = mode;
                h
            },
            scale: cli.scale,
            seed: cli.seed,
        };
        let cell = run_or_load(&cli.results, &spec);
        let best = cell
            .accuracies()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        t.row(&[
            label.to_string(),
            format!("{:.2}", best * 100.0),
            format!("{:.2}", cell.final_accuracy(10) * 100.0),
        ]);
        artifacts.push(json!({"ablation": "xi", "mode": label, "best_accuracy": best}));
    }
    println!("{}", t.render());

    let path = save_json(&cli.results, "fig7_mu_sensitivity", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
