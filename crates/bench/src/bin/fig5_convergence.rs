//! Fig. 5 — convergence curves of the CNN under two heterogeneity types
//! (Dir-0.5 and Orthogonal-5) on MNIST / FMNIST / EMNIST, six methods.
//!
//! Prints EMA-smoothed accuracy curves as compact series (the paper smooths
//! with an exponential moving average too) and an ASCII sparkline per
//! method; full per-round data goes to the JSON artifact.

use fedtrip_bench::cases::METHODS;
use fedtrip_bench::cells::run_or_load;
use fedtrip_bench::Cli;
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::report::save_json;
use fedtrip_metrics::stats::ema;
use fedtrip_models::ModelKind;
use serde_json::json;

fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Fig. 5 — CNN convergence curves under Dir-0.5 and Orthogonal-5");

    let panels = [
        (DatasetKind::MnistLike, HeterogeneityKind::Dirichlet(0.5)),
        (DatasetKind::FmnistLike, HeterogeneityKind::Dirichlet(0.5)),
        (DatasetKind::EmnistLike, HeterogeneityKind::Dirichlet(0.5)),
        (DatasetKind::MnistLike, HeterogeneityKind::Orthogonal(5)),
        (DatasetKind::FmnistLike, HeterogeneityKind::Orthogonal(5)),
        (DatasetKind::EmnistLike, HeterogeneityKind::Orthogonal(5)),
    ];

    let mut artifacts = Vec::new();
    for (dataset, het) in panels {
        println!(
            "--- panel: CNN on {} under {} ---",
            dataset.name(),
            het.name()
        );
        for &alg in &METHODS {
            let spec = ExperimentSpec {
                dataset,
                model: ModelKind::Cnn,
                heterogeneity: het,
                n_clients: 10,
                clients_per_round: 4,
                rounds: 100,
                local_epochs: 1,
                algorithm: alg,
                hyper: ExperimentSpec::paper_hyper(dataset, ModelKind::Cnn),
                scale: cli.scale,
                seed: cli.seed,
            };
            let cell = run_or_load(&cli.results, &spec);
            let accs = cell.accuracies();
            let smooth = ema(&accs, 0.3);
            println!(
                "  {:<8} {}  final {:.1}%",
                alg.name(),
                sparkline(&smooth),
                smooth.last().unwrap_or(&0.0) * 100.0
            );
            artifacts.push(json!({
                "dataset": dataset.name(),
                "heterogeneity": het.name(),
                "method": alg.name(),
                "accuracy_raw": accs,
                "accuracy_ema": smooth,
            }));
        }
        println!();
    }

    let path = save_json(&cli.results, "fig5_convergence", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
