//! `population_scale` — prove the population axis is flat.
//!
//! Sweeps the federation size `N ∈ {50, 1k, 10k, 100k}` at a fixed `K = 4`
//! and reports, per point, the median wall time of one synchronous round,
//! the resident client-state entries and partition shards (both bounded by
//! `rounds × K`), and the communication bytes charged per round. With the
//! sparse store + lazy shards + lazy profiles, round time and residency
//! must stay flat from `N = 1k` to `N = 100k` — the engine-side analogue
//! of the paper's Table VI scalability study, pushed three orders of
//! magnitude beyond it.
//!
//! ```bash
//! cargo run --release -p fedtrip-bench --bin population_scale -- --trials 3
//! ```
//!
//! Writes `results/population_scale.json`.

use fedtrip_bench::population::{measure_population, PopulationPoint, SWEEP_K, SWEEP_NS};
use fedtrip_bench::Cli;
use std::fs;

fn main() {
    let cli = Cli::parse();
    cli.banner("population_scale — round cost & resident state vs federation size (K = 4 fixed)");

    let rounds = 3;
    let reps = cli.trials.max(1);
    println!(
        "{:>9}  {:>14}  {:>16}  {:>15}  {:>13}",
        "N", "ms/round (med)", "resident entries", "resident shards", "MB/round"
    );
    let mut points: Vec<PopulationPoint> = Vec::new();
    for &n in &SWEEP_NS {
        let p = measure_population(n, SWEEP_K, rounds, reps, cli.seed);
        println!(
            "{:>9}  {:>14.3}  {:>10} / {:>3}  {:>9} / {:>3}  {:>13.3}",
            p.n_clients,
            p.median_round_ns as f64 / 1e6,
            p.resident_entries,
            rounds * SWEEP_K,
            p.resident_shards,
            rounds * SWEEP_K,
            p.bytes_per_round / 1e6,
        );
        points.push(p);
    }

    // flatness: N=1k vs N=100k, ignoring the tiny-N point where constant
    // overheads dominate
    let big = points
        .iter()
        .filter(|p| p.n_clients >= 1_000)
        .collect::<Vec<_>>();
    if big.len() >= 2 {
        let first = big.first().unwrap().median_round_ns as f64;
        let last = big.last().unwrap().median_round_ns as f64;
        println!(
            "\nround-time ratio N={} / N={}: {:.2}x (flat ≈ 1.0x)",
            big.last().unwrap().n_clients,
            big.first().unwrap().n_clients,
            last / first,
        );
    }

    fs::create_dir_all(&cli.results).expect("create results dir");
    let path = cli.results.join("population_scale.json");
    fs::write(
        &path,
        serde_json::to_string_pretty(&points).expect("serialize"),
    )
    .expect("write results");
    println!("wrote {}", path.display());
}
