//! Table VI — scalability: communication rounds of the CNN to reach the
//! target accuracy when the server selects 4 of **50** clients.
//!
//! With 50 clients and 4 per round, a client's expected participation gap —
//! and hence FedTrip's `xi` — grows by ~5x versus 4-of-10 (§V-D), which is
//! the regime where the paper reports FedTrip's largest savings and MOON's
//! degradation.

use fedtrip_bench::cases::{adaptive_target, METHODS};
use fedtrip_bench::cells::{run_or_load, CellResult};
use fedtrip_bench::Cli;
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_models::ModelKind;
use serde_json::json;

struct Cell6 {
    dataset: DatasetKind,
    het: HeterogeneityKind,
    paper_target: f64,
    /// Paper-reported speedup factors vs FedTrip, [FedAvg, FedProx, SlowMo, MOON, FedDyn].
    paper_fedtrip_rounds: usize,
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Table VI — rounds to target with 4-of-50 clients (CNN)");

    let cases = [
        Cell6 {
            dataset: DatasetKind::MnistLike,
            het: HeterogeneityKind::Dirichlet(0.1),
            paper_target: 0.87,
            paper_fedtrip_rounds: 30,
        },
        Cell6 {
            dataset: DatasetKind::MnistLike,
            het: HeterogeneityKind::Dirichlet(0.5),
            paper_target: 0.90,
            paper_fedtrip_rounds: 19,
        },
        Cell6 {
            dataset: DatasetKind::MnistLike,
            het: HeterogeneityKind::Orthogonal(5),
            paper_target: 0.85,
            paper_fedtrip_rounds: 43,
        },
        Cell6 {
            dataset: DatasetKind::FmnistLike,
            het: HeterogeneityKind::Dirichlet(0.1),
            paper_target: 0.65,
            paper_fedtrip_rounds: 19,
        },
        Cell6 {
            dataset: DatasetKind::FmnistLike,
            het: HeterogeneityKind::Dirichlet(0.5),
            paper_target: 0.75,
            paper_fedtrip_rounds: 15,
        },
        Cell6 {
            dataset: DatasetKind::FmnistLike,
            het: HeterogeneityKind::Orthogonal(5),
            paper_target: 0.60,
            paper_fedtrip_rounds: 35,
        },
    ];

    let mut artifacts = Vec::new();
    for case in &cases {
        println!(
            "--- CNN on {} under {} (paper target {:.0}%, paper FedTrip rounds {}) ---",
            case.dataset.name(),
            case.het.name(),
            case.paper_target * 100.0,
            case.paper_fedtrip_rounds
        );
        let cells: Vec<CellResult> = METHODS
            .iter()
            .map(|&alg| {
                let spec = ExperimentSpec {
                    dataset: case.dataset,
                    model: ModelKind::Cnn,
                    heterogeneity: case.het,
                    n_clients: 50,
                    clients_per_round: 4,
                    rounds: 100,
                    local_epochs: 1,
                    algorithm: alg,
                    hyper: ExperimentSpec::paper_hyper(case.dataset, ModelKind::Cnn),
                    scale: cli.scale,
                    seed: cli.seed,
                };
                run_or_load(&cli.results, &spec)
            })
            .collect();
        let finals: Vec<f64> = cells.iter().map(|c| c.final_accuracy(10)).collect();
        let adaptive = adaptive_target(&finals, 0.90);
        let trip = cells[0].rounds_to(adaptive);
        let mut t = Table::new(
            format!("adaptive target {:.1}%", adaptive * 100.0),
            &["Method", "rounds@adaptive", "vs FedTrip", "final acc %"],
        );
        for (i, (&alg, cell)) in METHODS.iter().zip(&cells).enumerate() {
            let r = cell.rounds_to(adaptive);
            let speed = match (trip, r) {
                (Some(t0), Some(r)) => format!("{:.2}x", r as f64 / t0 as f64),
                (Some(_), None) => {
                    format!(">{:.2}x", cell.records.len() as f64 / trip.unwrap() as f64)
                }
                _ => "-".into(),
            };
            t.row(&[
                alg.name().to_string(),
                r.map(|v| v.to_string())
                    .unwrap_or_else(|| format!(">{}", cell.records.len())),
                speed,
                format!("{:.2}", finals[i] * 100.0),
            ]);
            artifacts.push(json!({
                "dataset": case.dataset.name(),
                "heterogeneity": case.het.name(),
                "method": alg.name(),
                "rounds_adaptive": r,
                "final_accuracy": finals[i],
                "adaptive_target": adaptive,
            }));
        }
        println!("{}", t.render());
    }

    let path = save_json(&cli.results, "table6_scalability", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
