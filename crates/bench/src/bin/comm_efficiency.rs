//! `comm_efficiency` — virtual wall-clock to a target accuracy across
//! upload codecs and device-speed spreads.
//!
//! Every method ships `|w|` dense f32 parameters up each round; the
//! compression subsystem (`fedtrip_core::compression`) shrinks that uplink
//! and the virtual clock charges exactly the encoded bytes. This binary
//! quantifies the trade: lossy codecs slightly perturb each round's
//! update (error feedback recovers most of it) but cut link seconds per
//! round, so time-to-target-accuracy drops — and drops hardest under wide
//! device spreads, where the synchronous barrier waits on the slowest
//! link.
//!
//! ```bash
//! cargo run --release -p fedtrip-bench --bin comm_efficiency -- \
//!     [--scale smoke|default|paper] [--seed S] [--results DIR]
//! ```
//!
//! Codecs are scored against an *adaptive* target — 90% of the
//! uncompressed run's final accuracy at the same device spread — which
//! keeps the comparison meaningful at reduced scales.

use fedtrip_bench::Cli;
use fedtrip_core::compression::CompressionKind;
use fedtrip_core::engine::{RoundRecord, Simulation};
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_metrics::time_to_target;
use serde_json::json;

/// (times, accuracies) of the evaluated rounds.
fn series(records: &[RoundRecord]) -> (Vec<f64>, Vec<f64>) {
    records
        .iter()
        .filter_map(|r| r.accuracy.map(|a| (r.virtual_time, a)))
        .unzip()
}

fn run(spec: &ExperimentSpec, compression: CompressionKind, device_het: f32) -> Simulation {
    let mut cfg = spec.to_config();
    cfg.compression = compression;
    cfg.error_feedback = compression != CompressionKind::None;
    cfg.device_het = device_het;
    let mut sim = Simulation::new(cfg, spec.algorithm.build(&spec.hyper));
    sim.run();
    sim
}

fn fmt_time(t: Option<f64>) -> String {
    t.map(|s| format!("{s:.1}s")).unwrap_or_else(|| "—".into())
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Communication efficiency — upload codecs x device spread (sync barrier)");

    let spec = ExperimentSpec::quickstart()
        .with_scale(cli.scale)
        .with_seed(cli.seed);
    let codecs = [
        CompressionKind::None,
        CompressionKind::Q8,
        CompressionKind::Q4,
        CompressionKind::TopK(0.05),
    ];

    let mut table = Table::new(
        format!(
            "{} | virtual seconds to target (lossy codecs run with error feedback)",
            spec.algorithm.name()
        ),
        &[
            "codec",
            "spread",
            "up MB/client",
            "ratio",
            "target",
            "t-to-target",
            "speedup",
            "final acc",
        ],
    );
    let mut artifacts = Vec::new();

    for device_het in [1.0f32, 2.0, 4.0] {
        let mut baseline_time: Option<f64> = None;
        let mut target = 0.0f64;
        for codec in codecs {
            let sim = run(&spec, codec, device_het);
            let last = sim.records().last().expect("run produced records");
            if codec == CompressionKind::None {
                target = 0.90 * sim.final_accuracy(5);
            }
            let (ts, accs) = series(sim.records());
            let t = time_to_target(&ts, &accs, target);
            if codec == CompressionKind::None {
                baseline_time = t;
            }
            let speedup = match (baseline_time, t) {
                (Some(a), Some(b)) if b > 0.0 => format!("{:.2}x", a / b),
                _ => "—".into(),
            };
            table.row(&[
                codec.name(),
                format!("{device_het:.0}x"),
                format!(
                    "{:.3}",
                    last.comm_bytes_up / last.selected.len() as f64 / 1e6
                ),
                format!("{:.2}x", last.compression_ratio),
                format!("{:.1}%", target * 100.0),
                fmt_time(t),
                speedup,
                format!("{:.1}%", sim.final_accuracy(5) * 100.0),
            ]);
            artifacts.push(json!({
                "codec": codec.name(),
                "device_het": device_het as f64,
                "compression_ratio": last.compression_ratio,
                "target": target,
                "time_to_target": t,
                "final_accuracy": sim.final_accuracy(5),
                "cum_comm_mb": last.cum_comm_bytes / 1e6,
            }));
        }
    }

    println!("{}", table.render());
    println!("Reading: the codec column shrinks uplink bytes by `ratio`; under wider");
    println!("device spreads the sync barrier waits on slower links, so the same");
    println!("byte saving buys more virtual seconds per round.");
    match save_json(&cli.results, "comm_efficiency", &artifacts) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
