//! `comm_efficiency` — virtual wall-clock and total bytes to a target
//! accuracy across codec pairs (uplink x downlink) and device-speed
//! spreads.
//!
//! Every method ships `|w|` dense f32 parameters up each round and the
//! server broadcasts the global model back down; the compression subsystem
//! (`fedtrip_core::compression`) shrinks both halves of the wire and the
//! virtual clock charges exactly the encoded bytes. Uplinks compress the
//! client update directly (with client-side error feedback); downlinks
//! broadcast quantized global *deltas* with a server-side error-feedback
//! residual and a periodic dense resync. This binary quantifies the trade:
//! lossy codecs slightly perturb each round but cut link seconds and bytes
//! per round, so time-to-target drops — hardest under wide device spreads,
//! where the synchronous barrier waits on the slowest link — and closing
//! the downlink roughly halves the remaining byte bill on top of
//! uplink-only compression.
//!
//! ```bash
//! cargo run --release -p fedtrip-bench --bin comm_efficiency -- \
//!     [--scale smoke|default|paper] [--seed S] [--results DIR]
//! ```
//!
//! Codec pairs are scored against an *adaptive* target — 90% of the
//! uncompressed run's final accuracy at the same device spread — which
//! keeps the comparison meaningful at reduced scales.

use fedtrip_bench::Cli;
use fedtrip_core::compression::CompressionKind;
use fedtrip_core::engine::{RoundRecord, Simulation};
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_metrics::time_to_target;
use serde_json::json;

/// Dense resync cadence whenever a downlink codec is active: frequent
/// enough that quantization drift never accumulates past a handful of
/// rounds, sparse enough that delta rounds dominate the byte bill.
const RESYNC_INTERVAL: usize = 5;

/// (x, accuracy) series of the evaluated rounds, where `x` is extracted
/// per record — virtual seconds or cumulative bytes.
fn series(records: &[RoundRecord], x: impl Fn(&RoundRecord) -> f64) -> (Vec<f64>, Vec<f64>) {
    records
        .iter()
        .filter_map(|r| r.accuracy.map(|a| (x(r), a)))
        .unzip()
}

fn run(
    spec: &ExperimentSpec,
    up: CompressionKind,
    down: CompressionKind,
    spread: f32,
) -> Simulation {
    let mut cfg = spec.to_config();
    cfg.compression = up;
    cfg.error_feedback = up != CompressionKind::None;
    cfg.downlink_compression = down;
    cfg.resync_interval = if down != CompressionKind::None {
        RESYNC_INTERVAL
    } else {
        0
    };
    cfg.device_het = spread;
    let mut sim = Simulation::new(cfg, spec.algorithm.build(&spec.hyper));
    sim.run();
    sim
}

fn fmt_time(t: Option<f64>) -> String {
    t.map(|s| format!("{s:.1}s")).unwrap_or_else(|| "—".into())
}

fn fmt_mb(b: Option<f64>) -> String {
    b.map(|b| format!("{:.2}", b / 1e6))
        .unwrap_or_else(|| "—".into())
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Communication efficiency — codec pairs (up x down) x device spread (sync barrier)");

    let spec = ExperimentSpec::quickstart()
        .with_scale(cli.scale)
        .with_seed(cli.seed);
    let pairs = [
        (CompressionKind::None, CompressionKind::None),
        (CompressionKind::Q8, CompressionKind::None),
        (CompressionKind::Q8, CompressionKind::Q8),
        (CompressionKind::Q4, CompressionKind::Q4),
    ];

    let mut table = Table::new(
        format!(
            "{} | virtual seconds and total MB to target (lossy codecs run with error feedback; \
             downlink deltas resync every {RESYNC_INTERVAL} rounds)",
            spec.algorithm.name()
        ),
        &[
            "up",
            "down",
            "spread",
            "ratio-up",
            "ratio-down",
            "target",
            "t-to-target",
            "MB-to-target",
            "speedup",
            "final acc",
        ],
    );
    let mut artifacts = Vec::new();

    for device_het in [1.0f32, 2.0, 4.0] {
        let mut baseline_time: Option<f64> = None;
        let mut target = 0.0f64;
        for (up, down) in pairs {
            let sim = run(&spec, up, down, device_het);
            let last = sim.records().last().expect("run produced records");
            if up == CompressionKind::None {
                target = 0.90 * sim.final_accuracy(5);
            }
            let (ts, accs) = series(sim.records(), |r| r.virtual_time);
            let t = time_to_target(&ts, &accs, target);
            let (bs, accs_b) = series(sim.records(), |r| r.cum_comm_bytes);
            let bytes = time_to_target(&bs, &accs_b, target);
            // run-level downlink ratio: per-record `compression_ratio_down`
            // is dense/actual for that round, so dense = ratio x actual;
            // summing both sides folds resync rounds (ratio 1) and delta
            // rounds into the whole-run average
            let down_actual: f64 = sim.records().iter().map(|r| r.comm_bytes_down).sum();
            let down_dense: f64 = sim
                .records()
                .iter()
                .map(|r| r.comm_bytes_down * r.compression_ratio_down)
                .sum();
            let ratio_down = if down_actual > 0.0 {
                down_dense / down_actual
            } else {
                1.0
            };
            if up == CompressionKind::None {
                baseline_time = t;
            }
            let speedup = match (baseline_time, t) {
                (Some(a), Some(b)) if b > 0.0 => format!("{:.2}x", a / b),
                _ => "—".into(),
            };
            table.row(&[
                up.name(),
                down.name(),
                format!("{device_het:.0}x"),
                format!("{:.2}x", last.compression_ratio),
                format!("{ratio_down:.2}x"),
                format!("{:.1}%", target * 100.0),
                fmt_time(t),
                fmt_mb(bytes),
                speedup,
                format!("{:.1}%", sim.final_accuracy(5) * 100.0),
            ]);
            artifacts.push(json!({
                "codec_up": up.name(),
                "codec_down": down.name(),
                "device_het": device_het as f64,
                "compression_ratio": last.compression_ratio,
                "compression_ratio_down": ratio_down,
                "target": target,
                "time_to_target": t,
                "bytes_to_target": bytes,
                "final_accuracy": sim.final_accuracy(5),
                "cum_comm_mb": last.cum_comm_bytes / 1e6,
            }));
        }
    }

    println!("{}", table.render());
    println!("Reading: the up/down codec pair shrinks each wire half by its ratio;");
    println!("under wider device spreads the sync barrier waits on slower links, so");
    println!("the same byte saving buys more virtual seconds per round. MB-to-target");
    println!("is the total (up + down) traffic when the run first holds the target —");
    println!("closing the downlink beats uplink-only on total bytes at every spread.");
    match save_json(&cli.results, "comm_efficiency", &artifacts) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
