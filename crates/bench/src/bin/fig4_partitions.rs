//! Fig. 4 — per-client label distributions under the four heterogeneity
//! settings (Dir-0.1, Dir-0.5, Orthogonal-5, Orthogonal-10).
//!
//! Renders the histograms as ASCII heat rows (the paper's bubble plot) and
//! saves the raw counts as JSON.

use fedtrip_bench::Cli;
use fedtrip_data::partition::{HeterogeneityKind, Partition};
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::report::save_json;
use serde_json::json;

fn shade(frac: f64) -> char {
    match (frac * 5.0) as usize {
        0 => '.',
        1 => '-',
        2 => 'o',
        3 => 'O',
        _ => '@',
    }
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Fig. 4 — client label distributions (MNIST, 10 clients)");

    let spec = DatasetKind::MnistLike.spec();
    let mut artifacts = Vec::new();
    for h in [
        HeterogeneityKind::Dirichlet(0.1),
        HeterogeneityKind::Dirichlet(0.5),
        HeterogeneityKind::Orthogonal(5),
        HeterogeneityKind::Orthogonal(10),
    ] {
        let p = Partition::build(&spec, h, 10, cli.seed);
        let hists = p.label_histograms();
        println!("--- {} (skew {:.3}) ---", h.name(), p.skew());
        println!("          class: 0 1 2 3 4 5 6 7 8 9");
        for (ci, hist) in hists.iter().enumerate() {
            let n: usize = hist.iter().sum();
            let row: String = hist
                .iter()
                .map(|&c| format!("{} ", shade(c as f64 / n as f64)))
                .collect();
            let max_class = hist
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            println!("client {ci:>2}       : {row}  (dominant: {max_class})");
        }
        println!();
        artifacts.push(json!({"regime": h.name(), "skew": p.skew(), "histograms": hists}));
    }

    let path = save_json(&cli.results, "fig4_partitions", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
