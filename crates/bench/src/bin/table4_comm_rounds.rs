//! Table IV — communication rounds until the global model reaches the
//! target accuracy (6 methods x 6 model/dataset cases, Dir-0.5, 4-of-10).
//!
//! At reduced scales the absolute paper targets may sit above the reduced
//! plateau, so two targets are reported per case: the paper's absolute
//! target and an *adaptive* target (90% of the best final accuracy across
//! methods), which keeps the cross-method ordering comparable at any scale.

use fedtrip_bench::cases::{adaptive_target, CASES, METHODS};
use fedtrip_bench::cells::{run_or_load, CellResult};
use fedtrip_bench::Cli;
use fedtrip_core::experiment::{ExperimentSpec, Scale};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_metrics::report::{save_json, Table};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    cli.banner("Table IV — communication rounds to target accuracy (Dir-0.5, 4-of-10)");

    let mut artifacts = Vec::new();
    for case in &CASES {
        println!("--- {} ---", case.name);
        let cells: Vec<CellResult> = METHODS
            .iter()
            .map(|&alg| {
                let spec = ExperimentSpec {
                    dataset: case.dataset,
                    model: case.model,
                    heterogeneity: HeterogeneityKind::Dirichlet(0.5),
                    n_clients: 10,
                    clients_per_round: 4,
                    rounds: 100,
                    local_epochs: 1,
                    algorithm: alg,
                    hyper: ExperimentSpec::paper_hyper(case.dataset, case.model),
                    scale: cli.scale,
                    seed: cli.seed,
                };
                run_or_load(&cli.results, &spec)
            })
            .collect();

        let finals: Vec<f64> = cells.iter().map(|c| c.final_accuracy(10)).collect();
        let adaptive = adaptive_target(&finals, 0.90);
        let abs_target = if cli.scale == Scale::Paper {
            case.paper_target
        } else {
            case.paper_target.min(adaptive)
        };

        let mut t = Table::new(
            format!(
                "{} — paper target {:.0}%, adaptive target {:.1}%",
                case.name,
                case.paper_target * 100.0,
                adaptive * 100.0
            ),
            &[
                "Method",
                "paper rounds",
                "rounds@abs",
                "rounds@adaptive",
                "vs FedTrip",
                "final acc %",
            ],
        );
        let trip_adaptive = cells[0].rounds_to(adaptive);
        for (i, (&alg, cell)) in METHODS.iter().zip(&cells).enumerate() {
            let abs = cell.rounds_to(abs_target);
            let ada = cell.rounds_to(adaptive);
            let speed = match (trip_adaptive, ada) {
                (Some(t0), Some(r)) => format!("{:.2}x", r as f64 / t0 as f64),
                _ => "-".into(),
            };
            let fmt = |r: Option<usize>| {
                r.map(|v| v.to_string())
                    .unwrap_or_else(|| format!(">{}", cell.records.len()))
            };
            t.row(&[
                alg.name().to_string(),
                case.paper_rounds[i]
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                fmt(abs),
                fmt(ada),
                speed,
                format!("{:.2}", finals[i] * 100.0),
            ]);
            artifacts.push(json!({
                "case": case.name,
                "method": alg.name(),
                "paper_rounds": case.paper_rounds[i],
                "rounds_abs_target": abs,
                "rounds_adaptive_target": ada,
                "abs_target": abs_target,
                "adaptive_target": adaptive,
                "final_accuracy": finals[i],
            }));
        }
        println!("{}", t.render());
    }

    let path = save_json(&cli.results, "table4_comm_rounds", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
