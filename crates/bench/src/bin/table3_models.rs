//! Table III — communication and computation statistics of the models.
//!
//! Paper values: MLP 0.3 MB / 0.08 MFLOPs; CNN 0.24 MB / 0.42 MFLOPs;
//! AlexNet 10.42 MB / 2.72 M params / 145.93 MFLOPs. (The paper's "Params"
//! column for MLP/CNN is inconsistent with its own communication sizes by a
//! factor of 10; we report true parameter counts.)

use fedtrip_bench::Cli;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_models::{ModelKind, ModelStats};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    cli.banner("Table III — model communication / parameters / MFLOPs");

    // (model, input, classes, paper comm MB, paper params M, paper MFLOPs)
    let rows: Vec<(ModelKind, [usize; 3], usize, f64, f64, f64)> = vec![
        (ModelKind::Mlp, [1, 28, 28], 10, 0.3, 0.8, 0.08),
        (ModelKind::Cnn, [1, 28, 28], 10, 0.24, 0.62, 0.42),
        (ModelKind::AlexNet, [3, 32, 32], 10, 10.42, 2.72, 145.93),
        (
            ModelKind::CifarCnn,
            [3, 32, 32],
            10,
            f64::NAN,
            f64::NAN,
            f64::NAN,
        ),
    ];

    let mut table = Table::new(
        "Table III (paper vs measured; MACs = FLOPs/2 for the paper's counting)",
        &[
            "Model",
            "Comm MB (paper)",
            "Comm MB (ours)",
            "Params M (paper)",
            "Params M (ours)",
            "MFLOPs fwd (paper)",
            "MFLOPs fwd (ours)",
            "MMACs (ours)",
        ],
    );
    let mut artifacts = Vec::new();
    for (kind, shape, classes, p_comm, p_params, p_mflops) in rows {
        let net = kind.build(&shape, classes, cli.seed);
        let s = ModelStats::of(&net);
        let fmt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.2}")
            }
        };
        table.row(&[
            kind.name().to_string(),
            fmt(p_comm),
            format!("{:.2}", s.comm_mb()),
            fmt(p_params),
            format!("{:.3}", s.params as f64 / 1e6),
            fmt(p_mflops),
            format!("{:.2}", s.mflops_forward()),
            format!("{:.2}", s.mflops_forward() / 2.0),
        ]);
        artifacts.push(json!({
            "model": kind.name(),
            "params": s.params,
            "comm_mb": s.comm_mb(),
            "mflops_forward": s.mflops_forward(),
            "mflops_backward": s.flops_backward as f64 / 1e6,
        }));
    }
    println!("{}", table.render());
    let path = save_json(&cli.results, "table3_models", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
