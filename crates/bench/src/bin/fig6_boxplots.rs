//! Fig. 6 — boxplots of final accuracy (mean of the last 10 evaluation
//! rounds across trials) of CNN and MLP on FMNIST under four heterogeneity
//! types.
//!
//! The paper draws one box per (method, heterogeneity) over repeated trials;
//! run with `--trials 5` (or 10, as the paper) to populate the boxes. With a
//! single trial the box degenerates to a point, which is still enough to
//! compare medians.

use fedtrip_bench::cases::METHODS;
use fedtrip_bench::cells::run_trials;
use fedtrip_bench::Cli;
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_metrics::stats::BoxplotSummary;
use fedtrip_models::ModelKind;
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    cli.banner("Fig. 6 — final-accuracy boxplots on FMNIST (CNN and MLP)");

    let heterogeneities = [
        HeterogeneityKind::Dirichlet(0.5),
        HeterogeneityKind::Dirichlet(0.1),
        HeterogeneityKind::Orthogonal(5),
        HeterogeneityKind::Orthogonal(10),
    ];

    let mut artifacts = Vec::new();
    for model in [ModelKind::Cnn, ModelKind::Mlp] {
        for het in heterogeneities {
            println!("--- {} on FMNIST under {} ---", model.name(), het.name());
            let mut t = Table::new(
                format!("{} / {}", model.name(), het.name()),
                &["Method", "final acc % (min [q1|med|q3] max over trials)"],
            );
            for &alg in &METHODS {
                let spec = ExperimentSpec {
                    dataset: DatasetKind::FmnistLike,
                    model,
                    heterogeneity: het,
                    n_clients: 10,
                    clients_per_round: 4,
                    rounds: 100,
                    local_epochs: 1,
                    algorithm: alg,
                    hyper: ExperimentSpec::paper_hyper(DatasetKind::FmnistLike, model),
                    scale: cli.scale,
                    seed: cli.seed,
                };
                let cells = run_trials(&cli.results, &spec, cli.trials);
                let finals: Vec<f64> = cells.iter().map(|c| c.final_accuracy(10) * 100.0).collect();
                let b = BoxplotSummary::of(&finals);
                t.row(&[alg.name().to_string(), b.compact()]);
                artifacts.push(json!({
                    "model": model.name(),
                    "heterogeneity": het.name(),
                    "method": alg.name(),
                    "finals_pct": finals,
                    "boxplot": b,
                }));
            }
            println!("{}", t.render());
        }
    }

    let path = save_json(&cli.results, "fig6_boxplots", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
