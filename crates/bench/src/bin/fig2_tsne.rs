//! Fig. 2 — t-SNE visualization of feature representations: the global
//! model at the final round versus client 1's *local* model at the middle
//! and final rounds (FedAvg, CNN on MNIST-like data).
//!
//! The paper's qualitative claim: global-model features separate classes
//! cleanly, local models leave classes mixed, and newer local models beat
//! older ones. We reproduce the local models by fine-tuning the global
//! snapshot on client 1's data (exactly one local round, as the engine
//! does), quantify "mixedness" with a nearest-neighbour separation score on
//! the 2-d embedding, and print coarse ASCII scatter plots.

use fedtrip_bench::Cli;
use fedtrip_core::algorithms::AlgorithmKind;
use fedtrip_core::experiment::{ExperimentSpec, Scale};
use fedtrip_data::loader::BatchIter;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::{DatasetKind, SyntheticVision};
use fedtrip_metrics::report::save_json;
use fedtrip_metrics::tsne::{Tsne, TsneConfig};
use fedtrip_models::ModelKind;
use fedtrip_tensor::optim::{Optimizer, SgdMomentum};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use serde_json::json;

/// Mean ratio of nearest same-class distance to nearest other-class
/// distance; lower means classes form tighter, cleaner groups.
fn separation_score(emb: &[(f64, f64)], labels: &[usize]) -> f64 {
    let mut total = 0.0;
    for i in 0..emb.len() {
        let mut same = f64::INFINITY;
        let mut other = f64::INFINITY;
        for j in 0..emb.len() {
            if i == j {
                continue;
            }
            let d = (emb[i].0 - emb[j].0).powi(2) + (emb[i].1 - emb[j].1).powi(2);
            if labels[i] == labels[j] {
                same = same.min(d);
            } else {
                other = other.min(d);
            }
        }
        total += (same / other.max(1e-12)).sqrt();
    }
    total / emb.len() as f64
}

fn ascii_scatter(emb: &[(f64, f64)], labels: &[usize], w: usize, h: usize) -> String {
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in emb {
        lo_x = lo_x.min(x);
        hi_x = hi_x.max(x);
        lo_y = lo_y.min(y);
        hi_y = hi_y.max(y);
    }
    let mut grid = vec![vec![' '; w]; h];
    for (&(x, y), &l) in emb.iter().zip(labels) {
        let cx = (((x - lo_x) / (hi_x - lo_x).max(1e-9)) * (w - 1) as f64) as usize;
        let cy = (((y - lo_y) / (hi_y - lo_y).max(1e-9)) * (h - 1) as f64) as usize;
        grid[cy][cx] = char::from_digit((l % 10) as u32, 10).unwrap_or('?');
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

/// One local round of client `client` from the given global snapshot.
fn local_round(
    sim: &fedtrip_core::engine::Simulation,
    ds: &SyntheticVision,
    global: &[f32],
    client: usize,
    seed: u64,
) -> Vec<f32> {
    let mut net = sim.global_model();
    net.set_params_flat(global);
    let mut opt = SgdMomentum::new(0.01, 0.9);
    let refs = sim.partition().shard(client);
    let mut rng = Prng::derive(seed, &[rng_tags::TSNE_INIT, client as u64]);
    for (x, y) in BatchIter::new(ds, &refs, sim.config().batch_size, &mut rng) {
        net.zero_grads();
        net.train_step(&x, &y);
        opt.step(&mut net);
    }
    net.params_flat()
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Fig. 2 — t-SNE of global vs local feature representations");

    let rounds_total = if cli.scale == Scale::Smoke { 6 } else { 50 };
    let checkpoint = if cli.scale == Scale::Smoke { 3 } else { 30 };

    let spec = ExperimentSpec {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::Cnn,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 10,
        clients_per_round: 4,
        rounds: rounds_total,
        local_epochs: 1,
        algorithm: AlgorithmKind::FedAvg,
        hyper: ExperimentSpec::paper_hyper(DatasetKind::MnistLike, ModelKind::Cnn),
        scale: cli.scale,
        seed: cli.seed,
    };
    let mut sim = spec.build();
    let ds = SyntheticVision::new(DatasetKind::MnistLike, sim.config().seed);

    let mut global_mid: Option<Vec<f32>> = None;
    for _ in 0..sim.config().rounds {
        sim.run_round();
        if sim.rounds_done() == checkpoint {
            global_mid = Some(sim.global_params().to_vec());
        }
    }
    let global_final = sim.global_params().to_vec();
    let local_mid = local_round(
        &sim,
        &ds,
        global_mid.as_ref().unwrap_or(&global_final),
        1,
        cli.seed,
    );
    let local_final = local_round(&sim, &ds, &global_final, 1, cli.seed);

    let per_class = if cli.scale == Scale::Smoke { 4 } else { 12 };
    let (tx, ty) = ds.test_set(per_class);

    let mut artifacts = Vec::new();
    let mut eval = |name: &str, params: &[f32]| -> f64 {
        let mut net = sim.global_model();
        net.set_params_flat(params);
        let (_, feats) = net.forward_with_features(&tx);
        let dim = feats.len() / ty.len();
        let emb = Tsne::new(TsneConfig {
            perplexity: 10.0,
            iterations: if cli.scale == Scale::Smoke { 60 } else { 300 },
            seed: cli.seed,
            ..TsneConfig::default()
        })
        .embed(feats.as_slice(), dim);
        let score = separation_score(&emb, &ty);
        println!("--- {name}: separation score {score:.3} (lower = cleaner classes) ---");
        println!("{}\n", ascii_scatter(&emb, &ty, 60, 18));
        artifacts.push(json!({"model": name, "separation": score, "embedding": emb, "labels": ty}));
        score
    };

    let s_global = eval(
        &format!("global model @ round {rounds_total} (Fig. 2a)"),
        &global_final,
    );
    let s_local_final = eval(
        &format!("client 1 local model @ round {rounds_total} (Fig. 2b)"),
        &local_final,
    );
    let s_local_mid = eval(
        &format!("client 1 local model @ round {checkpoint} (Fig. 2c)"),
        &local_mid,
    );
    println!(
        "paper's qualitative ordering (global cleanest, older local most mixed):\n  global {s_global:.3} | local@final {s_local_final:.3} | local@mid {s_local_mid:.3}"
    );

    let path = save_json(&cli.results, "fig2_tsne", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
