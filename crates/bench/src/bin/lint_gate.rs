//! CI gate over `fedtrip-lint`: lints the whole workspace and exits
//! nonzero on any unsanctioned finding.
//!
//! ```text
//! lint_gate [--root <dir>] [--json <path>] [--update-schema]
//! ```
//!
//! `--json` writes the machine-readable report (uploaded as a CI
//! artifact); `--update-schema` regenerates `results/checkpoint_schema.json`
//! from the current checkpoint source before linting — run it whenever a
//! deliberate layout change bumps `CHECKPOINT_VERSION`.

use std::path::PathBuf;
use std::process::ExitCode;

use fedtrip_lint::{lint_workspace, render_schema_manifest, LintConfig};

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    update_schema: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut json = None;
    let mut update_schema = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--update-schema" => update_schema = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lint_gate [--root <dir>] [--json <path>] [--update-schema]".into(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        root,
        json,
        update_schema,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if !args.root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/ directory); \
             run from the repo root or pass --root",
            args.root.display()
        ));
    }
    let cfg = LintConfig::default();

    if args.update_schema {
        let manifest = render_schema_manifest(&args.root, &cfg)
            .map_err(|e| format!("reading {}: {e}", cfg.checkpoint_source))?
            .ok_or_else(|| {
                format!(
                    "{} defines no CHECKPOINT_VERSION; nothing to extract",
                    cfg.checkpoint_source
                )
            })?;
        let path = args.root.join(&cfg.checkpoint_manifest);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, &manifest).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("lint_gate: wrote {}", path.display());
    }

    let report = lint_workspace(&args.root, &cfg)
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;

    if let Some(path) = &args.json {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    let annotate = std::env::var_os("GITHUB_ACTIONS").is_some();
    for d in &report.diagnostics {
        println!("{d}");
        if annotate {
            // GitHub workflow command: an inline annotation at the finding's
            // file and line; properties and message need %/CR/LF escaping
            println!(
                "::error file={},line={},title=fedtrip-lint({})::{}",
                annotation_escape(&d.file),
                d.line,
                d.rule,
                annotation_escape(&d.message),
            );
        }
    }
    eprintln!(
        "lint_gate: {} files scanned, {} finding{}",
        report.files_scanned,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    Ok(report.is_clean())
}

/// Escape text for a GitHub workflow-command property or data field:
/// `%`, `\r`, and `\n` would otherwise terminate or corrupt the command.
fn annotation_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("lint_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
