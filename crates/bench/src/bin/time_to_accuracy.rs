//! `time_to_accuracy` — virtual wall-clock to a target accuracy, sync vs
//! semi-async, under heterogeneous device profiles.
//!
//! The synchronous barrier waits for the slowest selected client every
//! round, so its virtual time per round is governed by the tail of the
//! device-speed distribution; the semi-async scheduler folds the first `B`
//! arrivals and keeps stragglers' (staleness-discounted) work instead of
//! discarding round boundaries. This binary quantifies that trade on one
//! experiment cell across device speed spreads:
//!
//! ```bash
//! cargo run --release -p fedtrip-bench --bin time_to_accuracy -- \
//!     [--scale smoke|default|paper] [--seed S] [--results DIR]
//! ```
//!
//! The semi-async run gets a 2x fold budget (each fold consumes `B = K/2`
//! client results, half a synchronous round's work), and both modes are
//! scored with `fedtrip_metrics::time_to_target` against an adaptive target
//! (90% of the sync run's final accuracy, which keeps the comparison
//! meaningful at reduced scales).

use fedtrip_bench::Cli;
use fedtrip_core::engine::{RoundRecord, RunMode, Simulation};
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_metrics::time_to_target;
use serde_json::json;

/// (times, accuracies) of the evaluated rounds.
fn series(records: &[RoundRecord]) -> (Vec<f64>, Vec<f64>) {
    records
        .iter()
        .filter_map(|r| r.accuracy.map(|a| (r.virtual_time, a)))
        .unzip()
}

fn run(spec: &ExperimentSpec, mode: RunMode, device_het: f32) -> Simulation {
    let mut cfg = spec.to_config();
    cfg.mode = mode;
    cfg.device_het = device_het;
    if mode == RunMode::SemiAsync {
        cfg.rounds *= 2; // fair budget: one fold == B = K/2 client results
    }
    let mut sim = Simulation::new(cfg, spec.algorithm.build(&spec.hyper));
    sim.run();
    sim
}

fn fmt_time(t: Option<f64>) -> String {
    t.map(|s| format!("{s:.1}s")).unwrap_or_else(|| "—".into())
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Time to target accuracy — sync barrier vs semi-async buffer");

    let spec = ExperimentSpec::quickstart()
        .with_scale(cli.scale)
        .with_seed(cli.seed);
    let mut table = Table::new(
        format!("{} | virtual seconds to target", spec.algorithm.name()),
        &[
            "device spread",
            "target",
            "sync t",
            "semiasync t",
            "speedup",
            "sync final",
            "semiasync final",
        ],
    );
    let mut artifacts = Vec::new();

    for device_het in [1.0f32, 2.0, 4.0] {
        let sync = run(&spec, RunMode::Sync, device_het);
        let semi = run(&spec, RunMode::SemiAsync, device_het);

        let sync_final = sync.final_accuracy(5);
        let semi_final = semi.final_accuracy(5);
        let target = 0.90 * sync_final;

        let (ts, accs) = series(sync.records());
        let t_sync = time_to_target(&ts, &accs, target);
        let (ts, accs) = series(semi.records());
        let t_semi = time_to_target(&ts, &accs, target);

        let speedup = match (t_sync, t_semi) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:.2}x", a / b),
            _ => "—".into(),
        };
        table.row(&[
            format!("{device_het:.0}x"),
            format!("{:.1}%", target * 100.0),
            fmt_time(t_sync),
            fmt_time(t_semi),
            speedup,
            format!("{:.1}%", sync_final * 100.0),
            format!("{:.1}%", semi_final * 100.0),
        ]);
        artifacts.push(json!({
            "device_het": device_het as f64,
            "target": target,
            "sync_time_to_target": t_sync,
            "semiasync_time_to_target": t_semi,
            "sync_final_accuracy": sync_final,
            "semiasync_final_accuracy": semi_final,
        }));
    }

    println!("{}", table.render());
    match save_json(&cli.results, "time_to_accuracy", &artifacts) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
