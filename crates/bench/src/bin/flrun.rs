//! `flrun` — run any single federated experiment from the command line.
//!
//! ```bash
//! cargo run --release -p fedtrip-bench --bin flrun -- \
//!     --alg fedtrip --dataset mnist --model cnn --het dir0.5 \
//!     --clients 10 --per-round 4 --rounds 30 --mu 0.4 \
//!     --scale default --checkpoint run.json
//! ```
//!
//! Prints the accuracy trajectory and summary on stdout (diagnostics —
//! partition-regime notes, residency, checkpoint paths — go to stderr so
//! piped output stays a clean table); optionally checkpoints the finished
//! run so it can be extended later with `--resume run.json --rounds N`.
//! Upload compression is `--compress q8|q4|topk:0.01` (optionally with
//! `--error-feedback`); the virtual clock then charges the encoded uplink
//! bytes, visible in the `up-MB/rnd` column. Downlink compression is
//! `--compress-down q8|q4|topk:F`: the server broadcasts quantized global
//! *deltas* with its own error-feedback residual, re-anchoring with a
//! dense full-model resync every `--resync R` rounds (and on demand for
//! churn joiners that lack a broadcast base); encoded downlink bytes show
//! up in the `down-MB/rnd` column. `--edges E` shards clients
//! across `E` edge aggregators with per-edge clocks and a parallel root
//! merge — the knob that makes million-client federations tractable.
//! `--availability diurnal[:PERIOD[:FRAC]]` gives every client a
//! seed-derived on/off day, `--churn JOIN[:RESIDENCY]` staggers joins and
//! departures across the run, `--deadline SECS` drops synchronous
//! stragglers at the reporting deadline, and `--selection oort` switches
//! to utility-aware (loss × speed) client selection.

use fedtrip_core::algorithms::AlgorithmKind;
use fedtrip_core::checkpoint::Checkpoint;
use fedtrip_core::compression::CompressionKind;
use fedtrip_core::engine::{RunMode, SelectionStrategy, Simulation};
use fedtrip_core::experiment::{ExperimentSpec, Scale};
use fedtrip_data::partition::{HeterogeneityKind, ShardRegime};
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use fedtrip_tensor::optim::LrSchedule;
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("flrun: {msg}");
    eprintln!(
        "usage: flrun [--alg NAME] [--dataset mnist|fmnist|emnist|cifar] \
         [--model mlp|cnn|alexnet|cifarcnn] [--het iid|dirA|orthK] \
         [--clients N] [--per-round K] [--rounds T] [--epochs E] [--mu X] \
         [--seed S] [--scale smoke|default|paper] \
         [--selection uniform|roundrobin|weighted|oort] [--failure-prob P] \
         [--lr-schedule const|step:E:F|cosine:T:M] [--mode sync|semiasync] \
         [--device-het S] [--buffer B] [--compress none|q8|q4|topk:F] \
         [--error-feedback] [--compress-down none|q8|q4|topk:F] [--resync R] \
         [--edges E] \
         [--availability always|diurnal[:PERIOD[:FRAC]]] [--churn JOIN[:RESIDENCY]] \
         [--deadline SECS] [--checkpoint FILE] [--resume FILE]"
    );
    std::process::exit(2);
}

/// Parse `always` / `diurnal[:PERIOD[:FRAC]]` into
/// `(availability_period, availability_on_fraction)`; the diurnal
/// defaults are a 24-round day with a 50% duty cycle.
fn parse_availability(s: &str) -> Option<(usize, f32)> {
    let l = s.to_ascii_lowercase();
    if l == "always" || l == "always-on" {
        return Some((0, 0.5));
    }
    let mut parts = l.split(':');
    if parts.next()? != "diurnal" {
        return None;
    }
    let period: usize = match parts.next() {
        Some(p) => p.parse().ok()?,
        None => 24,
    };
    let frac: f32 = match parts.next() {
        Some(f) => f.parse().ok()?,
        None => 0.5,
    };
    if parts.next().is_some() || period == 0 || frac <= 0.0 || frac > 1.0 {
        return None;
    }
    Some((period, frac))
}

/// Parse `JOIN[:RESIDENCY]` into `(churn_join_window, churn_residency)`;
/// residency defaults to 16 rounds.
fn parse_churn(s: &str) -> Option<(usize, usize)> {
    let mut parts = s.split(':');
    let join: usize = parts.next()?.parse().ok()?;
    let residency: usize = match parts.next() {
        Some(r) => r.parse().ok()?,
        None => 16,
    };
    if parts.next().is_some() || residency == 0 {
        return None;
    }
    Some((join, residency))
}

/// Parse `const` / `step:EVERY:FACTOR` / `cosine:TOTAL:MIN_LR`.
fn parse_lr_schedule(s: &str) -> Option<LrSchedule> {
    let l = s.to_ascii_lowercase();
    if l == "const" || l == "constant" {
        return Some(LrSchedule::Constant);
    }
    let mut parts = l.split(':');
    match parts.next()? {
        "step" => {
            let every = parts.next()?.parse().ok()?;
            let factor = parts.next()?.parse().ok()?;
            Some(LrSchedule::StepDecay { every, factor })
        }
        "cosine" => {
            let total = parts.next()?.parse().ok()?;
            let min_lr = parts.next()?.parse().ok()?;
            Some(LrSchedule::Cosine { total, min_lr })
        }
        _ => None,
    }
}

/// Engine knobs that sit on `SimulationConfig` but not on `ExperimentSpec`;
/// applied after `to_config()`.
#[derive(Default)]
struct ConfigOverrides {
    selection: Option<SelectionStrategy>,
    failure_prob: Option<f32>,
    lr_schedule: Option<LrSchedule>,
    mode: Option<RunMode>,
    device_het: Option<f32>,
    async_buffer: Option<usize>,
    compression: Option<CompressionKind>,
    error_feedback: bool,
    downlink: Option<CompressionKind>,
    resync: Option<usize>,
    edges: Option<usize>,
    availability: Option<(usize, f32)>,
    churn: Option<(usize, usize)>,
    deadline: Option<f32>,
}

impl ConfigOverrides {
    fn any(&self) -> bool {
        self.selection.is_some()
            || self.failure_prob.is_some()
            || self.lr_schedule.is_some()
            || self.mode.is_some()
            || self.device_het.is_some()
            || self.async_buffer.is_some()
            || self.compression.is_some()
            || self.error_feedback
            || self.downlink.is_some()
            || self.resync.is_some()
            || self.edges.is_some()
            || self.availability.is_some()
            || self.churn.is_some()
            || self.deadline.is_some()
    }
}

fn parse_het(s: &str) -> Option<HeterogeneityKind> {
    let l = s.to_ascii_lowercase();
    if l == "iid" {
        return Some(HeterogeneityKind::Iid);
    }
    if let Some(a) = l.strip_prefix("dir") {
        return a.parse().ok().map(HeterogeneityKind::Dirichlet);
    }
    if let Some(k) = l.strip_prefix("orth") {
        return k.parse().ok().map(HeterogeneityKind::Orthogonal);
    }
    None
}

fn parse_dataset(s: &str) -> Option<DatasetKind> {
    match s.to_ascii_lowercase().as_str() {
        "mnist" => Some(DatasetKind::MnistLike),
        "fmnist" => Some(DatasetKind::FmnistLike),
        "emnist" => Some(DatasetKind::EmnistLike),
        "cifar" | "cifar10" => Some(DatasetKind::Cifar10Like),
        _ => None,
    }
}

fn parse_model(s: &str) -> Option<ModelKind> {
    match s.to_ascii_lowercase().as_str() {
        "mlp" => Some(ModelKind::Mlp),
        "cnn" => Some(ModelKind::Cnn),
        "alexnet" => Some(ModelKind::AlexNet),
        "cifarcnn" => Some(ModelKind::CifarCnn),
        "tinymlp" => Some(ModelKind::TinyMlp),
        "tinycnn" => Some(ModelKind::TinyCnn),
        _ => None,
    }
}

fn main() {
    let mut spec = ExperimentSpec::quickstart().with_scale(Scale::Default);
    spec.rounds = 30;
    let mut overrides = ConfigOverrides::default();
    let mut checkpoint: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut extra_rounds: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = || -> &str {
            args.get(i + 1)
                .map(|s| s.as_str())
                .unwrap_or_else(|| die(&format!("missing value for {}", args[i])))
        };
        match args[i].as_str() {
            "--alg" => {
                spec.algorithm = AlgorithmKind::parse(val()).unwrap_or_else(|| die("unknown --alg"))
            }
            "--dataset" => {
                spec.dataset = parse_dataset(val()).unwrap_or_else(|| die("unknown --dataset"))
            }
            "--model" => spec.model = parse_model(val()).unwrap_or_else(|| die("unknown --model")),
            "--het" => {
                spec.heterogeneity = parse_het(val()).unwrap_or_else(|| die("unknown --het"))
            }
            "--clients" => spec.n_clients = val().parse().unwrap_or_else(|_| die("bad --clients")),
            "--per-round" => {
                spec.clients_per_round = val().parse().unwrap_or_else(|_| die("bad --per-round"))
            }
            "--rounds" => {
                let r: usize = val().parse().unwrap_or_else(|_| die("bad --rounds"));
                spec.rounds = r;
                extra_rounds = Some(r);
            }
            "--epochs" => spec.local_epochs = val().parse().unwrap_or_else(|_| die("bad --epochs")),
            "--mu" => spec.hyper.fedtrip_mu = val().parse().unwrap_or_else(|_| die("bad --mu")),
            "--seed" => spec.seed = val().parse().unwrap_or_else(|_| die("bad --seed")),
            "--scale" => spec.scale = Scale::parse(val()).unwrap_or_else(|| die("bad --scale")),
            "--selection" => {
                overrides.selection =
                    Some(SelectionStrategy::parse(val()).unwrap_or_else(|| die("bad --selection")))
            }
            "--failure-prob" => {
                let p: f32 = val().parse().unwrap_or_else(|_| die("bad --failure-prob"));
                if !(0.0..=1.0).contains(&p) {
                    die("--failure-prob must be in [0, 1]");
                }
                overrides.failure_prob = Some(p);
            }
            "--lr-schedule" => {
                overrides.lr_schedule =
                    Some(parse_lr_schedule(val()).unwrap_or_else(|| die("bad --lr-schedule")))
            }
            "--mode" => {
                overrides.mode = Some(RunMode::parse(val()).unwrap_or_else(|| die("bad --mode")))
            }
            "--device-het" => {
                let s: f32 = val().parse().unwrap_or_else(|_| die("bad --device-het"));
                if s < 1.0 {
                    die("--device-het must be >= 1");
                }
                overrides.device_het = Some(s);
            }
            "--buffer" => {
                overrides.async_buffer = Some(val().parse().unwrap_or_else(|_| die("bad --buffer")))
            }
            "--compress" => {
                overrides.compression =
                    Some(CompressionKind::parse(val()).unwrap_or_else(|| die("bad --compress")))
            }
            "--error-feedback" => {
                // boolean flag: consumes no value
                overrides.error_feedback = true;
                i += 1;
                continue;
            }
            "--compress-down" => {
                overrides.downlink = Some(
                    CompressionKind::parse(val()).unwrap_or_else(|| die("bad --compress-down")),
                )
            }
            "--resync" => {
                overrides.resync = Some(val().parse().unwrap_or_else(|_| die("bad --resync")))
            }
            "--edges" => {
                let e: usize = val().parse().unwrap_or_else(|_| die("bad --edges"));
                if e == 0 {
                    die("--edges must be >= 1");
                }
                overrides.edges = Some(e);
            }
            "--availability" => {
                overrides.availability =
                    Some(parse_availability(val()).unwrap_or_else(|| die("bad --availability")))
            }
            "--churn" => {
                overrides.churn = Some(parse_churn(val()).unwrap_or_else(|| die("bad --churn")))
            }
            "--deadline" => {
                let d: f32 = val().parse().unwrap_or_else(|_| die("bad --deadline"));
                if !d.is_finite() || d < 0.0 {
                    die("--deadline must be a finite number of virtual seconds >= 0");
                }
                overrides.deadline = Some(d);
            }
            "--checkpoint" => checkpoint = Some(PathBuf::from(val())),
            "--resume" => resume = Some(PathBuf::from(val())),
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }

    let mut sim = match &resume {
        Some(path) => {
            if overrides.any() {
                die("engine overrides (--selection/--failure-prob/--lr-schedule/--mode/--device-het/--buffer/--compress/--error-feedback/--compress-down/--resync/--edges/--availability/--churn/--deadline) cannot be combined with --resume; the checkpoint pins them");
            }
            let ckpt = Checkpoint::load(path).unwrap_or_else(|e| die(&format!("resume: {e}")));
            eprintln!(
                "resuming {} on {} from round {}",
                ckpt.algorithm.name(),
                ckpt.config.dataset.name(),
                ckpt.round
            );
            spec.algorithm = ckpt.algorithm;
            spec.hyper = ckpt.hyper;
            let mut sim = ckpt
                .restore()
                .unwrap_or_else(|e| die(&format!("resume: {e}")));
            if let Some(r) = extra_rounds {
                sim.extend_rounds(r);
            }
            sim
        }
        None => {
            let mut cfg = spec.to_config();
            if let Some(s) = overrides.selection {
                cfg.selection = s;
            }
            if let Some(p) = overrides.failure_prob {
                cfg.failure_prob = p;
            }
            if let Some(ls) = overrides.lr_schedule {
                cfg.lr_schedule = ls;
            }
            if let Some(m) = overrides.mode {
                cfg.mode = m;
            }
            if let Some(d) = overrides.device_het {
                cfg.device_het = d;
            }
            if let Some(b) = overrides.async_buffer {
                cfg.async_buffer = b;
            }
            if let Some(c) = overrides.compression {
                if let CompressionKind::TopK(f) = c {
                    if f > 0.5 {
                        eprintln!(
                            "flrun: warning: topk:{f} expands the uplink (8 bytes per kept \
                             coordinate vs 4 dense); fractions <= 0.5 compress"
                        );
                    }
                }
                cfg.compression = c;
            }
            cfg.error_feedback = overrides.error_feedback;
            if let Some(c) = overrides.downlink {
                cfg.downlink_compression = c;
            }
            if let Some(r) = overrides.resync {
                cfg.resync_interval = r;
            }
            if let Some(e) = overrides.edges {
                cfg.edges = e;
            }
            if let Some((period, frac)) = overrides.availability {
                cfg.availability_period = period;
                cfg.availability_on_fraction = frac;
            }
            if let Some((join, residency)) = overrides.churn {
                cfg.churn_join_window = join;
                cfg.churn_residency = residency;
            }
            if let Some(d) = overrides.deadline {
                cfg.deadline_secs = d;
            }
            let avail = if cfg.availability_period > 0 {
                format!(
                    " | avail diurnal:{}:{:.2}",
                    cfg.availability_period, cfg.availability_on_fraction
                )
            } else {
                String::new()
            };
            let churn = if cfg.churn_join_window > 0 {
                format!(" | churn {}:{}", cfg.churn_join_window, cfg.churn_residency)
            } else {
                String::new()
            };
            let deadline = if cfg.deadline_secs > 0.0 {
                format!(" | deadline {:.1}s", cfg.deadline_secs)
            } else {
                String::new()
            };
            let down = if cfg.downlink_compression != CompressionKind::None {
                format!(
                    " | compress-down {} (resync {})",
                    cfg.downlink_compression.name(),
                    cfg.resync_interval,
                )
            } else {
                String::new()
            };
            println!(
                "{} | {} / {} | {} | {}-of-{} clients | {} rounds | scale {:?} | mode {} | device-het {:.1}x | compress {}{}{down} | edges {}{avail}{churn}{deadline}",
                spec.algorithm.name(),
                spec.model.name(),
                spec.dataset.name(),
                spec.heterogeneity.name(),
                spec.clients_per_round,
                spec.n_clients,
                spec.rounds,
                spec.scale,
                cfg.mode.name(),
                cfg.device_het,
                cfg.compression.name(),
                if cfg.error_feedback { " +ef" } else { "" },
                cfg.edges,
            );
            Simulation::new(cfg, spec.algorithm.build(&spec.hyper))
        }
    };

    // diagnostics go to stderr so piped stdout stays a clean results table
    if sim.partition().regime() == ShardRegime::Independent {
        eprintln!(
            "note: {} clients x {} samples exceeds the dataset's finite pools; shards draw \
             per-client with replacement (independent regime) instead of disjointly",
            sim.partition().n_clients(),
            sim.partition().client_samples(),
        );
    }

    let t0 = std::time::Instant::now();
    sim.run();
    let records = sim.records();
    println!(
        "\nround  acc%    loss    cum-GFLOPs  cum-comm-MB  up-MB/rnd  down-MB/rnd      virt-s  staleness"
    );
    let step = (records.len() / 15).max(1);
    for r in records.iter().step_by(step) {
        println!(
            "{:>5}  {:>5.1}  {:>6.3}  {:>10.2}  {:>11.2}  {:>9.3}  {:>11.3}  {:>10.1}  {:>9.2}",
            r.round,
            r.accuracy.unwrap_or(f64::NAN) * 100.0,
            r.mean_loss,
            r.cum_flops / 1e9,
            r.cum_comm_bytes / 1e6,
            r.comm_bytes_up / 1e6,
            r.comm_bytes_down / 1e6,
            r.virtual_time,
            r.mean_staleness,
        );
    }
    let ratio = records.last().map(|r| r.compression_ratio).unwrap_or(1.0);
    let ratio_down = records
        .last()
        .map(|r| r.compression_ratio_down)
        .unwrap_or(1.0);
    println!(
        "\nfinal accuracy (last 10 evals): {:.2}%   virtual: {:.1}s   uplink ratio: {:.2}x   downlink ratio: {:.2}x   wall: {:.1?}",
        sim.final_accuracy(10) * 100.0,
        sim.virtual_time(),
        ratio,
        ratio_down,
        t0.elapsed()
    );
    eprintln!(
        "resident client state: {} of {} clients (sparse store + lazy shards keep memory O(participants))",
        sim.client_states().resident(),
        sim.config().n_clients,
    );
    let edges = sim.config().edges;
    if edges > 1 {
        eprintln!(
            "edge tier: {} aggregators, ~{} resident clients per edge (cohorts shard client mod E)",
            edges,
            sim.client_states().resident().div_ceil(edges),
        );
    }

    if let Some(path) = checkpoint {
        Checkpoint::capture(&sim, spec.algorithm, spec.hyper)
            .save(&path)
            .unwrap_or_else(|e| die(&format!("checkpoint: {e}")));
        eprintln!("checkpoint written to {}", path.display());
    }
}
