//! `bench_gate` — the CI bench-regression gate.
//!
//! Runs criterion-lite versions of the round and local-step benches, a
//! hierarchical-tier round (`edge_merge_ns`: a K = 32 cohort sharded over
//! 8 edge aggregators, then the parallel root merge), plus a
//! population-scale smoke (`N ∈ {1k, 10k, 100k}`, `K = 4`), writes the
//! measurements to `BENCH_population.json` (a CI artifact), and **fails**
//! when
//!
//! * any timing metric (best-of-reps, the noise-robust estimator)
//!   regresses more than the tolerance (default 15%,
//!   `BENCH_GATE_TOLERANCE=0.15`) against the committed
//!   `results/bench_baseline.json`,
//! * resident client-state entries or partition shards exceed the hard
//!   `rounds × K` bound at any population size, or
//! * the round time at `N = 100k` is more than `3×` the `N = 1k` one
//!   (the flat-population invariant, with generous noise headroom).
//!
//! Refresh the baseline after an intentional perf change with
//! `cargo run --release -p fedtrip-bench --bin bench_gate -- --write-baseline`.
//!
//! **Cross-machine caveat:** the timing comparison is absolute
//! nanoseconds, so the baseline is only meaningful on hardware comparable
//! to where it was written. On a CI fleet, refresh the baseline from a CI
//! runner (commit the artifact of a `--write-baseline` run) or widen
//! `BENCH_GATE_TOLERANCE`; the residency bound and the population
//! flatness ratio are machine-independent and always enforced.

use fedtrip_bench::population::{
    measure_population, population_cfg, BenchReport, PopulationPoint, SWEEP_K,
};
use fedtrip_core::algorithms::{AlgorithmKind, ClientData, ClientState, HyperParams, LocalContext};
use fedtrip_core::engine::Simulation;
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use fedtrip_models::ModelKind;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

const BASELINE: &str = "results/bench_baseline.json";
const ARTIFACT: &str = "BENCH_population.json";
const POP_ROUNDS: usize = 3;
const POP_REPS: usize = 3;
const FLATNESS_FACTOR: f64 = 3.0;

/// Minimum nanoseconds over `reps` executions of `f` (after one warmup).
///
/// The *fastest* observation is the noise-robust regression estimator: a
/// loaded machine can only inflate samples, never deflate them, so min is
/// far more stable across runs than a small-sample median.
fn time_min(reps: usize, mut f: impl FnMut()) -> u64 {
    f(); // warmup: first-touch allocations, lazy caches
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap_or(0)
}

/// Criterion-lite `bench_round`: one complete engine round (selection,
/// local training of K clients, streaming fold) on the smoke-scale config.
fn round_metric(kind: AlgorithmKind) -> u64 {
    let cfg = population_cfg(10, SWEEP_K, 1_000_000, 11);
    let mut sim = Simulation::new(cfg, kind.build(&HyperParams::default()));
    time_min(9, || {
        sim.run_round();
    })
}

/// Criterion-lite hierarchical-tier round: a K = 32 cohort sharded across
/// 8 edge aggregators (4 clients per edge fold, then the parallel root
/// merge) on a 10k-client federation — the `--edges` hot path.
fn edge_merge_metric() -> u64 {
    let mut cfg = population_cfg(10_000, 32, 1_000_000, 13);
    cfg.edges = 8;
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    time_min(7, || {
        sim.run_round();
    })
}

/// Criterion-lite `bench_local_step`: one client's local round on the CNN
/// (the Appendix-A attach-cost path).
fn local_step_metric(kind: AlgorithmKind) -> u64 {
    let dataset = SyntheticVision::new(DatasetKind::MnistLike, 7);
    let refs: Vec<SampleRef> = (0..50u32)
        .map(|i| SampleRef {
            class: (i % 10) as u16,
            id: i / 10,
        })
        .collect();
    let template = ModelKind::Cnn.build(&[1, 28, 28], 10, 7);
    let global = template.params_flat();
    let alg = kind.build(&HyperParams::default());
    time_min(7, || {
        let mut net = template.clone();
        net.set_params_flat(&global);
        let mut state = ClientState {
            last_round: Some(1),
            historical: Some(global.clone()),
            ..ClientState::default()
        };
        let ctx = LocalContext {
            round: 2,
            client_id: 0,
            global: &global,
            gap: Some(1),
            epochs: 1,
            batch_size: 50,
            lr: 0.01,
            momentum: 0.9,
            seed: 7,
        };
        let data = ClientData {
            dataset: &dataset,
            refs: &refs,
        };
        std::hint::black_box(alg.local_train(&mut net, &data, &mut state, &ctx));
    })
}

fn fail(failures: &mut Vec<String>, msg: String) {
    eprintln!("bench_gate: FAIL: {msg}");
    failures.push(msg);
}

fn main() {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);

    let mut metrics: BTreeMap<String, u64> = BTreeMap::new();
    println!("bench_gate: timing criterion-lite benches ...");
    for kind in [AlgorithmKind::FedAvg, AlgorithmKind::FedTrip] {
        let ns = round_metric(kind);
        println!("  round_{}_ns = {ns}", kind.name().to_lowercase());
        metrics.insert(format!("round_{}_ns", kind.name().to_lowercase()), ns);
    }
    for kind in [AlgorithmKind::FedAvg, AlgorithmKind::FedTrip] {
        let ns = local_step_metric(kind);
        println!("  local_step_{}_ns = {ns}", kind.name().to_lowercase());
        metrics.insert(format!("local_step_{}_ns", kind.name().to_lowercase()), ns);
    }
    let ns = edge_merge_metric();
    println!("  edge_merge_ns = {ns}");
    metrics.insert("edge_merge_ns".into(), ns);

    println!("bench_gate: population smoke (K = {SWEEP_K}, {POP_ROUNDS} rounds) ...");
    let mut population: Vec<PopulationPoint> = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let p = measure_population(n, SWEEP_K, POP_ROUNDS, POP_REPS, 2026);
        println!(
            "  N={:>6}: {:.3} ms/round, {} entries, {} shards",
            p.n_clients,
            p.median_round_ns as f64 / 1e6,
            p.resident_entries,
            p.resident_shards,
        );
        metrics.insert(format!("population_round_n{n}_ns"), p.min_round_ns);
        population.push(p);
    }

    let report = BenchReport {
        schema: 1,
        metrics,
        population,
    };
    let artifact = PathBuf::from(ARTIFACT);
    fs::write(
        &artifact,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write artifact");
    println!("bench_gate: wrote {}", artifact.display());

    let mut failures: Vec<String> = Vec::new();

    // hard invariants (machine-independent)
    let bound = POP_ROUNDS * SWEEP_K;
    for p in &report.population {
        if p.resident_entries > bound {
            fail(
                &mut failures,
                format!(
                    "N={}: resident state entries {} exceed rounds×K = {bound}",
                    p.n_clients, p.resident_entries
                ),
            );
        }
        if p.resident_shards > bound {
            fail(
                &mut failures,
                format!(
                    "N={}: resident shards {} exceed rounds×K = {bound}",
                    p.n_clients, p.resident_shards
                ),
            );
        }
    }
    let (first, last) = (
        report.population.first().expect("nonempty sweep"),
        report.population.last().expect("nonempty sweep"),
    );
    let ratio = last.min_round_ns as f64 / first.min_round_ns.max(1) as f64;
    println!(
        "bench_gate: round-time ratio N={} / N={} = {ratio:.2}x",
        last.n_clients, first.n_clients
    );
    if ratio > FLATNESS_FACTOR {
        fail(
            &mut failures,
            format!(
                "population round time is not flat: N={} is {ratio:.2}x N={} (limit {FLATNESS_FACTOR}x)",
                last.n_clients, first.n_clients
            ),
        );
    }

    // regression gate against the committed baseline
    let baseline_path = Path::new(BASELINE);
    if write_baseline {
        if let Some(dir) = baseline_path.parent() {
            fs::create_dir_all(dir).expect("create baseline dir");
        }
        fs::write(
            baseline_path,
            serde_json::to_string_pretty(&report).expect("serialize baseline"),
        )
        .expect("write baseline");
        println!("bench_gate: baseline refreshed at {BASELINE}");
    } else if baseline_path.exists() {
        let body = fs::read_to_string(baseline_path).expect("read baseline");
        let baseline: BenchReport = serde_json::from_str(&body).expect("parse baseline");
        for (name, &base_ns) in &baseline.metrics {
            let Some(&now_ns) = report.metrics.get(name) else {
                fail(
                    &mut failures,
                    format!("metric `{name}` missing from this run"),
                );
                continue;
            };
            let rel = now_ns as f64 / base_ns.max(1) as f64 - 1.0;
            let verdict = if rel > tolerance { "REGRESSED" } else { "ok" };
            println!(
                "  {name}: {now_ns} vs baseline {base_ns} ({:+.1}%) {verdict}",
                rel * 100.0
            );
            if rel > tolerance {
                fail(
                    &mut failures,
                    format!(
                        "`{name}` regressed {:.1}% (tolerance {:.0}%)",
                        rel * 100.0,
                        tolerance * 100.0
                    ),
                );
            }
        }
    } else {
        fail(
            &mut failures,
            format!("no baseline at {BASELINE}; run with --write-baseline to create it"),
        );
    }

    if failures.is_empty() {
        println!("bench_gate: PASS");
    } else {
        eprintln!("bench_gate: {} failure(s)", failures.len());
        std::process::exit(1);
    }
}
