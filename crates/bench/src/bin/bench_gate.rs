//! `bench_gate` — the CI bench-regression gate.
//!
//! Runs criterion-lite versions of the round and local-step benches, a
//! hierarchical-tier round (`edge_merge_ns`: a K = 32 cohort sharded over
//! 8 edge aggregators, then the parallel root merge), an
//! availability-scenario round (`scenario_round_ns`: diurnal + churn +
//! Oort selection on a 10k federation — the filtered-selection hot path),
//! plus a population-scale smoke (`N ∈ {1k, 10k, 100k}`, `K = 4`), writes the
//! measurements to `BENCH_population.json` (a CI artifact), and **fails**
//! when
//!
//! * any timing metric (best-of-reps, the noise-robust estimator)
//!   regresses more than the tolerance (default 15%,
//!   `BENCH_GATE_TOLERANCE=0.15`) against the committed
//!   `results/bench_baseline.json` **after retries** — a metric over
//!   tolerance is re-measured up to 2 more times and the best value
//!   kept, since a genuine regression reproduces on every retry while a
//!   scheduler-noise burst clears. Metrics whose name contains `gflops`
//!   are throughputs (stored as integer MFLOP/s) and gate in the
//!   opposite direction (lower is a regression),
//! * `local_step_fedavg_ns` exceeds the hard 15 ms budget (the
//!   tensor-kernel overhaul's absolute floor, machine-independent on any
//!   CI-class x86 core),
//! * resident client-state entries or partition shards exceed the hard
//!   `rounds × K` bound at any population size, or
//! * the round time at `N = 100k` is more than `3×` the `N = 1k` one
//!   (the flat-population invariant, with generous noise headroom).
//!
//! Refresh the baseline after an intentional perf change with
//! `cargo run --release -p fedtrip-bench --bin bench_gate -- --write-baseline`
//! — then round the written values toward the conservative mid-range of a
//! few repeated runs before committing. Pinning the fastest observed
//! moment makes the gate flake on every scheduler-noise burst; on the
//! shared single-vCPU machines this runs on, run-to-run swings of ±35%
//! are routine even for best-of-reps.
//!
//! **Cross-machine caveat:** the timing comparison is absolute
//! nanoseconds, so the baseline is only meaningful on hardware comparable
//! to where it was written. On a CI fleet, refresh the baseline from a CI
//! runner (commit the artifact of a `--write-baseline` run) or widen
//! `BENCH_GATE_TOLERANCE`; the residency bound and the population
//! flatness ratio are machine-independent and always enforced.

use fedtrip_bench::population::{
    measure_population, population_cfg, BenchReport, PopulationPoint, SWEEP_K,
};
use fedtrip_core::algorithms::{AlgorithmKind, ClientData, ClientState, HyperParams, LocalContext};
use fedtrip_core::compression::{error_feedback_step, CompressionKind};
use fedtrip_core::engine::Simulation;
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use fedtrip_models::ModelKind;
use fedtrip_tensor::conv::ConvGeom;
use fedtrip_tensor::layers::{Conv2d, Layer};
use fedtrip_tensor::linalg::sgemm;
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::{Scratch, Tensor};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

const BASELINE: &str = "results/bench_baseline.json";
const ARTIFACT: &str = "BENCH_population.json";
const POP_ROUNDS: usize = 3;
const POP_REPS: usize = 3;
const FLATNESS_FACTOR: f64 = 3.0;
/// Hard ceiling on a FedAvg CNN local round (50 samples, 1 epoch).
const LOCAL_STEP_BUDGET_NS: u64 = 15_000_000;

/// How many times a metric that trips its gate is re-measured before the
/// failure is believed. A genuine regression reproduces on every retry;
/// a scheduler-noise burst (routinely ±35% on shared vCPUs) clears.
const GATE_RETRIES: usize = 2;

/// Pause before each retry so a short noise burst (preemption, clock
/// ramp-down) can pass instead of being re-sampled back-to-back.
const RETRY_PAUSE: std::time::Duration = std::time::Duration::from_secs(2);

/// Minimum nanoseconds over `reps` executions of `f` (after one warmup).
///
/// The *fastest* observation is the noise-robust regression estimator: a
/// loaded machine can only inflate samples, never deflate them, so min is
/// far more stable across runs than a small-sample median.
fn time_min(reps: usize, mut f: impl FnMut()) -> u64 {
    f(); // warmup: first-touch allocations, lazy caches
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap_or(0)
}

/// Criterion-lite `bench_round`: one complete engine round (selection,
/// local training of K clients, streaming fold) on the smoke-scale config.
fn round_metric(kind: AlgorithmKind) -> u64 {
    let cfg = population_cfg(10, SWEEP_K, 1_000_000, 11);
    let mut sim = Simulation::new(cfg, kind.build(&HyperParams::default()));
    time_min(9, || {
        sim.run_round();
    })
}

/// Criterion-lite hierarchical-tier round: a K = 32 cohort sharded across
/// 8 edge aggregators (4 clients per edge fold, then the parallel root
/// merge) on a 10k-client federation — the `--edges` hot path.
fn edge_merge_metric() -> u64 {
    let mut cfg = population_cfg(10_000, 32, 1_000_000, 13);
    cfg.edges = 8;
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    time_min(7, || {
        sim.run_round();
    })
}

/// Criterion-lite availability-scenario round: diurnal availability,
/// churn, and Oort utility-aware selection on a 10k-client federation —
/// the filtered-selection hot path (rejection sampling against the
/// availability trace plus the utility ranking) that `scenario` sweeps.
fn scenario_round_metric() -> u64 {
    let mut cfg = population_cfg(10_000, SWEEP_K, 1_000_000, 17);
    cfg.selection = fedtrip_core::engine::SelectionStrategy::Oort;
    cfg.availability_period = 24;
    cfg.availability_on_fraction = 0.5;
    cfg.churn_join_window = 100;
    cfg.churn_residency = 200;
    cfg.device_het = 4.0;
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    time_min(7, || {
        sim.run_round();
    })
}

/// Criterion-lite `bench_local_step`: one client's local round on the CNN
/// (the Appendix-A attach-cost path).
fn local_step_metric(kind: AlgorithmKind) -> u64 {
    let dataset = SyntheticVision::new(DatasetKind::MnistLike, 7);
    let refs: Vec<SampleRef> = (0..50u32)
        .map(|i| SampleRef {
            class: (i % 10) as u16,
            id: i / 10,
        })
        .collect();
    let template = ModelKind::Cnn.build(&[1, 28, 28], 10, 7);
    let global = template.params_flat();
    let alg = kind.build(&HyperParams::default());
    // one network reused across reps, as in production: the executor clones
    // the template once per worker group and reuses it (with its scratch
    // arena warm) for every client, resetting via set_params_flat
    let mut net = template.clone();
    // 15 reps (vs 7 elsewhere): this metric carries the hard absolute
    // budget, and the extra wall-clock coverage lets best-of-reps ride
    // out multi-rep scheduler-noise bursts on shared vCPUs
    time_min(15, || {
        net.set_params_flat(&global);
        let mut state = ClientState {
            last_round: Some(1),
            historical: Some(global.clone()),
            ..ClientState::default()
        };
        let ctx = LocalContext {
            round: 2,
            client_id: 0,
            global: &global,
            gap: Some(1),
            epochs: 1,
            batch_size: 50,
            lr: 0.01,
            momentum: 0.9,
            seed: 7,
        };
        let data = ClientData {
            dataset: &dataset,
            refs: &refs,
        };
        std::hint::black_box(alg.local_train(&mut net, &data, &mut state, &ctx));
    })
}

/// Sustained square-SGEMM throughput at `n`³, in integer MFLOP/s (higher
/// is better — the gate treats `*gflops*` metrics as throughputs).
fn gemm_mflops(n: usize) -> u64 {
    let mut rng = Prng::seed_from_u64(3);
    let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
    let mut c = vec![0.0f32; n * n];
    // a 64^3 GEMM is ~13 us: at that scale min-of-9 still eats timer
    // interrupts, so use many more (still cheap) reps than the ms-scale
    // metrics need
    let ns = time_min(33, || {
        c.fill(0.0);
        sgemm(n, n, n, &a, &b, std::hint::black_box(&mut c));
    });
    let flops = 2.0 * (n * n * n) as f64;
    // flops/ns is GFLOP/s; store ×1000 as integer MFLOP/s
    (flops / ns.max(1) as f64 * 1e3) as u64
}

/// Criterion-lite conv forward: the CNN's stem convolution (1→8 channels,
/// 3×3 pad 1 on 28×28) over a 50-image batch, through the scratch arena.
fn conv_fwd_metric() -> u64 {
    let g = ConvGeom {
        in_c: 1,
        in_h: 28,
        in_w: 28,
        out_c: 8,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = Prng::seed_from_u64(5);
    let mut conv = Conv2d::new(g, &mut rng);
    let x = Tensor::randn(&[50, 1, 28, 28], 1.0, &mut rng);
    let mut scratch = Scratch::new();
    time_min(9, || {
        let xin = scratch.take_copy(&x);
        let y = conv.forward(xin, &mut scratch);
        scratch.give_tensor(std::hint::black_box(y));
    })
}

/// Criterion-lite downlink broadcast encode: one server-side
/// error-feedback step (residual add, Q8 encode, decode, residual
/// update) over a CNN-sized global delta — the per-round server cost the
/// compressed delta-broadcast path adds, paid once per round regardless
/// of cohort size.
fn broadcast_encode_metric() -> u64 {
    let n = ModelKind::Cnn.build(&[1, 28, 28], 10, 7).num_params();
    let mut rng = Prng::seed_from_u64(9);
    let delta: Vec<f32> = (0..n).map(|_| 0.01 * rng.normal()).collect();
    let codec = CompressionKind::Q8.build();
    let mut residual: Option<Vec<f32>> = None;
    // 15 reps, like local_step: sub-ms metric on shared vCPUs
    time_min(15, || {
        let out = error_feedback_step(codec.as_ref(), &delta, &mut residual, true);
        std::hint::black_box(out);
    })
}

/// Re-measure one named gate metric, for retry-on-regression.
fn remeasure(name: &str) -> Option<u64> {
    Some(match name {
        "round_fedavg_ns" => round_metric(AlgorithmKind::FedAvg),
        "round_fedtrip_ns" => round_metric(AlgorithmKind::FedTrip),
        "local_step_fedavg_ns" => local_step_metric(AlgorithmKind::FedAvg),
        "local_step_fedtrip_ns" => local_step_metric(AlgorithmKind::FedTrip),
        "edge_merge_ns" => edge_merge_metric(),
        "scenario_round_ns" => scenario_round_metric(),
        "broadcast_encode_ns" => broadcast_encode_metric(),
        "gemm_gflops_small" => gemm_mflops(64),
        "gemm_gflops_large" => gemm_mflops(256),
        "conv_fwd_ns" => conv_fwd_metric(),
        _ => {
            let n: usize = name
                .strip_prefix("population_round_n")?
                .strip_suffix("_ns")?
                .parse()
                .ok()?;
            measure_population(n, SWEEP_K, POP_ROUNDS, POP_REPS, 2026).min_round_ns
        }
    })
}

fn fail(failures: &mut Vec<String>, msg: String) {
    eprintln!("bench_gate: FAIL: {msg}");
    // surface the failure as a GitHub annotation on the workflow run
    // (stdout is where the runner picks up workflow commands)
    if std::env::var_os("GITHUB_ACTIONS").is_some() {
        println!("::error title=bench_gate::{}", annotation_escape(&msg));
    }
    failures.push(msg);
}

/// Escape a message for a GitHub `::error` workflow-command data field:
/// `%`, `\r`, and `\n` would otherwise terminate or corrupt the command.
fn annotation_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(true) => std::process::ExitCode::SUCCESS,
        Ok(false) => std::process::ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Full gate pass; `Ok(false)` means measured regressions, `Err` an I/O or
/// serialization problem (missing directory, unreadable baseline, …).
fn run() -> Result<bool, String> {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);

    let mut metrics: BTreeMap<String, u64> = BTreeMap::new();
    println!("bench_gate: timing criterion-lite benches ...");
    for kind in [AlgorithmKind::FedAvg, AlgorithmKind::FedTrip] {
        let ns = round_metric(kind);
        println!("  round_{}_ns = {ns}", kind.name().to_lowercase());
        metrics.insert(format!("round_{}_ns", kind.name().to_lowercase()), ns);
    }
    for kind in [AlgorithmKind::FedAvg, AlgorithmKind::FedTrip] {
        let ns = local_step_metric(kind);
        println!("  local_step_{}_ns = {ns}", kind.name().to_lowercase());
        metrics.insert(format!("local_step_{}_ns", kind.name().to_lowercase()), ns);
    }
    let ns = edge_merge_metric();
    println!("  edge_merge_ns = {ns}");
    metrics.insert("edge_merge_ns".into(), ns);
    let ns = scenario_round_metric();
    println!("  scenario_round_ns = {ns}");
    metrics.insert("scenario_round_ns".into(), ns);
    let ns = broadcast_encode_metric();
    println!("  broadcast_encode_ns = {ns}");
    metrics.insert("broadcast_encode_ns".into(), ns);
    for (name, n) in [("gemm_gflops_small", 64usize), ("gemm_gflops_large", 256)] {
        let mflops = gemm_mflops(n);
        println!("  {name} = {mflops} MFLOP/s ({n}^3)");
        metrics.insert(name.into(), mflops);
    }
    let ns = conv_fwd_metric();
    println!("  conv_fwd_ns = {ns}");
    metrics.insert("conv_fwd_ns".into(), ns);

    println!("bench_gate: population smoke (K = {SWEEP_K}, {POP_ROUNDS} rounds) ...");
    let mut population: Vec<PopulationPoint> = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let p = measure_population(n, SWEEP_K, POP_ROUNDS, POP_REPS, 2026);
        println!(
            "  N={:>6}: {:.3} ms/round, {} entries, {} shards",
            p.n_clients,
            p.median_round_ns as f64 / 1e6,
            p.resident_entries,
            p.resident_shards,
        );
        metrics.insert(format!("population_round_n{n}_ns"), p.min_round_ns);
        population.push(p);
    }

    let mut report = BenchReport {
        schema: 1,
        metrics,
        population,
    };

    let mut failures: Vec<String> = Vec::new();

    // hard local-step budget: the tensor-kernel overhaul's absolute floor
    // (retried like the relative gates — the budget must hold at the
    // machine's typical speed, not on its worst scheduler burst)
    if let Some(&ns) = report.metrics.get("local_step_fedavg_ns") {
        let mut best = ns;
        let mut tries = 0;
        while best >= LOCAL_STEP_BUDGET_NS && tries < GATE_RETRIES {
            tries += 1;
            std::thread::sleep(RETRY_PAUSE);
            let again = local_step_metric(AlgorithmKind::FedAvg);
            println!("  local_step_fedavg_ns: budget retry {tries} -> {again}");
            best = best.min(again);
        }
        report.metrics.insert("local_step_fedavg_ns".into(), best);
        if best >= LOCAL_STEP_BUDGET_NS {
            fail(
                &mut failures,
                format!(
                    "local_step_fedavg_ns = {best} exceeds the hard {LOCAL_STEP_BUDGET_NS} ns budget"
                ),
            );
        }
    }

    // hard invariants (machine-independent)
    let bound = POP_ROUNDS * SWEEP_K;
    for p in &report.population {
        if p.resident_entries > bound {
            fail(
                &mut failures,
                format!(
                    "N={}: resident state entries {} exceed rounds×K = {bound}",
                    p.n_clients, p.resident_entries
                ),
            );
        }
        if p.resident_shards > bound {
            fail(
                &mut failures,
                format!(
                    "N={}: resident shards {} exceed rounds×K = {bound}",
                    p.n_clients, p.resident_shards
                ),
            );
        }
    }
    let (Some(first), Some(last)) = (report.population.first(), report.population.last()) else {
        return Err("population sweep produced no points".into());
    };
    let ratio = last.min_round_ns as f64 / first.min_round_ns.max(1) as f64;
    println!(
        "bench_gate: round-time ratio N={} / N={} = {ratio:.2}x",
        last.n_clients, first.n_clients
    );
    if ratio > FLATNESS_FACTOR {
        fail(
            &mut failures,
            format!(
                "population round time is not flat: N={} is {ratio:.2}x N={} (limit {FLATNESS_FACTOR}x)",
                last.n_clients, first.n_clients
            ),
        );
    }

    // regression gate against the committed baseline
    let baseline_path = Path::new(BASELINE);
    if write_baseline {
        if let Some(dir) = baseline_path.parent() {
            fs::create_dir_all(dir)
                .map_err(|e| format!("creating baseline dir {}: {e}", dir.display()))?;
        }
        let body = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serializing baseline: {e}"))?;
        fs::write(baseline_path, body).map_err(|e| format!("writing baseline {BASELINE}: {e}"))?;
        println!("bench_gate: baseline refreshed at {BASELINE}");
    } else if baseline_path.exists() {
        let body = fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {BASELINE}: {e}"))?;
        let baseline: BenchReport =
            serde_json::from_str(&body).map_err(|e| format!("parsing baseline {BASELINE}: {e}"))?;
        for (name, &base_ns) in &baseline.metrics {
            let Some(&now_ns) = report.metrics.get(name) else {
                fail(
                    &mut failures,
                    format!("metric `{name}` missing from this run"),
                );
                continue;
            };
            // throughput metrics gate in the opposite direction: a drop
            // below baseline is the regression
            let higher_is_better = name.contains("gflops");
            let rel_of = |now: u64| {
                if higher_is_better {
                    1.0 - now as f64 / base_ns.max(1) as f64
                } else {
                    now as f64 / base_ns.max(1) as f64 - 1.0
                }
            };
            let mut now_ns = now_ns;
            let mut rel = rel_of(now_ns);
            let mut tries = 0;
            while rel > tolerance && tries < GATE_RETRIES {
                tries += 1;
                std::thread::sleep(RETRY_PAUSE);
                let Some(again) = remeasure(name) else { break };
                println!("  {name}: over tolerance, retry {tries} -> {again}");
                now_ns = if higher_is_better {
                    now_ns.max(again)
                } else {
                    now_ns.min(again)
                };
                rel = rel_of(now_ns);
            }
            report.metrics.insert(name.clone(), now_ns);
            let verdict = if rel > tolerance { "REGRESSED" } else { "ok" };
            let delta = if higher_is_better { -rel } else { rel };
            println!(
                "  {name}: {now_ns} vs baseline {base_ns} ({delta:+.1}%) {verdict}",
                delta = delta * 100.0
            );
            if rel > tolerance {
                fail(
                    &mut failures,
                    format!(
                        "`{name}` regressed {:.1}% (tolerance {:.0}%)",
                        rel * 100.0,
                        tolerance * 100.0
                    ),
                );
            }
        }
    } else {
        fail(
            &mut failures,
            format!("no baseline at {BASELINE}; run with --write-baseline to create it"),
        );
    }

    let artifact = PathBuf::from(ARTIFACT);
    let body =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serializing report: {e}"))?;
    fs::write(&artifact, body)
        .map_err(|e| format!("writing artifact {}: {e}", artifact.display()))?;
    println!("bench_gate: wrote {}", artifact.display());

    if failures.is_empty() {
        println!("bench_gate: PASS");
    } else {
        eprintln!("bench_gate: {} failure(s)", failures.len());
    }
    Ok(failures.is_empty())
}
