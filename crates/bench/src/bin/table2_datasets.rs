//! Table II — dataset statistics.
//!
//! Prints the paper's dataset description table next to the synthetic
//! presets actually used, plus the measured label-flip rate and partition
//! skew sanity numbers that define each preset's difficulty.

use fedtrip_bench::Cli;
use fedtrip_data::partition::{HeterogeneityKind, Partition};
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use fedtrip_metrics::report::{save_json, Table};

fn main() {
    let cli = Cli::parse();
    cli.banner("Table II — description of datasets");

    let mut table = Table::new(
        "Table II (paper values match by construction)",
        &[
            "Dataset",
            "Total",
            "Classes",
            "Channels",
            "Client Samples",
            "flip-rate(meas)",
        ],
    );
    let mut artifacts = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = SyntheticVision::new(kind, cli.seed);
        let spec = *ds.spec();
        // measured flip rate on held-out ids
        let pool = (spec.total_samples / spec.classes) as u32;
        let mut flips = 0usize;
        let mut total = 0usize;
        for c in 0..spec.classes as u16 {
            for i in 0..100u32 {
                if ds.label_of(SampleRef {
                    class: c,
                    id: pool + i,
                }) != c as usize
                {
                    flips += 1;
                }
                total += 1;
            }
        }
        let rate = flips as f64 / total as f64;
        table.row(&[
            kind.name().to_string(),
            spec.total_samples.to_string(),
            spec.classes.to_string(),
            spec.channels.to_string(),
            spec.client_samples.to_string(),
            format!("{rate:.3}"),
        ]);
        artifacts.push((kind.name(), spec, rate));
    }
    println!("{}", table.render());

    // partition snapshot (feeds Fig. 4 too)
    let mnist = DatasetKind::MnistLike.spec();
    let mut skew_table = Table::new(
        "Partition skew (mean TV distance to uniform; 10 clients)",
        &["Regime", "skew", "mean classes/client"],
    );
    for h in [
        HeterogeneityKind::Iid,
        HeterogeneityKind::Dirichlet(0.5),
        HeterogeneityKind::Dirichlet(0.1),
        HeterogeneityKind::Orthogonal(5),
        HeterogeneityKind::Orthogonal(10),
    ] {
        let p = Partition::build(&mnist, h, 10, cli.seed);
        let cpc = p.classes_per_client();
        let mean_cpc = cpc.iter().sum::<usize>() as f64 / cpc.len() as f64;
        skew_table.row(&[
            h.name(),
            format!("{:.3}", p.skew()),
            format!("{mean_cpc:.1}"),
        ]);
    }
    println!("{}", skew_table.render());

    let path = save_json(&cli.results, "table2_datasets", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
