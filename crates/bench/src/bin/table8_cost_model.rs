//! Table VIII (Appendix A) — attaching-operation overhead of every method.
//!
//! This table is fully analytic: it evaluates the Appendix-A formulas on the
//! paper's three model/dataset configurations and reports both the symbolic
//! row and the concrete per-round numbers, including the MOON/FedTrip ratios
//! the paper quotes in §V-B (50x on MLP, 171.4x on CNN, 1336x on AlexNet).

use fedtrip_bench::Cli;
use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::costs::CostModel;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_models::{ModelKind, ModelStats};
use serde_json::json;

fn cost_model(kind: ModelKind, shape: [usize; 3], classes: usize, samples: usize) -> CostModel {
    let net = kind.build(&shape, classes, 0);
    let s = ModelStats::of(&net);
    CostModel {
        n_params: s.params,
        fp_per_sample: s.flops_forward,
        bp_per_sample: s.flops_backward,
        batch_size: 50,
        local_iterations: samples.div_ceil(50),
        local_samples: samples,
    }
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Table VIII — attaching-operation cost model (Appendix A)");

    let symbolic = [
        ("SCAFFOLD", "2(K+1)|w| + n(FP+BP)", "2|w|"),
        ("MimeLite", "n(FP+BP)", "2|w|"),
        ("MOON", "K*M*(1+p)*FP", "0"),
        ("FedProx", "2K|w|", "0"),
        ("FedDyn", "4K|w|", "0"),
        ("FedTrip", "4K|w|", "0"),
    ];
    let mut sym = Table::new(
        "Symbolic rows (paper Table VIII)",
        &["Method", "Computation overhead", "Comm overhead"],
    );
    for (m, c, comm) in symbolic {
        sym.row(&[m.to_string(), c.to_string(), comm.to_string()]);
    }
    println!("{}", sym.render());

    let configs = [
        (
            "MLP/MNIST",
            cost_model(ModelKind::Mlp, [1, 28, 28], 10, 600),
        ),
        (
            "CNN/MNIST",
            cost_model(ModelKind::Cnn, [1, 28, 28], 10, 600),
        ),
        (
            "AlexNet/CIFAR",
            cost_model(ModelKind::AlexNet, [3, 32, 32], 10, 2000),
        ),
    ];
    let hp = HyperParams::default();
    let mut artifacts = Vec::new();
    for (name, m) in &configs {
        let mut t = Table::new(
            format!("{name}: per-client per-round overhead (GFLOPs / comm bytes)"),
            &["Method", "attach GFLOPs", "extra comm MB", "vs FedTrip"],
        );
        let trip = AlgorithmKind::FedTrip.build(&hp).attach_cost(m).flops;
        for kind in AlgorithmKind::ALL {
            let alg = kind.build(&hp);
            let c = alg.attach_cost(m);
            let ratio = if trip > 0.0 { c.flops / trip } else { 0.0 };
            t.row(&[
                kind.name().to_string(),
                format!("{:.4}", c.flops / 1e9),
                format!("{:.2}", c.extra_comm_bytes() as f64 / 1e6),
                format!("{ratio:.1}x"),
            ]);
            artifacts.push(json!({
                "config": name,
                "method": kind.name(),
                "attach_flops": c.flops,
                "extra_comm_bytes": c.extra_comm_bytes(),
                "ratio_vs_fedtrip": ratio,
            }));
        }
        println!("{}", t.render());
    }

    println!(
        "paper §V-B quotes MOON/FedTrip attach ratios: 50x (MLP), 171.4x (CNN), 1336x (AlexNet)"
    );
    let moon_ratios: Vec<f64> = configs
        .iter()
        .map(|(_, m)| {
            AlgorithmKind::Moon.build(&hp).attach_cost(m).flops
                / AlgorithmKind::FedTrip.build(&hp).attach_cost(m).flops
        })
        .collect();
    println!(
        "measured ratios: {:.1}x (MLP), {:.1}x (CNN), {:.1}x (AlexNet)\n",
        moon_ratios[0], moon_ratios[1], moon_ratios[2]
    );

    let path = save_json(&cli.results, "table8_cost_model", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
