//! `scenario` — availability regime × selection strategy × upload codec.
//!
//! The availability layer (`fedtrip_core::runtime::availability`) turns
//! the always-reachable federation of the paper's engine into the one
//! real cross-device deployments see: seed-derived diurnal on/off traces,
//! clients that join mid-federation and leave for good, and synchronous
//! reporting deadlines that drop stragglers. This binary sweeps those
//! regimes against the selection strategies (uniform sampling vs the
//! Oort-style utility-aware ranking) and the upload codecs, and reports
//! the two figures that frame the trade:
//!
//! * **time-to-accuracy** — virtual seconds to an adaptive target (90% of
//!   the always-on / uniform / uncompressed run's final accuracy), the
//!   metric that rewards picking fast, useful clients;
//! * **participation Gini** — inequality of the per-client participation
//!   counts (0 = every client ran equally often, →1 = a few clients did
//!   all the work), the metric that exposes what utility-aware selection
//!   costs in fairness.
//!
//! ```bash
//! cargo run --release -p fedtrip-bench --bin scenario -- \
//!     [--scale smoke|default|paper] [--seed S] [--results DIR]
//! ```
//!
//! All runs share a 4x device-speed spread so the speed half of the Oort
//! score has something to rank. The deadline regime derives its cutoff
//! from the measured always-on round time at the same spread (75% of the
//! mean round), which keeps the dropout rate meaningful at every scale.

use fedtrip_bench::Cli;
use fedtrip_core::compression::CompressionKind;
use fedtrip_core::engine::{RoundRecord, SelectionStrategy, Simulation, SimulationConfig};
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_metrics::{gini, time_to_target};
use serde_json::json;

/// Device-speed spread shared by every cell: wide enough that the speed
/// half of the Oort score ranks clients meaningfully.
const DEVICE_HET: f32 = 4.0;

/// One availability regime of the sweep, applied on top of a base config.
#[derive(Clone, Copy)]
struct Regime {
    name: &'static str,
    period: usize,
    on_fraction: f32,
    join_window: usize,
    residency: usize,
    /// Deadline as a fraction of the measured always-on mean round time
    /// (0 = no deadline).
    deadline_frac: f64,
}

/// The sweep's regimes, sized relative to the run length so the diurnal
/// cycle and the churn window both fit inside the horizon at every scale.
fn regimes(rounds: usize) -> [Regime; 4] {
    let period = (rounds / 2).max(2);
    let window = (rounds / 2).max(1);
    [
        Regime {
            name: "always-on",
            period: 0,
            on_fraction: 0.5,
            join_window: 0,
            residency: 0,
            deadline_frac: 0.0,
        },
        Regime {
            name: "diurnal",
            period,
            on_fraction: 0.5,
            join_window: 0,
            residency: 0,
            deadline_frac: 0.0,
        },
        Regime {
            name: "diurnal+churn",
            period,
            on_fraction: 0.5,
            join_window: window,
            residency: window.max(2),
            deadline_frac: 0.0,
        },
        Regime {
            name: "deadline",
            period: 0,
            on_fraction: 0.5,
            join_window: 0,
            residency: 0,
            deadline_frac: 0.75,
        },
    ]
}

/// (times, accuracies) of the evaluated rounds.
fn series(records: &[RoundRecord]) -> (Vec<f64>, Vec<f64>) {
    records
        .iter()
        .filter_map(|r| r.accuracy.map(|a| (r.virtual_time, a)))
        .unzip()
}

fn cell_config(
    spec: &ExperimentSpec,
    regime: &Regime,
    selection: SelectionStrategy,
    codec: CompressionKind,
    deadline_secs: f32,
) -> SimulationConfig {
    let mut cfg = spec.to_config();
    cfg.device_het = DEVICE_HET;
    cfg.selection = selection;
    cfg.compression = codec;
    cfg.error_feedback = codec != CompressionKind::None;
    cfg.availability_period = regime.period;
    cfg.availability_on_fraction = regime.on_fraction;
    cfg.churn_join_window = regime.join_window;
    cfg.churn_residency = regime.residency;
    cfg.deadline_secs = deadline_secs;
    cfg
}

fn run(cfg: SimulationConfig, spec: &ExperimentSpec) -> Simulation {
    let mut sim = Simulation::new(cfg, spec.algorithm.build(&spec.hyper));
    sim.run();
    sim
}

/// Participation Gini over the whole federation: counts for every client,
/// zeros included for clients that never ran.
fn participation_gini(sim: &Simulation) -> f64 {
    let counts = sim.participation_counts();
    let dense: Vec<f64> = (0..sim.config().n_clients)
        .map(|c| counts.get(&c).copied().unwrap_or(0) as f64)
        .collect();
    gini(&dense)
}

fn fmt_time(t: Option<f64>) -> String {
    t.map(|s| format!("{s:.1}s")).unwrap_or_else(|| "—".into())
}

fn main() {
    let cli = Cli::parse();
    cli.banner("Availability scenarios — regime x selection x codec (4x device spread)");

    let spec = ExperimentSpec::quickstart()
        .with_scale(cli.scale)
        .with_seed(cli.seed);
    let selections = [SelectionStrategy::Uniform, SelectionStrategy::Oort];
    let codecs = [CompressionKind::None, CompressionKind::Q8];

    // calibration run: the always-on / uniform / uncompressed federation
    // sets both the adaptive accuracy target and the deadline cutoff
    let base = run(
        cell_config(
            &spec,
            &regimes(1)[0],
            SelectionStrategy::Uniform,
            CompressionKind::None,
            0.0,
        ),
        &spec,
    );
    let target = 0.90 * base.final_accuracy(5);
    let rounds = base.config().rounds;
    let mean_round_secs = base.virtual_time() / rounds.max(1) as f64;
    println!(
        "adaptive target: {:.1}% accuracy | always-on mean round: {:.1} virtual s\n",
        target * 100.0,
        mean_round_secs
    );

    let mut table = Table::new(
        format!(
            "{} | time to {:.1}% accuracy and participation fairness",
            spec.algorithm.name(),
            target * 100.0
        ),
        &[
            "regime",
            "selection",
            "codec",
            "t-to-target",
            "final acc",
            "gini",
            "clients seen",
        ],
    );
    let mut artifacts = Vec::new();

    for regime in &regimes(rounds) {
        let deadline_secs = (regime.deadline_frac * mean_round_secs) as f32;
        for &selection in &selections {
            for &codec in &codecs {
                let sim = run(
                    cell_config(&spec, regime, selection, codec, deadline_secs),
                    &spec,
                );
                let (ts, accs) = series(sim.records());
                let t = time_to_target(&ts, &accs, target);
                let g = participation_gini(&sim);
                let seen = sim.participation_counts().len();
                table.row(&[
                    regime.name.to_string(),
                    selection.name().to_string(),
                    codec.name(),
                    fmt_time(t),
                    format!("{:.1}%", sim.final_accuracy(5) * 100.0),
                    format!("{g:.3}"),
                    format!("{seen}/{}", sim.config().n_clients),
                ]);
                artifacts.push(json!({
                    "regime": regime.name,
                    "selection": selection.name(),
                    "codec": codec.name(),
                    "deadline_secs": deadline_secs as f64,
                    "target": target,
                    "time_to_target": t,
                    "final_accuracy": sim.final_accuracy(5),
                    "participation_gini": g,
                    "clients_seen": seen,
                }));
            }
        }
    }

    println!("{}", table.render());
    println!("Reading: diurnal and churn shrink each round's eligible pool, so uniform");
    println!("selection slows while Oort's loss x speed ranking recovers most of the");
    println!("lost time — at the price of a higher participation Gini (it concentrates");
    println!("work on the useful-and-fast clients until exploration rotates them out).");
    match save_json(&cli.results, "scenario", &artifacts) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
