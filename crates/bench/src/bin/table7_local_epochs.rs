//! Table VII — influence of the aggregation interval: test accuracy at
//! rounds 10 and 20 when clients train 5 or 10 local epochs per round
//! (CNN on MNIST, Dir-0.5, 4-of-10, FedTrip mu = 0.4).

use fedtrip_bench::cases::METHODS;
use fedtrip_bench::cells::run_or_load;
use fedtrip_bench::Cli;
use fedtrip_core::algorithms::HyperParams;
use fedtrip_core::experiment::ExperimentSpec;
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_metrics::report::{save_json, Table};
use fedtrip_models::ModelKind;
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    cli.banner("Table VII — accuracy at rounds 10/20 with 5 and 10 local epochs");

    // paper values: rows (epochs, round) x methods in METHODS order
    let paper: [((usize, usize), [f64; 6]); 4] = [
        ((5, 10), [96.36, 95.49, 93.08, 84.55, 95.26, 87.93]),
        ((5, 20), [97.18, 96.71, 95.95, 92.88, 96.88, 93.49]),
        ((10, 10), [97.49, 97.38, 95.84, 87.79, 96.99, 93.11]),
        ((10, 20), [97.95, 97.84, 97.25, 95.15, 97.84, 95.93]),
    ];

    let mut artifacts = Vec::new();
    for epochs in [5usize, 10] {
        println!("--- {epochs} local epochs ---");
        let mut t = Table::new(
            format!("{epochs} local epochs (accuracy %)"),
            &["Method", "paper@10", "ours@10", "paper@20", "ours@20"],
        );
        for (i, &alg) in METHODS.iter().enumerate() {
            let spec = ExperimentSpec {
                dataset: DatasetKind::MnistLike,
                model: ModelKind::Cnn,
                heterogeneity: HeterogeneityKind::Dirichlet(0.5),
                n_clients: 10,
                clients_per_round: 4,
                rounds: 20,
                local_epochs: epochs,
                algorithm: alg,
                hyper: HyperParams {
                    fedtrip_mu: 0.4, // §V-E fixes mu = 0.4 for this study
                    ..ExperimentSpec::paper_hyper(DatasetKind::MnistLike, ModelKind::Cnn)
                },
                scale: cli.scale,
                seed: cli.seed,
            };
            let cell = run_or_load(&cli.results, &spec);
            let at10 = cell.accuracy_at(10).unwrap_or(0.0) * 100.0;
            let at20 = cell.accuracy_at(20).unwrap_or(0.0) * 100.0;
            let p10 = paper.iter().find(|(k, _)| *k == (epochs, 10)).unwrap().1[i];
            let p20 = paper.iter().find(|(k, _)| *k == (epochs, 20)).unwrap().1[i];
            t.row(&[
                alg.name().to_string(),
                format!("{p10:.2}"),
                format!("{at10:.2}"),
                format!("{p20:.2}"),
                format!("{at20:.2}"),
            ]);
            artifacts.push(json!({
                "epochs": epochs,
                "method": alg.name(),
                "paper_at10": p10,
                "ours_at10": at10,
                "paper_at20": p20,
                "ours_at20": at20,
            }));
        }
        println!("{}", t.render());
    }

    let path = save_json(&cli.results, "table7_local_epochs", &artifacts).expect("write artifact");
    println!("artifact: {}", path.display());
}
