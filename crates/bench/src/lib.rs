//! # fedtrip-bench
//!
//! Experiment drivers for the paper's evaluation. Each table and figure has
//! a dedicated binary (`table4_comm_rounds`, `fig5_convergence`, ...), and
//! the runtime extensions have their own: `time_to_accuracy` (sync-barrier
//! vs semi-async virtual wall-clock under heterogeneous device profiles),
//! `comm_efficiency` (upload codec × device spread, scored by virtual
//! seconds to an adaptive accuracy target), `population_scale` (round cost
//! and resident state vs federation size, N up to 100k), and `bench_gate`
//! (the CI bench-regression gate over the [`population`] harness); all of
//! them share:
//!
//! * [`Cli`] — a tiny flag parser (`--scale smoke|default|paper`,
//!   `--trials N`, `--seed S`, `--results DIR`),
//! * [`cells`] — a cached cell runner: a *cell* is one
//!   (dataset, model, heterogeneity, participation, method) simulation, and
//!   its round records are cached as JSON under `results/` so that binaries
//!   sharing cells (Table IV and Table V, Fig. 5, ...) never re-run them.
//!
//! Run everything at default scale with:
//!
//! ```bash
//! for b in table2_datasets table3_models table4_comm_rounds table5_gflops \
//!          table6_scalability table7_local_epochs table8_cost_model \
//!          fig2_tsne fig4_partitions fig5_convergence fig6_boxplots \
//!          fig7_mu_sensitivity; do
//!   cargo run --release -p fedtrip-bench --bin $b
//! done
//! ```

#![forbid(unsafe_code)]

pub mod cases;
pub mod cells;
pub mod population;

use fedtrip_core::experiment::Scale;
use std::path::PathBuf;

/// Common command-line options for the experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Execution scale.
    pub scale: Scale,
    /// Repeated trials per cell (paper: 10; default here: 1 for tractable
    /// single-core runtimes — pass `--trials 10` to match the paper).
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Directory for JSON artifacts.
    pub results: PathBuf,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Default,
            trials: 1,
            seed: 2023,
            results: PathBuf::from("results"),
        }
    }
}

impl Cli {
    /// Parse `std::env::args()`. Unknown flags abort with a usage message.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_val = |i: usize| -> &str {
                args.get(i + 1).map(|s| s.as_str()).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    cli.scale = Scale::parse(need_val(i)).unwrap_or_else(|| {
                        eprintln!("bad --scale (want smoke|default|paper)");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--trials" => {
                    cli.trials = need_val(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad --trials");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--seed" => {
                    cli.seed = need_val(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad --seed");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--results" => {
                    cli.results = PathBuf::from(need_val(i));
                    i += 2;
                }
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: --scale smoke|default|paper --trials N --seed S --results DIR"
                    );
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// Human-readable run banner.
    pub fn banner(&self, what: &str) {
        println!(
            "{what}  [scale {:?}, {} trial(s), seed {}]\n",
            self.scale, self.trials, self.seed
        );
    }
}

/// Format an accuracy fraction as the paper's percentage style.
pub fn pct(a: f64) -> String {
    format!("{:.2}", a * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli() {
        let c = Cli::default();
        assert_eq!(c.scale, Scale::Default);
        assert_eq!(c.trials, 1);
        assert_eq!(c.results, PathBuf::from("results"));
    }

    #[test]
    fn pct_formats_two_decimals() {
        assert_eq!(pct(0.8765), "87.65");
        assert_eq!(pct(1.0), "100.00");
    }
}
