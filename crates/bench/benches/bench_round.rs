//! Criterion: one complete federated round (selection, local training of
//! K clients, aggregation, evaluation) per algorithm on the smoke-scale
//! configuration — measures engine overhead beyond raw training compute.

use criterion::{criterion_group, criterion_main, Criterion};
use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use std::hint::black_box;
use std::time::Duration;

fn cfg() -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 10,
        clients_per_round: 4,
        rounds: 1_000_000, // never auto-stops inside the bench loop
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed: 11,
        test_per_class: 10,
        client_samples_override: Some(100),
        eval_every: 1,
        ..SimulationConfig::default()
    }
}

fn bench_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("fl_round_tinymlp_4of10");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in [
        AlgorithmKind::FedAvg,
        AlgorithmKind::FedTrip,
        AlgorithmKind::Moon,
        AlgorithmKind::Scaffold,
    ] {
        g.bench_function(kind.name(), |bench| {
            let mut sim = Simulation::new(cfg(), kind.build(&HyperParams::default()));
            bench.iter(|| {
                black_box(sim.run_round());
            })
        });
    }
    g.finish();
}

criterion_group!(round, bench_rounds);
criterion_main!(round);
