//! Criterion micro-benchmarks for the tensor substrate kernels: SGEMM,
//! convolution lowering (im2col+GEMM vs direct — the ablation DESIGN.md
//! calls out), and the elementwise ops that dominate regularizer cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedtrip_tensor::conv::{conv2d_direct, im2col, ConvGeom};
use fedtrip_tensor::linalg::sgemm;
use fedtrip_tensor::rng::Prng;
use std::hint::black_box;
use std::time::Duration;

fn bench_sgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sgemm");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for &n in &[64usize, 128, 256] {
        let mut rng = Prng::seed_from_u64(1);
        let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let mut out = vec![0.0f32; n * n];
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                sgemm(n, n, n, black_box(&a), black_box(&b), &mut out);
                black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_conv_lowering(c: &mut Criterion) {
    // LeNet conv2 geometry: the hottest convolution in the CNN experiments
    let geom = ConvGeom {
        in_c: 6,
        in_h: 14,
        in_w: 14,
        out_c: 16,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 0,
    };
    let mut rng = Prng::seed_from_u64(2);
    let img: Vec<f32> = (0..geom.in_c * geom.in_h * geom.in_w)
        .map(|_| rng.normal())
        .collect();
    let w: Vec<f32> = (0..geom.out_c * geom.col_rows())
        .map(|_| rng.normal())
        .collect();
    let bias = vec![0.0f32; geom.out_c];

    let mut g = c.benchmark_group("conv2d_lenet_conv2");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("im2col_gemm", |bench| {
        let mut col = vec![0.0f32; geom.col_rows() * geom.col_cols()];
        let mut out = vec![0.0f32; geom.out_c * geom.col_cols()];
        bench.iter(|| {
            im2col(&geom, black_box(&img), &mut col);
            sgemm(
                geom.out_c,
                geom.col_rows(),
                geom.col_cols(),
                &w,
                &col,
                &mut out,
            );
            black_box(&out);
        })
    });
    g.bench_function("direct", |bench| {
        let mut out = vec![0.0f32; geom.out_c * geom.col_cols()];
        bench.iter(|| {
            conv2d_direct(&geom, black_box(&img), &w, &bias, &mut out);
            black_box(&out);
        })
    });
    g.finish();
}

criterion_group!(tensor_ops, bench_sgemm, bench_conv_lowering);
criterion_main!(tensor_ops);
