//! Criterion: partitioner throughput (Dirichlet / orthogonal / IID) and
//! batch synthesis cost of the procedural dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedtrip_data::partition::{HeterogeneityKind, Partition};
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use std::hint::black_box;
use std::time::Duration;

fn bench_partition(c: &mut Criterion) {
    let spec = DatasetKind::MnistLike.spec();
    let mut g = c.benchmark_group("partition_10_clients");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, kind) in [
        ("iid", HeterogeneityKind::Iid),
        ("dir_0.5", HeterogeneityKind::Dirichlet(0.5)),
        ("dir_0.1", HeterogeneityKind::Dirichlet(0.1)),
        ("orthogonal_5", HeterogeneityKind::Orthogonal(5)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &kind, |bench, &k| {
            bench.iter(|| black_box(Partition::build(&spec, k, 10, 3)))
        });
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let ds = SyntheticVision::new(DatasetKind::MnistLike, 5);
    let refs: Vec<SampleRef> = (0..50u32)
        .map(|i| SampleRef {
            class: (i % 10) as u16,
            id: i,
        })
        .collect();
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("batch_50_mnist", |bench| {
        bench.iter(|| black_box(ds.batch(&refs)))
    });
    g.finish();
}

criterion_group!(partition, bench_partition, bench_synthesis);
criterion_main!(partition);
