//! Criterion: t-SNE embedding cost (Fig. 2 tooling) as a function of the
//! number of embedded points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedtrip_metrics::tsne::{Tsne, TsneConfig};
use fedtrip_tensor::rng::Prng;
use std::hint::black_box;
use std::time::Duration;

fn bench_tsne(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsne_embed");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[30usize, 60] {
        let mut rng = Prng::seed_from_u64(9);
        let data: Vec<f32> = (0..n * 16).map(|_| rng.normal()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let t = Tsne::new(TsneConfig {
                perplexity: 8.0,
                iterations: 100,
                ..TsneConfig::default()
            });
            bench.iter(|| black_box(t.embed(&data, 16)))
        });
    }
    g.finish();
}

criterion_group!(tsne, bench_tsne);
criterion_main!(tsne);
