//! Criterion: one local round per algorithm — the experimental counterpart
//! of Appendix A / Table VIII. FedProx/FedTrip/FedDyn should cost barely
//! more than FedAvg; MOON's two extra forward passes should dominate. Also
//! benchmarks the fused triplet kernel against its naive three-pass
//! formulation (the fusion ablation from DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use fedtrip_core::algorithms::{AlgorithmKind, ClientData, ClientState, HyperParams, LocalContext};
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use fedtrip_models::ModelKind;
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::vecops;
use std::hint::black_box;
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let dataset = SyntheticVision::new(DatasetKind::MnistLike, 7);
    let refs: Vec<SampleRef> = (0..50u32)
        .map(|i| SampleRef {
            class: (i % 10) as u16,
            id: i / 10,
        })
        .collect();
    let template = ModelKind::Cnn.build(&[1, 28, 28], 10, 7);
    let global = template.params_flat();
    let hp = HyperParams::default();

    let mut g = c.benchmark_group("local_round_cnn_batch50");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in AlgorithmKind::ALL {
        let alg = kind.build(&hp);
        g.bench_function(kind.name(), |bench| {
            bench.iter(|| {
                let mut net = template.clone();
                net.set_params_flat(&global);
                let mut state = ClientState {
                    last_round: Some(1),
                    historical: Some(global.clone()),
                    ..ClientState::default()
                };
                let ctx = LocalContext {
                    round: 2,
                    client_id: 0,
                    global: &global,
                    gap: Some(1),
                    epochs: 1,
                    batch_size: 50,
                    lr: 0.01,
                    momentum: 0.9,
                    seed: 7,
                };
                let data = ClientData {
                    dataset: &dataset,
                    refs: &refs,
                };
                black_box(alg.local_train(&mut net, &data, &mut state, &ctx));
            })
        });
    }
    g.finish();
}

fn bench_triplet_kernel(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut rng = Prng::seed_from_u64(3);
    let w: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
    let glob: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
    let hist: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
    let grads: Vec<f32> = (0..n).map(|_| rng.normal()).collect();

    let mut g = c.benchmark_group("triplet_adjust_1M_params");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("fused", |bench| {
        bench.iter(|| {
            let mut gbuf = grads.clone();
            vecops::triplet_adjust(&mut gbuf, 0.4, 1.0, &w, &glob, &hist);
            black_box(&gbuf);
        })
    });
    g.bench_function("naive_three_pass", |bench| {
        bench.iter(|| {
            let mut gbuf = grads.clone();
            vecops::triplet_adjust_naive(&mut gbuf, 0.4, 1.0, &w, &glob, &hist);
            black_box(&gbuf);
        })
    });
    g.finish();
}

criterion_group!(local_step, bench_algorithms, bench_triplet_kernel);
criterion_main!(local_step);
