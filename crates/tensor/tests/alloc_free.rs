//! Proof that steady-state training is allocation-free.
//!
//! A counting global allocator tallies every `alloc`/`realloc`. After one
//! warmup epoch (which grows the scratch arena, the ReLU/argmax caches, and
//! the GEMM pack buffers to their steady-state sizes), repeated
//! `zero_grads → train_step → optimizer step` sweeps must not touch the
//! allocator at all.

use fedtrip_tensor::conv::ConvGeom;
use fedtrip_tensor::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::{Optimizer, Sequential, SgdMomentum, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// A small conv net exercising every hot-path layer kind.
fn cnn(rng: &mut Prng) -> Sequential {
    let g = ConvGeom {
        in_c: 1,
        in_h: 12,
        in_w: 12,
        out_c: 4,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    Sequential::new(&[1, 12, 12])
        .with(Conv2d::new(g, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(4, 12, 12, 2))
        .with(Flatten::new())
        .with(Dense::new(4 * 6 * 6, 10, rng))
}

#[test]
fn steady_state_train_steps_do_not_allocate() {
    let mut rng = Prng::seed_from_u64(42);
    let mut net = cnn(&mut rng);
    let mut opt = SgdMomentum::new(0.01, 0.9);

    let batch = 8usize;
    let x = Tensor::randn(&[batch, 1, 12, 12], 1.0, &mut rng);
    let targets: Vec<usize> = (0..batch).map(|i| i % 10).collect();

    // warmup: grows scratch pools, layer caches, thread-local pack buffers,
    // and the optimizer's velocity buffer
    for _ in 0..3 {
        net.zero_grads();
        net.train_step(&x, &targets);
        opt.step(&mut net);
    }

    let before = allocs();
    for _ in 0..10 {
        net.zero_grads();
        net.train_step(&x, &targets);
        opt.step(&mut net);
    }
    let delta = allocs() - before;
    assert_eq!(
        delta, 0,
        "steady-state training performed {delta} heap allocations"
    );
}
