//! Property-based tests for the tensor substrate: algebra laws, GEMM
//! against a naive reference, transpose involution, the im2col/col2im
//! adjoint identity for random geometries, and flat parameter round-trips.

use fedtrip_tensor::conv::{col2im_accum, im2col, ConvGeom};
use fedtrip_tensor::layers::{Dense, Relu};
use fedtrip_tensor::linalg::{matmul, sgemm, sgemm_a_bt, sgemm_at_b, sgemm_at_b_accum, transpose};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::{Scratch, Sequential, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elementwise addition is commutative; subtraction is its inverse.
    #[test]
    fn add_commutes_sub_inverts(
        a in prop::collection::vec(-1e3f32..1e3, 1..64),
        b_seed in 0u64..500,
    ) {
        let n = a.len();
        let mut rng = Prng::seed_from_u64(b_seed);
        let b: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let ta = Tensor::from_vec(a.clone(), &[n]).unwrap();
        let tb = Tensor::from_vec(b, &[n]).unwrap();
        let ab = ta.add(&tb).unwrap();
        let ba = tb.add(&ta).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        let back = ab.sub(&tb).unwrap();
        for (x, y) in back.as_slice().iter().zip(&a) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()));
        }
    }

    /// axpy(alpha) then axpy(-alpha) is the identity.
    #[test]
    fn axpy_inverts(
        a in prop::collection::vec(-100.0f32..100.0, 1..64),
        alpha in -10.0f32..10.0,
        seed in 0u64..100,
    ) {
        let n = a.len();
        let mut rng = Prng::seed_from_u64(seed);
        let x: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let tx = Tensor::from_vec(x, &[n]).unwrap();
        let mut t = Tensor::from_vec(a.clone(), &[n]).unwrap();
        t.axpy(alpha, &tx).unwrap();
        t.axpy(-alpha, &tx).unwrap();
        for (v, orig) in t.as_slice().iter().zip(&a) {
            prop_assert!((v - orig).abs() <= 1e-2 * (1.0 + orig.abs()));
        }
    }

    /// SGEMM against the naive triple loop for random (small) sizes.
    #[test]
    fn sgemm_matches_reference(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0f32; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                prop_assert!((c[i * n + j] - acc).abs() < 1e-3);
            }
        }
    }

    /// Identity matrix is a left unit of matmul.
    #[test]
    fn identity_is_left_unit(n in 1usize..10, cols in 1usize..10, seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let b = Tensor::randn(&[n, cols], 1.0, &mut rng);
        let mut id = Tensor::zeros(&[n, n]);
        for i in 0..n {
            *id.at_mut(&[i, i]) = 1.0;
        }
        let c = matmul(&id, &b).unwrap();
        prop_assert_eq!(c.as_slice(), b.as_slice());
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(m in 1usize..16, n in 1usize..16, seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        prop_assert_eq!(tt, a);
    }

    /// <im2col(x), y> == <x, col2im(y)> for random valid conv geometries —
    /// the adjoint identity the conv backward pass relies on.
    #[test]
    fn im2col_adjoint(
        in_c in 1usize..3,
        hw in 4usize..9,
        k in 1usize..4,
        pad in 0usize..2,
        stride in 1usize..3,
        seed in 0u64..100,
    ) {
        let g = ConvGeom { in_c, in_h: hw, in_w: hw, out_c: 1, k_h: k, k_w: k, stride, pad };
        prop_assume!(g.is_valid());
        let mut rng = Prng::seed_from_u64(seed);
        let x: Vec<f32> = (0..in_c * hw * hw).map(|_| rng.normal()).collect();
        let y: Vec<f32> = (0..g.col_rows() * g.col_cols()).map(|_| rng.normal()).collect();
        let mut cx = vec![0.0f32; y.len()];
        im2col(&g, &x, &mut cx);
        let lhs: f64 = cx.iter().zip(&y).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        let mut aty = vec![0.0f32; x.len()];
        col2im_accum(&g, &y, &mut aty);
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Flat parameter get/set round-trips through a network.
    #[test]
    fn params_flat_round_trip(seed in 0u64..200, shift in -2.0f32..2.0) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut net = Sequential::new(&[6])
            .with(Dense::new(6, 5, &mut rng))
            .with(Relu::new())
            .with(Dense::new(5, 3, &mut rng));
        let mut flat = net.params_flat();
        for v in &mut flat {
            *v += shift;
        }
        net.set_params_flat(&flat);
        prop_assert_eq!(net.params_flat(), flat);
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(xs in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let n = xs.len();
        let mut r = Relu::new();
        let mut s = Scratch::new();
        use fedtrip_tensor::layers::Layer;
        let x = Tensor::from_vec(xs, &[n]).unwrap();
        let once = r.forward(x, &mut s);
        prop_assert!(once.as_slice().iter().all(|&v| v >= 0.0));
        let twice = r.forward(once.clone(), &mut s);
        prop_assert_eq!(once.as_slice(), twice.as_slice());
    }

    /// `sgemm_at_b_accum` (C += A^T B) against the naive reference across
    /// awkward shapes, including the m=1 / n=1 / k=1 degenerate edges and
    /// sizes straddling the register-tile boundaries.
    #[test]
    fn at_b_accum_matches_reference(
        k in 1usize..40,
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..100,
    ) {
        let mut rng = Prng::seed_from_u64(seed);
        let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let init: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
        let mut c = init.clone();
        sgemm_at_b_accum(k, m, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = init[i * n + j];
                for p in 0..k {
                    acc += a[p * m + i] * b[p * n + j];
                }
                prop_assert!((c[i * n + j] - acc).abs() < 1e-2 * (1.0 + acc.abs()));
            }
        }
    }

    /// `sgemm_at_b` (overwrite) equals accumulate-from-zero regardless of
    /// what stale garbage is in C beforehand.
    #[test]
    fn at_b_overwrite_ignores_stale_c(
        k in 1usize..24,
        m in 1usize..24,
        n in 1usize..24,
        seed in 0u64..100,
    ) {
        let mut rng = Prng::seed_from_u64(seed);
        let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut dirty: Vec<f32> = (0..m * n).map(|_| rng.normal() * 1e3).collect();
        sgemm_at_b(k, m, n, &a, &b, &mut dirty);
        let mut clean = vec![0.0f32; m * n];
        sgemm_at_b_accum(k, m, n, &a, &b, &mut clean);
        prop_assert_eq!(dirty, clean);
    }

    /// `sgemm_a_bt` (C = A B^T) against the naive reference across awkward
    /// shapes.
    #[test]
    fn a_bt_matches_reference(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..100,
    ) {
        let mut rng = Prng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
        let mut c: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect(); // stale
        sgemm_a_bt(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                prop_assert!((c[i * n + j] - acc).abs() < 1e-2 * (1.0 + acc.abs()));
            }
        }
    }

    /// A network whose scratch arena was warmed on one batch produces the
    /// same results on the next batch as a completely fresh clone: no stale
    /// state leaks between successive batches or clients.
    #[test]
    fn warm_scratch_matches_fresh_net(seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let template = Sequential::new(&[6])
            .with(Dense::new(6, 5, &mut rng))
            .with(Relu::new())
            .with(Dense::new(5, 3, &mut rng));

        // "client A" warms the arena with a differently-sized batch
        let mut warm = template.clone();
        let xa = Tensor::randn(&[7, 6], 1.0, &mut rng);
        let ta: Vec<usize> = (0..7).map(|i| i % 3).collect();
        warm.zero_grads();
        warm.train_step(&xa, &ta);
        warm.set_params_flat(&template.params_flat()); // reset params, keep arena

        // "client B" on a fresh clone
        let mut fresh = template.clone();
        let xb = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let tb = [0usize, 1, 2, 1];

        warm.zero_grads();
        fresh.zero_grads();
        let lw = warm.train_step(&xb, &tb);
        let lf = fresh.train_step(&xb, &tb);
        prop_assert_eq!(lw, lf);
        prop_assert_eq!(warm.grads_flat(), fresh.grads_flat());
    }
}
