//! Low-level compression kernels: affine integer quantization and top-k
//! magnitude selection.
//!
//! These are the O(|w|) building blocks the federated communication codecs
//! (`fedtrip_core::compression`) are assembled from, written in the same
//! single-sweep style as [`crate::vecops`]: one pass to find the value
//! range, one pass to quantize, one pass to reconstruct. Everything here is
//! deterministic — ties in the top-k selection break by index — so codecs
//! built on these kernels keep simulations bit-reproducible.
//!
//! ```
//! use fedtrip_tensor::compress::{dequantize_affine, quantize_affine};
//!
//! let x = [-1.0f32, 0.0, 0.5, 1.0];
//! let (min, scale, codes) = quantize_affine(&x, 255);
//! let back = dequantize_affine(&codes, min, scale);
//! for (orig, rec) in x.iter().zip(&back) {
//!     assert!((orig - rec).abs() <= scale / 2.0 + 1e-6);
//! }
//! ```

/// Minimum and maximum of a slice in one sweep. Empty input yields
/// `(0.0, 0.0)`.
pub fn minmax(x: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in x {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

/// Per-tensor affine quantization of `x` onto `levels + 1` integer codes
/// (`levels` is the largest code: 255 for 8-bit, 15 for 4-bit).
///
/// Returns `(min, scale, codes)` with `code = round((v - min) / scale)`
/// clamped to `0..=levels`, so reconstruction is `min + code * scale` and
/// the per-element error is bounded by `scale / 2`. A constant input
/// (`max == min`) yields `scale == 0` and all-zero codes.
///
/// # Panics
/// Panics when `levels` is zero or exceeds 255 (codes are one byte each).
pub fn quantize_affine(x: &[f32], levels: u32) -> (f32, f32, Vec<u8>) {
    assert!(
        (1..=255).contains(&levels),
        "levels must be in 1..=255, got {levels}"
    );
    let (min, max) = minmax(x);
    let scale = (max - min) / levels as f32;
    if scale <= 0.0 {
        return (min, 0.0, vec![0u8; x.len()]);
    }
    let inv = 1.0 / scale;
    let codes = x
        .iter()
        .map(|&v| {
            let q = ((v - min) * inv).round();
            q.clamp(0.0, levels as f32) as u8
        })
        .collect();
    (min, scale, codes)
}

/// Reconstruct the values behind [`quantize_affine`] codes:
/// `v = min + code * scale`.
pub fn dequantize_affine(codes: &[u8], min: f32, scale: f32) -> Vec<f32> {
    codes.iter().map(|&c| min + c as f32 * scale).collect()
}

/// Pack 4-bit codes (each `<= 15`) two per byte, low nibble first. The last
/// byte of an odd-length input carries a single code in its low nibble.
///
/// # Panics
/// Debug-asserts every code fits in 4 bits.
pub fn pack_nibbles(codes: &[u8]) -> Vec<u8> {
    let mut packed = Vec::with_capacity(codes.len().div_ceil(2));
    for pair in codes.chunks(2) {
        debug_assert!(pair.iter().all(|&c| c <= 0xF), "code exceeds 4 bits");
        let lo = pair[0] & 0xF;
        let hi = pair.get(1).map(|&c| c & 0xF).unwrap_or(0);
        packed.push(lo | (hi << 4));
    }
    packed
}

/// Inverse of [`pack_nibbles`]: expand `n` 4-bit codes out of packed bytes.
///
/// # Panics
/// Panics when `packed` is shorter than `ceil(n / 2)` bytes.
pub fn unpack_nibbles(packed: &[u8], n: usize) -> Vec<u8> {
    assert!(
        packed.len() >= n.div_ceil(2),
        "packed nibble buffer too short: {} bytes for {} codes",
        packed.len(),
        n
    );
    let mut codes = Vec::with_capacity(n);
    for i in 0..n {
        let byte = packed[i / 2];
        codes.push(if i % 2 == 0 { byte & 0xF } else { byte >> 4 });
    }
    codes
}

/// Indices of the `k` largest-magnitude entries of `x`, in ascending index
/// order. Ties in magnitude break toward the lower index, so the selection
/// is a deterministic function of the input. `k >= x.len()` selects
/// everything.
pub fn top_k_indices(x: &[f32], k: usize) -> Vec<u32> {
    let n = x.len();
    if k >= n {
        return (0..n as u32).collect();
    }
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    // descending magnitude, ascending index on ties: a total order, so the
    // partial selection is unique regardless of the partition's internals
    idx.select_nth_unstable_by_key(k - 1, |&i| {
        let m = x[i as usize].abs();
        (std::cmp::Reverse(ordered(m)), i)
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Total order for non-NaN f32 magnitudes (magnitudes are `>= 0`, so the
/// IEEE bit pattern is already monotone).
fn ordered(m: f32) -> u32 {
    debug_assert!(!m.is_nan(), "NaN magnitude in top-k selection");
    m.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_basic_and_empty() {
        assert_eq!(minmax(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
        assert_eq!(minmax(&[]), (0.0, 0.0));
        assert_eq!(minmax(&[5.0]), (5.0, 5.0));
    }

    #[test]
    fn quantize_roundtrip_error_is_half_step() {
        let x: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        for levels in [255u32, 15] {
            let (min, scale, codes) = quantize_affine(&x, levels);
            let back = dequantize_affine(&codes, min, scale);
            for (orig, rec) in x.iter().zip(&back) {
                assert!(
                    (orig - rec).abs() <= scale / 2.0 + 1e-6,
                    "levels {levels}: {orig} vs {rec} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn quantize_endpoints_are_exact() {
        let x = [-2.0f32, 0.3, 2.0];
        let (min, scale, codes) = quantize_affine(&x, 255);
        assert_eq!(codes[0], 0);
        assert_eq!(codes[2], 255);
        let back = dequantize_affine(&codes, min, scale);
        assert!((back[0] + 2.0).abs() < 1e-6);
        assert!((back[2] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn quantize_constant_input() {
        let x = [1.5f32; 8];
        let (min, scale, codes) = quantize_affine(&x, 255);
        assert_eq!(min, 1.5);
        assert_eq!(scale, 0.0);
        assert!(codes.iter().all(|&c| c == 0));
        assert_eq!(dequantize_affine(&codes, min, scale), vec![1.5f32; 8]);
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn quantize_rejects_zero_levels() {
        let _ = quantize_affine(&[1.0], 0);
    }

    #[test]
    fn nibble_pack_roundtrip() {
        for n in 0..9usize {
            let codes: Vec<u8> = (0..n as u8).map(|i| i & 0xF).collect();
            let packed = pack_nibbles(&codes);
            assert_eq!(packed.len(), n.div_ceil(2));
            assert_eq!(unpack_nibbles(&packed, n), codes);
        }
    }

    #[test]
    fn top_k_picks_largest_magnitudes() {
        let x = [0.1f32, -5.0, 2.0, -0.5, 4.0, 0.0];
        assert_eq!(top_k_indices(&x, 2), vec![1, 4]);
        assert_eq!(top_k_indices(&x, 3), vec![1, 2, 4]);
        assert_eq!(top_k_indices(&x, 10), vec![0, 1, 2, 3, 4, 5]);
        assert!(top_k_indices(&x, 0).is_empty());
    }

    #[test]
    fn top_k_ties_break_by_index() {
        let x = [1.0f32, -1.0, 1.0, -1.0];
        assert_eq!(top_k_indices(&x, 2), vec![0, 1]);
        assert_eq!(top_k_indices(&x, 3), vec![0, 1, 2]);
    }

    #[test]
    fn top_k_is_deterministic() {
        let x: Vec<f32> = (0..512).map(|i| ((i * 37) % 97) as f32 - 48.0).collect();
        let a = top_k_indices(&x, 50);
        let b = top_k_indices(&x, 50);
        assert_eq!(a, b);
        // selected magnitudes dominate unselected ones
        let min_sel = a
            .iter()
            .map(|&i| x[i as usize].abs())
            .fold(f32::INFINITY, f32::min);
        let max_unsel = (0..512u32)
            .filter(|i| !a.contains(i))
            .map(|i| x[i as usize].abs())
            .fold(0.0f32, f32::max);
        assert!(min_sel >= max_unsel, "{min_sel} < {max_unsel}");
    }
}
