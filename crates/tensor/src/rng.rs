//! Deterministic, splittable randomness.
//!
//! Federated simulations need reproducibility across *parallel* client
//! training: the engine derives one [`Prng`] per (seed, round, client) via
//! [`Prng::derive`], so rayon scheduling order can never change results.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic pseudo-random number generator used across the workspace.
///
/// Wraps [`StdRng`] (a cryptographically seeded, platform-independent PRNG)
/// and adds a Box–Muller normal sampler plus hierarchical stream derivation.
#[derive(Debug, Clone)]
pub struct Prng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Prng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child stream from `(self seed material, tags)`.
    ///
    /// The derivation is a SplitMix64-style hash of the tags mixed with fresh
    /// output from this generator's seed — but crucially it does **not**
    /// advance `self`, so the set of derived streams is independent of
    /// call order.
    pub fn derive(base_seed: u64, tags: &[u64]) -> Self {
        let mut state = base_seed ^ 0x9E37_79B9_7F4A_7C15;
        for &t in tags {
            state = splitmix64(state ^ t.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        }
        Prng::seed_from_u64(splitmix64(state))
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Sample from a Gamma(alpha, 1) distribution (Marsaglia–Tsang for
    /// `alpha >= 1`, boosted for `alpha < 1`). Used by the Dirichlet
    /// partitioner in `fedtrip-data`.
    pub fn gamma(&mut self, alpha: f64) -> f64 {
        if alpha < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}
            let u: f64 = self.uniform() as f64;
            return self.gamma(alpha + 1.0) * u.max(1e-300).powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal() as f64;
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = self.uniform() as f64;
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.max(1e-300).ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (uniform without replacement).
    ///
    /// Runs the partial Fisher–Yates shuffle *sparsely*: instead of
    /// materializing the identity permutation `0..n` (O(n) — prohibitive for
    /// the 10⁵-client federations the population-scale runtime targets),
    /// displaced entries live in a hash map and every untouched position `p`
    /// implicitly holds `p`. The RNG draw sequence (`below(n - i)` for
    /// `i in 0..k`) and the returned sample are identical to the dense
    /// shuffle's, so selection streams never change with population size —
    /// only the cost drops from O(n) to O(k) time and space.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut displaced: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(2 * k);
        let at =
            |m: &std::collections::HashMap<usize, usize>, p: usize| m.get(&p).copied().unwrap_or(p);
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.below(n - i);
            let vi = at(&displaced, i);
            let vj = at(&displaced, j);
            // swap(i, j); position i is final after this iteration because
            // every later swap targets positions > i
            displaced.insert(j, vi);
            out.push(vj);
        }
        out
    }

    /// Raw 64-bit output (escape hatch for hashing-style uses).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_order_independent() {
        let a = Prng::derive(5, &[1, 2]);
        let b = Prng::derive(5, &[1, 2]);
        let c = Prng::derive(5, &[2, 1]);
        let mut a = a;
        let mut b = b;
        let mut c = c;
        assert_eq!(a.next_u64(), b.next_u64());
        // different tag order -> different stream
        assert_ne!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn derive_distinct_tags_distinct_streams() {
        let mut a = Prng::derive(9, &[0, 7]);
        let mut b = Prng::derive(9, &[1, 7]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_alpha() {
        let mut rng = Prng::seed_from_u64(11);
        for &alpha in &[0.1f64, 0.5, 1.0, 3.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| rng.gamma(alpha)).sum::<f64>() / n as f64;
            // Gamma(alpha, 1) has mean alpha.
            assert!(
                (mean - alpha).abs() < 0.08 * alpha.max(0.5),
                "alpha={alpha}, mean={mean}"
            );
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Prng::seed_from_u64(4);
        let s = rng.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
    }

    #[test]
    fn sample_indices_full_population_is_permutation() {
        let mut rng = Prng::seed_from_u64(4);
        let mut s = rng.sample_indices(6, 6);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sparse_sample_matches_dense_partial_fisher_yates() {
        // the sparse emulation must reproduce the dense shuffle exactly:
        // same RNG draws, same output order
        let dense = |rng: &mut Prng, n: usize, k: usize| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.below(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        };
        for seed in 0..20u64 {
            for &(n, k) in &[
                (1usize, 1usize),
                (6, 3),
                (6, 6),
                (50, 4),
                (1000, 7),
                (97, 96),
            ] {
                let mut a = Prng::seed_from_u64(seed);
                let mut b = Prng::seed_from_u64(seed);
                assert_eq!(
                    a.sample_indices(n, k),
                    dense(&mut b, n, k),
                    "seed={seed} n={n} k={k}"
                );
                // both consumed the same number of draws
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn sample_indices_large_population_is_cheap_and_valid() {
        let mut rng = Prng::seed_from_u64(99);
        let s = rng.sample_indices(1_000_000, 8);
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(s.iter().all(|&i| i < 1_000_000));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut rng = Prng::seed_from_u64(4);
        let _ = rng.sample_indices(3, 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from_u64(8);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
