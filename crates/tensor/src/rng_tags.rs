//! Central registry of RNG stream tags.
//!
//! Every [`Prng::derive`](crate::rng::Prng::derive) call site across the
//! workspace names its stream with a *first* tag element drawn from this
//! registry — never an inline literal. Two derive sites that accidentally
//! share a first tag draw **correlated** streams (selection re-using the
//! dispatch stream, a partition re-using the shuffle stream, …), which is
//! exactly the class of bug that silently breaks the golden fixtures
//! without failing any unit test. Centralizing the tags makes collisions
//! impossible to introduce quietly: the [`ALL`] table is asserted
//! pairwise-distinct by a unit test, and `fedtrip-lint`'s `rng-tags` rule
//! (R2) rejects any derive call whose first element is not a named
//! constant as well as any registry collision.
//!
//! The registry lives in `fedtrip-tensor` because [`Prng`](crate::rng::Prng)
//! does and the downstream crates (`fedtrip-data`, `fedtrip-models`) sit
//! below `fedtrip-core` in the dependency graph; `fedtrip-core` re-exports
//! it as `fedtrip_core::rng_tags`, the canonical import for engine-level
//! code.
//!
//! Values are frozen: they are part of the reproducibility contract (the
//! golden fixtures pin the streams they select). Add new tags freely; never
//! renumber an existing one.

/// Round-participant selection stream (`Sampler::select`), `(SELECT, t)`.
pub const SELECT: u64 = 0x005E_1EC7; // "SELECT"
/// Straggler / failure injection stream (`Sampler::apply_failures`),
/// `(FAILURE, t)`.
pub const FAILURE: u64 = 0xFA_11; // "FAIL"
/// Semi-async re-dispatch selection (`Sampler::select_among` /
/// `Sampler::select_idle`), `(DISPATCH, t)` — distinct from [`SELECT`] so
/// redispatch never correlates with the synchronous selection stream.
pub const DISPATCH: u64 = 0xD15_9A7C; // "DISPATCH"
/// Per-client device-profile derivation (`DeviceProfile::derive`),
/// `(DEVICE, client)`.
pub const DEVICE: u64 = 0x0DE_71CE; // "DEVICE"
/// Model parameter initialization (`ModelKind::build`), `(MODEL_INIT,)`.
pub const MODEL_INIT: u64 = 0x4D4F_4445_4C00; // "MODEL\0"
/// Per-epoch mini-batch shuffling (`LocalContext::epoch_rng`),
/// `(EPOCH_SHUFFLE, round, client, epoch)`.
pub const EPOCH_SHUFFLE: u64 = 0xE0;
/// IID partition draw (`Partition`), `(PARTITION_IID, client)`.
pub const PARTITION_IID: u64 = 0x1D;
/// Dirichlet label-skew partition draw, `(PARTITION_DIRICHLET, client)`.
pub const PARTITION_DIRICHLET: u64 = 0xD1;
/// Orthogonal-cluster partition draw, `(PARTITION_ORTHOGONAL, client)`.
pub const PARTITION_ORTHOGONAL: u64 = 0x0A;
/// Synthetic-dataset class prototype blobs, `(SYNTH_PROTO, class, channel)`.
pub const SYNTH_PROTO: u64 = 0x50_52_4F_54; // "PROT"
/// Synthetic-dataset per-channel base texture, `(SYNTH_BASE, channel)`.
pub const SYNTH_BASE: u64 = 0x42_41_53_45; // "BASE"
/// Synthetic-dataset per-sample pixels, `(SYNTH_SAMPLE, class, id)`.
pub const SYNTH_SAMPLE: u64 = 0x53_41_4D_50; // "SAMP"
/// Label-flip sub-stream discriminator — the *fourth* tag element of
/// `label_of`'s `(SYNTH_SAMPLE, class, id, SYNTH_LABEL_FLIP)` derivation,
/// registered so its value can never collide into a first-position tag.
pub const SYNTH_LABEL_FLIP: u64 = 0xF11B; // "FLIP"
/// Dropout mask stream (`layers::Dropout`), `(DROPOUT,)`.
pub const DROPOUT: u64 = 0xD0_D0;
/// t-SNE embedding initialization (`fig2_tsne`), `(TSNE_INIT, client)`.
pub const TSNE_INIT: u64 = 0xF1_62;
/// Per-client availability trace derivation (`AvailabilityModel`),
/// `(AVAIL, client)` — diurnal phase offsets.
pub const AVAIL: u64 = 0x41_56_41_49; // "AVAI"
/// Per-client churn epoch derivation (`AvailabilityModel`),
/// `(CHURN, client)` — join round and residency lifetime.
pub const CHURN: u64 = 0x43_48_52_4E; // "CHRN"
/// Utility-aware (Oort-style) selection stream
/// (`Sampler::select_with`), `(OORT, t)` — exploration draws on top of
/// the deterministic exploitation ranking.
pub const OORT: u64 = 0x4F_4F_52_54; // "OORT"
/// All-failed survivor election (`Sampler::apply_failures`),
/// `(SURVIVOR, t)` — decoupled from [`FAILURE`] so the survivor choice
/// does not depend on how many coin flips the failure filter consumed.
pub const SURVIVOR: u64 = 0x53_55_52_56; // "SURV"

/// Every registered tag, by name — the table the distinctness test and
/// external auditors (e.g. `lint_gate`'s JSON report) walk.
pub const ALL: &[(&str, u64)] = &[
    ("SELECT", SELECT),
    ("FAILURE", FAILURE),
    ("DISPATCH", DISPATCH),
    ("DEVICE", DEVICE),
    ("MODEL_INIT", MODEL_INIT),
    ("EPOCH_SHUFFLE", EPOCH_SHUFFLE),
    ("PARTITION_IID", PARTITION_IID),
    ("PARTITION_DIRICHLET", PARTITION_DIRICHLET),
    ("PARTITION_ORTHOGONAL", PARTITION_ORTHOGONAL),
    ("SYNTH_PROTO", SYNTH_PROTO),
    ("SYNTH_BASE", SYNTH_BASE),
    ("SYNTH_SAMPLE", SYNTH_SAMPLE),
    ("SYNTH_LABEL_FLIP", SYNTH_LABEL_FLIP),
    ("DROPOUT", DROPOUT),
    ("TSNE_INIT", TSNE_INIT),
    ("AVAIL", AVAIL),
    ("CHURN", CHURN),
    ("OORT", OORT),
    ("SURVIVOR", SURVIVOR),
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn registry_values_are_pairwise_distinct() {
        for (i, &(name_a, a)) in ALL.iter().enumerate() {
            for &(name_b, b) in &ALL[i + 1..] {
                assert_ne!(
                    a, b,
                    "RNG tags {name_a} and {name_b} collide on {a:#x}: \
                     their derived streams would be correlated"
                );
            }
        }
    }

    #[test]
    fn table_covers_every_constant() {
        // the table drives the distinctness check, so a constant missing
        // from it silently escapes auditing; pin the count
        assert_eq!(ALL.len(), 19);
    }
}
