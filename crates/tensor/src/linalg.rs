//! Dense linear algebra kernels.
//!
//! The workhorse is a packed, register-tiled GEMM in the BLIS style: `B` is
//! packed into contiguous `KC x NR` panels (reused across every row panel of
//! `A`), `A` into `KC x MR` panels, and an `MR x NR` micro-kernel keeps the
//! accumulator tile in locals so LLVM maps it onto SIMD registers. All dense
//! and convolution layers (via im2col) reduce to these kernels, so their
//! throughput dominates simulated training time.
//!
//! **Bit-exactness contract.** For every output element the contributions
//! `a[i][kk] * b[kk][j]` are added in strictly increasing `kk` order: the
//! `KC` blocks advance in order and the micro-kernel reloads `C` into its
//! accumulators between blocks, so the f32 addition chain is exactly the
//! chain the pre-tiled saxpy kernel produced. Cache blocking (`MC`/`NC`),
//! panel packing, lane padding, and the AVX2 vs portable instantiation all
//! only change *which output elements* are computed together, never the
//! per-element order, so results are bit-identical across shapes and
//! hardware paths (the PR-2/PR-3 golden fixtures pin this).
//!
//! The first `KC` block initializes the accumulators to zero and stores over
//! `C`, which is what gives [`sgemm`] its beta-free overwrite contract — no
//! separate `c.fill(0.0)` pass (and no redundant zeroing in [`matmul`]).
//! The old kernel's `aik == 0.0` skip branch is gone: with accumulators
//! seeded from `+0.0`, `x + (+/-0.0 * b)` is bit-identical to skipping the
//! term for all finite data, and a branch in the inner loop defeats
//! vectorization on the dense matrices this workspace actually multiplies
//! (the bench `gemm_gflops_*` metrics in `bench_gate` quantify the win).

use crate::tensor::Tensor;
use crate::{Result, TensorError};
use std::cell::RefCell;

/// Micro-tile for the portable (SSE2-autovectorized) instantiation: a 4x8
/// register tile, eight XMM accumulators. `MC` must be a multiple of every
/// instantiation's MR.
const MR_PORTABLE: usize = 4;
const NR_PORTABLE: usize = 8;
/// Micro-tile for the AVX2 instantiation: a 4x16 register tile (two YMM
/// vectors per accumulator row, 8 YMM accumulators + broadcast + B row).
#[cfg(target_arch = "x86_64")]
const MR_AVX2: usize = 4;
#[cfg(target_arch = "x86_64")]
const NR_AVX2: usize = 16;
/// Micro-tile for the AVX-512 instantiation. Empirically 4x16 beats taller
/// (6x16/8x16 spill: LLVM keeps 256-bit vectors by default under avx512f,
/// so each row costs two registers) and wider (4x32 wins ~5% on big square
/// GEMM but loses ~15% on the CNN layer shapes to column padding).
#[cfg(target_arch = "x86_64")]
const MR_AVX512: usize = 4;
#[cfg(target_arch = "x86_64")]
const NR_AVX512: usize = 16;
/// Cache-block height of an `A` block (rows of `C` per packed `A` panel set);
/// `MC x KC` floats stay resident in L2.
const MC: usize = 128;
/// Cache-block depth. Any value preserves bit-identity (the micro-kernel
/// reloads `C` between blocks); 256 keeps a `KC x NR` `B` panel plus the
/// `KC x MR` `A` panel comfortably in L1.
const KC: usize = 256;
/// Cache-block width of a packed `B` block.
const NC: usize = 1024;
/// Below this many columns (with enough rows to win) the kernel runs in the
/// swapped orientation, register-tiling over `m` instead of `n`, so
/// GEMV-shaped calls (e.g. the 1x1-output conv lowering with `n = 1`) still
/// vectorize.
const NARROW_N: usize = 4;

thread_local! {
    /// Per-thread packing scratch (`A` panels, `B` panels), grown on first
    /// use and reused by every subsequent GEMM on the thread — steady-state
    /// multiplies allocate nothing.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[inline(always)]
fn ensure_len(v: &mut Vec<f32>, len: usize) {
    if v.len() < len {
        v.resize(len, 0.0);
    }
}

/// Pack one cache block into `W`-lane panels.
///
/// The packed layout is panel-major: panel `p` holds lanes
/// `[x0 + p*W, x0 + p*W + W)` as `kb` consecutive `W`-wide rows, i.e.
/// `dst[p*kb*W + kk*W + lane] = M[k0 + kk][x0 + p*W + lane]`, zero-padding
/// lanes past `x0 + xb`. The logical matrix element `M[k][x]` lives at
/// `src[k*ld + x]` when `k_major`, else at `src[x*ld + k]` — one packer
/// covers plain, transposed-`A`, and transposed-`B` operands.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pack_block<const W: usize>(
    dst: &mut [f32],
    src: &[f32],
    ld: usize,
    k_major: bool,
    k0: usize,
    kb: usize,
    x0: usize,
    xb: usize,
) {
    let panels = xb.div_ceil(W);
    for p in 0..panels {
        let x_start = x0 + p * W;
        let lanes = W.min(x0 + xb - x_start);
        let panel = &mut dst[p * kb * W..(p + 1) * kb * W];
        if k_major {
            for kk in 0..kb {
                let row = &src[(k0 + kk) * ld + x_start..(k0 + kk) * ld + x_start + lanes];
                let d = &mut panel[kk * W..(kk + 1) * W];
                d[..lanes].copy_from_slice(row);
                d[lanes..].fill(0.0);
            }
        } else {
            for lane in 0..W {
                if lane < lanes {
                    let col = &src[(x_start + lane) * ld + k0..(x_start + lane) * ld + k0 + kb];
                    for (kk, &v) in col.iter().enumerate() {
                        panel[kk * W + lane] = v;
                    }
                } else {
                    for kk in 0..kb {
                        panel[kk * W + lane] = 0.0;
                    }
                }
            }
        }
    }
}

/// `MR x NR` register-tiled micro-kernel over one `kb`-deep panel pair.
///
/// The accumulator tile lives in locals; `load_c` pulls the current `C`
/// values in first (used for accumulate semantics and for every `KC` block
/// after the first, preserving the sequential per-element addition chain).
/// Only the `mb x nb` valid corner is stored back, so lane padding in the
/// packed panels never leaks.
///
/// The `B` operand is addressed as `bp[b_off + kk * b_rs ..][..NR_]`: packed
/// panels pass `(0, NR_)`; the pack-free direct path passes the source
/// matrix with its own row stride (identical values read in the identical
/// order, so both paths produce bit-identical results).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn microkernel<const MR_: usize, const NR_: usize>(
    kb: usize,
    ap: &[f32],
    bp: &[f32],
    b_off: usize,
    b_rs: usize,
    c: &mut [f32],
    off: usize,
    c_rs: usize,
    c_cs: usize,
    mb: usize,
    nb: usize,
    load_c: bool,
) {
    let mut acc = [[0.0f32; NR_]; MR_];
    if load_c {
        if mb == MR_ && nb == NR_ && c_cs == 1 {
            for (i, row) in acc.iter_mut().enumerate() {
                row.copy_from_slice(&c[off + i * c_rs..off + i * c_rs + NR_]);
            }
        } else {
            for (i, row) in acc.iter_mut().enumerate().take(mb) {
                for (j, v) in row.iter_mut().enumerate().take(nb) {
                    *v = c[off + i * c_rs + j * c_cs];
                }
            }
        }
    }
    for kk in 0..kb {
        let ar = &ap[kk * MR_..(kk + 1) * MR_];
        let br = &bp[b_off + kk * b_rs..b_off + kk * b_rs + NR_];
        for (i, row) in acc.iter_mut().enumerate() {
            let av = ar[i];
            for (j, v) in row.iter_mut().enumerate() {
                *v += av * br[j];
            }
        }
    }
    if mb == MR_ && nb == NR_ && c_cs == 1 {
        for (i, row) in acc.iter().enumerate() {
            c[off + i * c_rs..off + i * c_rs + NR_].copy_from_slice(row);
        }
    } else {
        for (i, row) in acc.iter().enumerate().take(mb) {
            for (j, &v) in row.iter().enumerate().take(nb) {
                c[off + i * c_rs + j * c_cs] = v;
            }
        }
    }
}

/// Packed, cache-blocked GEMM driver: `C (+)= A_logical * B_logical` where
/// `A_logical` is `m x k` with element `(i, kk)` at `a[kk*a_ld + i]`
/// (`a_k_major`) or `a[i*a_ld + kk]`, `B_logical` is `k x n` with element
/// `(kk, j)` at `b[kk*b_ld + j]` (`b_k_major`) or `b[j*b_ld + kk]`, and
/// `C[i][j]` lives at `c[i*c_rs + j*c_cs]`. One driver therefore covers all
/// of `A*B`, `A^T*B`, `A*B^T`, and their column-swapped (narrow-`n`)
/// orientations.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_driver<const MR_: usize, const NR_: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_ld: usize,
    a_k_major: bool,
    b: &[f32],
    b_ld: usize,
    b_k_major: bool,
    c: &mut [f32],
    c_rs: usize,
    c_cs: usize,
    accumulate: bool,
    apack: &mut Vec<f32>,
    bpack: &mut Vec<f32>,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            for i in 0..m {
                for j in 0..n {
                    c[i * c_rs + j * c_cs] = 0.0;
                }
            }
        }
        return;
    }
    // B panels are consumed once per `ic` block. When B is already k-major
    // and there are at most two `ic` blocks, packing B (a write + re-read of
    // the whole operand) costs more than reading the source directly — the
    // kb x NR_ working set a direct tile touches is at most 16 KiB, still
    // L1-resident. The skinny batched conv lowerings (m = 6..120, k <= 400)
    // all take this path; big square GEMMs keep the packed route.
    let b_direct = b_k_major && m <= 2 * MC;
    for jc in (0..n).step_by(NC) {
        let nb_c = NC.min(n - jc);
        let nb_round = nb_c.div_ceil(NR_) * NR_;
        for (kci, kc) in (0..k).step_by(KC).enumerate() {
            let kb = KC.min(k - kc);
            if !b_direct {
                ensure_len(bpack, kb * nb_round);
                pack_block::<NR_>(bpack, b, b_ld, b_k_major, kc, kb, jc, nb_c);
            }
            let load_c = accumulate || kci > 0;
            for ic in (0..m).step_by(MC) {
                let mb_c = MC.min(m - ic);
                let mb_round = mb_c.div_ceil(MR_) * MR_;
                ensure_len(apack, kb * mb_round);
                pack_block::<MR_>(apack, a, a_ld, a_k_major, kc, kb, ic, mb_c);
                for jr in (0..nb_c).step_by(NR_) {
                    let nb = NR_.min(nb_c - jr);
                    // resolve this column tile's B source: packed panel,
                    // direct view into `b`, or (ragged direct edge) a
                    // just-in-time packed single panel
                    let (bp, b_off, b_rs): (&[f32], usize, usize) = if b_direct {
                        if nb == NR_ {
                            (b, kc * b_ld + jc + jr, b_ld)
                        } else {
                            ensure_len(bpack, kb * NR_);
                            pack_block::<NR_>(bpack, b, b_ld, true, kc, kb, jc + jr, nb);
                            (bpack, 0, NR_)
                        }
                    } else {
                        (
                            &bpack[(jr / NR_) * kb * NR_..(jr / NR_ + 1) * kb * NR_],
                            0,
                            NR_,
                        )
                    };
                    for ir in (0..mb_c).step_by(MR_) {
                        let mb = MR_.min(mb_c - ir);
                        let ap = &apack[(ir / MR_) * kb * MR_..(ir / MR_ + 1) * kb * MR_];
                        let off = (ic + ir) * c_rs + (jc + jr) * c_cs;
                        microkernel::<MR_, NR_>(
                            kb, ap, bp, b_off, b_rs, c, off, c_rs, c_cs, mb, nb, load_c,
                        );
                    }
                }
            }
        }
    }
}

/// AVX-512 instantiation of the driver (4x16 register tile). The generic
/// body is `#[inline(always)]`, so it is
/// recompiled here with AVX-512 codegen; the arithmetic is identical
/// strict-IEEE mul-then-add (rustc never contracts to FMA), so results
/// match the other instantiations bit for bit.
///
/// # Safety
/// Caller must have verified AVX-512F support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_driver_avx512(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_ld: usize,
    a_k_major: bool,
    b: &[f32],
    b_ld: usize,
    b_k_major: bool,
    c: &mut [f32],
    c_rs: usize,
    c_cs: usize,
    accumulate: bool,
    apack: &mut Vec<f32>,
    bpack: &mut Vec<f32>,
) {
    gemm_driver::<MR_AVX512, NR_AVX512>(
        m, k, n, a, a_ld, a_k_major, b, b_ld, b_k_major, c, c_rs, c_cs, accumulate, apack, bpack,
    );
}

/// AVX2 instantiation of the driver (4x16 register tile). The generic body
/// is `#[inline(always)]`, so it is recompiled here with AVX2 codegen; the
/// arithmetic is identical strict-IEEE mul-then-add, so results match the
/// portable path bit for bit.
///
/// # Safety
/// Caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_driver_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_ld: usize,
    a_k_major: bool,
    b: &[f32],
    b_ld: usize,
    b_k_major: bool,
    c: &mut [f32],
    c_rs: usize,
    c_cs: usize,
    accumulate: bool,
    apack: &mut Vec<f32>,
    bpack: &mut Vec<f32>,
) {
    gemm_driver::<MR_AVX2, NR_AVX2>(
        m, k, n, a, a_ld, a_k_major, b, b_ld, b_k_major, c, c_rs, c_cs, accumulate, apack, bpack,
    );
}

/// Dispatch one logical GEMM through the per-thread pack buffers and the
/// best available instruction set.
#[allow(clippy::too_many_arguments)]
fn gemm_dispatch(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_ld: usize,
    a_k_major: bool,
    b: &[f32],
    b_ld: usize,
    b_k_major: bool,
    c: &mut [f32],
    c_rs: usize,
    c_cs: usize,
    accumulate: bool,
) {
    PACK_BUFS.with(|bufs| {
        let (apack, bpack) = &mut *bufs.borrow_mut();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F availability was just checked.
                unsafe {
                    gemm_driver_avx512(
                        m, k, n, a, a_ld, a_k_major, b, b_ld, b_k_major, c, c_rs, c_cs, accumulate,
                        apack, bpack,
                    );
                }
                return;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 availability was just checked.
                unsafe {
                    gemm_driver_avx2(
                        m, k, n, a, a_ld, a_k_major, b, b_ld, b_k_major, c, c_rs, c_cs, accumulate,
                        apack, bpack,
                    );
                }
                return;
            }
        }
        gemm_driver::<MR_PORTABLE, NR_PORTABLE>(
            m, k, n, a, a_ld, a_k_major, b, b_ld, b_k_major, c, c_rs, c_cs, accumulate, apack,
            bpack,
        );
    });
}

/// True when a `m x n` output is column-starved enough that the swapped
/// orientation (register-tiling over `m`) vectorizes better.
#[inline]
fn narrow(m: usize, n: usize) -> bool {
    n < NARROW_N && m >= 2 * NARROW_N
}

/// GEMV fast path for `n == 1` with row-major `A`: `c[i] = dot(A[i], b)`.
///
/// Packing is pure overhead at this shape (the 1x1-output conv lowering
/// hits it 100+ times per local step), so instead run four independent
/// row-dot chains at a time for instruction-level parallelism. Each output
/// element still accumulates in strictly ascending `k` — bit-identical to
/// the packed driver and the pre-tiling kernel.
fn gemv_row_dots(m: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (kk, &bv) in b.iter().enumerate() {
            s0 += a0[kk] * bv;
            s1 += a1[kk] * bv;
            s2 += a2[kk] * bv;
            s3 += a3[kk] * bv;
        }
        c[i] = s0;
        c[i + 1] = s1;
        c[i + 2] = s2;
        c[i + 3] = s3;
        i += 4;
    }
    while i < m {
        let row = &a[i * k..(i + 1) * k];
        let mut s = 0.0f32;
        for (&av, &bv) in row.iter().zip(b) {
            s += av * bv;
        }
        c[i] = s;
        i += 1;
    }
}

/// GEMV fast path for `n == 1` with `k`-major `A` (`A^T * b`): the saxpy
/// orientation `c[i] += a[r*m + i] * b[r]` sweeps unit-stride rows, so it
/// auto-vectorizes while each `c[i]` still accumulates in ascending `r`.
fn gemv_at_b(m: usize, a: &[f32], b: &[f32], c: &mut [f32], accumulate: bool) {
    if !accumulate {
        c.fill(0.0);
    }
    for (r, &bv) in b.iter().enumerate() {
        let a_row = &a[r * m..(r + 1) * m];
        for (cv, &av) in c.iter_mut().zip(a_row) {
            *cv += av * bv;
        }
    }
}

/// `C = A * B` for row-major matrices: `A` is `m x k`, `B` is `k x n`,
/// `C` is `m x n`. `C` is fully overwritten (beta-free contract: the first
/// `KC` block stores, later blocks reload-accumulate).
///
/// # Panics
/// Debug-asserts slice lengths; in release an incorrect length is a logic
/// error upstream (the public [`matmul`] wrapper validates shapes).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "sgemm: A buffer length");
    debug_assert_eq!(b.len(), k * n, "sgemm: B buffer length");
    debug_assert_eq!(c.len(), m * n, "sgemm: C buffer length");
    if n == 1 && k > 0 {
        gemv_row_dots(m, k, a, b, c);
    } else if narrow(m, n) {
        // compute C^T: rows of C^T are columns of C (c_rs = 1, c_cs = n)
        gemm_dispatch(n, k, m, b, n, true, a, k, false, c, 1, n, false);
    } else {
        gemm_dispatch(m, k, n, a, k, false, b, n, true, c, n, 1, false);
    }
}

/// `C += A^T * B` where `A` is `k x m` (so `A^T` is `m x k`), `B` is `k x n`.
///
/// Used by dense-layer weight gradients (`dW = X^T * dY`) without forming the
/// transpose explicitly.
pub fn sgemm_at_b_accum(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 1 {
        gemv_at_b(m, a, b, c, true);
    } else if narrow(m, n) {
        gemm_dispatch(n, k, m, b, n, true, a, m, true, c, 1, n, true);
    } else {
        gemm_dispatch(m, k, n, a, m, true, b, n, true, c, n, 1, true);
    }
}

/// `C = A^T * B` (overwrite variant of [`sgemm_at_b_accum`]) where `A` is
/// `k x m`, `B` is `k x n`.
///
/// Used by the convolution backward pass (`d(col) = W^T * dY`), replacing a
/// `fill(0.0)` + accumulate round trip with the kernel's overwrite contract.
pub fn sgemm_at_b(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 1 {
        gemv_at_b(m, a, b, c, false);
    } else if narrow(m, n) {
        gemm_dispatch(n, k, m, b, n, true, a, m, true, c, 1, n, false);
    } else {
        gemm_dispatch(m, k, n, a, m, true, b, n, true, c, n, 1, false);
    }
}

/// `C = A * B^T` where `A` is `m x k`, `B` is `n x k`, so `C` is `m x n`.
///
/// Used by dense-layer input gradients (`dX = dY * W^T`); `C` is fully
/// overwritten.
pub fn sgemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if n == 1 && k > 0 {
        // B is 1 x k row-major: identical dot shape to `sgemm` with n = 1
        gemv_row_dots(m, k, a, b, c);
    } else if narrow(m, n) {
        gemm_dispatch(n, k, m, b, k, false, a, k, false, c, 1, n, false);
    } else {
        gemm_dispatch(m, k, n, a, k, false, b, k, false, c, n, 1, false);
    }
}

/// Shape-checked matrix multiply over 2-d tensors.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() != 2 || bsh.len() != 2 || ash[1] != bsh[0] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: ash.to_vec(),
            rhs: bsh.to_vec(),
        });
    }
    let (m, k, n) = (ash[0], ash[1], bsh[1]);
    let mut c = Tensor::zeros(&[m, n]);
    sgemm(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
    Ok(c)
}

/// Cache-block edge for the tiled transpose: a 32x32 f32 tile is 4 KiB per
/// side, so source reads and destination writes both stay within a few
/// cache lines per row while the tile is live.
const TRANSPOSE_TILE: usize = 32;

/// Transpose a 2-d tensor (cache-blocked: both the strided reads and the
/// strided writes are confined to one `TRANSPOSE_TILE`-square tile at a
/// time instead of streaming the whole matrix per row).
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let sh = a.shape();
    if sh.len() != 2 {
        return Err(TensorError::InvalidShape(format!(
            "transpose expects 2-d, got {sh:?}"
        )));
    }
    let (m, n) = (sh[0], sh[1]);
    let src = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i0 in (0..m).step_by(TRANSPOSE_TILE) {
        let ib = TRANSPOSE_TILE.min(m - i0);
        for j0 in (0..n).step_by(TRANSPOSE_TILE) {
            let jb = TRANSPOSE_TILE.min(n - j0);
            for i in i0..i0 + ib {
                let row = &src[i * n + j0..i * n + j0 + jb];
                for (j, &v) in row.iter().enumerate() {
                    out[(j0 + j) * m + i] = v;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    // === The pre-tiling kernels, kept verbatim as the bit-exactness ===
    // === reference: the packed kernels must reproduce their output   ===
    // === bit for bit (same per-element k-order).                     ===

    fn reference_sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        c.fill(0.0);
        let block_k = 256;
        let mut k0 = 0;
        while k0 < k {
            let kb = block_k.min(k - k0);
            for i in 0..m {
                let a_row = &a[i * k + k0..i * k + k0 + kb];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
            k0 += kb;
        }
    }

    fn reference_at_b_accum(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for r in 0..k {
            let a_row = &a[r * m..(r + 1) * m];
            let b_row = &b[r * n..(r + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
    }

    fn reference_a_bt(_m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for (i, c_row) in c.chunks_mut(n).enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    }

    /// Random data with exact zeros sprinkled in, so the reference kernels'
    /// `== 0.0` skip branches actually fire during the bitwise comparison.
    fn random_with_zeros(len: usize, rng: &mut Prng) -> Vec<f32> {
        (0..len)
            .map(|_| {
                let v = rng.normal();
                if rng.normal() > 1.0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    /// Shapes that exercise every edge: non-multiples of MR/NR/KC/MC,
    /// unit dimensions, the narrow-`n` swapped orientation, and the exact
    /// GEMM shapes of the workspace's CNN layers.
    const AWKWARD: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (1, 5, 9),
        (5, 1, 3),
        (3, 9, 1),
        (2, 2, 2),
        (4, 8, 8),
        (5, 9, 7),
        (8, 300, 2),
        (13, 17, 19),
        (16, 150, 100),
        (6, 25, 28),
        (120, 400, 1),
        (33, 65, 33),
        (50, 120, 84),
        (129, 257, 31),
    ];

    #[test]
    fn sgemm_bitwise_matches_old_kernel() {
        let mut rng = Prng::seed_from_u64(42);
        for &(m, k, n) in AWKWARD {
            let a = random_with_zeros(m * k, &mut rng);
            let b = random_with_zeros(k * n, &mut rng);
            let mut c_new = vec![f32::NAN; m * n];
            let mut c_old = vec![0.0f32; m * n];
            sgemm(m, k, n, &a, &b, &mut c_new);
            reference_sgemm(m, k, n, &a, &b, &mut c_old);
            assert_eq!(c_new, c_old, "sgemm bit drift at ({m},{k},{n})");
        }
    }

    #[test]
    fn at_b_accum_bitwise_matches_old_kernel() {
        let mut rng = Prng::seed_from_u64(43);
        for &(m, k, n) in AWKWARD {
            let a = random_with_zeros(k * m, &mut rng);
            let b = random_with_zeros(k * n, &mut rng);
            let init: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut c_new = init.clone();
            let mut c_old = init;
            sgemm_at_b_accum(k, m, n, &a, &b, &mut c_new);
            reference_at_b_accum(k, m, n, &a, &b, &mut c_old);
            assert_eq!(c_new, c_old, "at_b_accum bit drift at ({m},{k},{n})");
        }
    }

    #[test]
    fn a_bt_bitwise_matches_old_kernel() {
        let mut rng = Prng::seed_from_u64(44);
        for &(m, k, n) in AWKWARD {
            let a = random_with_zeros(m * k, &mut rng);
            let b = random_with_zeros(n * k, &mut rng);
            let mut c_new = vec![f32::NAN; m * n];
            let mut c_old = vec![0.0f32; m * n];
            sgemm_a_bt(m, k, n, &a, &b, &mut c_new);
            reference_a_bt(m, k, n, &a, &b, &mut c_old);
            assert_eq!(c_new, c_old, "a_bt bit drift at ({m},{k},{n})");
        }
    }

    #[test]
    fn at_b_overwrite_matches_accum_from_zero() {
        let mut rng = Prng::seed_from_u64(45);
        for &(m, k, n) in AWKWARD {
            let a = random_with_zeros(k * m, &mut rng);
            let b = random_with_zeros(k * n, &mut rng);
            let mut c_over = vec![f32::NAN; m * n];
            let mut c_accum = vec![0.0f32; m * n];
            sgemm_at_b(k, m, n, &a, &b, &mut c_over);
            sgemm_at_b_accum(k, m, n, &a, &b, &mut c_accum);
            assert_eq!(c_over, c_accum, "at_b overwrite drift at ({m},{k},{n})");
        }
    }

    #[test]
    fn sgemm_spans_multiple_kc_blocks_bitwise() {
        // k > 2*KC forces the reload-accumulate path across three blocks
        let (m, k, n) = (9, 2 * 256 + 37, 11);
        let mut rng = Prng::seed_from_u64(46);
        let a = random_with_zeros(m * k, &mut rng);
        let b = random_with_zeros(k * n, &mut rng);
        let mut c_new = vec![0.0f32; m * n];
        let mut c_old = vec![0.0f32; m * n];
        sgemm(m, k, n, &a, &b, &mut c_new);
        reference_sgemm(m, k, n, &a, &b, &mut c_old);
        assert_eq!(c_new, c_old);
    }

    #[test]
    fn sgemm_matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|v| v as f32 * 0.5 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|v| (v as f32).sin()).collect();
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive_matmul(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_matches_naive_large() {
        let (m, k, n) = (130, 70, 90);
        let mut rng = Prng::seed_from_u64(5);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive_matmul(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_overwrite_semantics() {
        // C must be fully overwritten, not accumulated into.
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![100.0; 4];
        sgemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn narrow_orientation_overwrites_too() {
        // narrow(m, n) path (n = 1, m large) must honour the same contract
        let (m, k, n) = (64, 3, 1);
        let mut rng = Prng::seed_from_u64(47);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![1e9f32; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive_matmul(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn at_b_accum_matches_explicit_transpose() {
        let (k, m, n) = (6, 3, 4);
        let mut rng = Prng::seed_from_u64(9);
        let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.5f32; m * n];

        // reference: transpose A then naive matmul, plus the 0.5 offset
        let mut at = vec![0.0f32; m * k];
        for r in 0..k {
            for i in 0..m {
                at[i * k + r] = a[r * m + i];
            }
        }
        let mut expect = naive_matmul(m, k, n, &at, &b);
        for e in &mut expect {
            *e += 0.5;
        }

        sgemm_at_b_accum(k, m, n, &a, &b, &mut c);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let (m, k, n) = (4, 5, 3);
        let mut rng = Prng::seed_from_u64(10);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let expect = naive_matmul(m, k, n, &a, &bt);
        let mut c = vec![0.0f32; m * n];
        sgemm_a_bt(m, k, n, &a, &b, &mut c);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tensor_shapes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
        assert!(matmul(&a, &Tensor::zeros(&[3, 2])).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        let back = transpose(&t).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn transpose_blocked_matches_naive_on_ragged_shape() {
        // larger than one tile in both dimensions, not a tile multiple
        let (m, n) = (70, 45);
        let mut rng = Prng::seed_from_u64(48);
        let data: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
        let a = Tensor::from_vec(data.clone(), &[m, n]).unwrap();
        let t = transpose(&a).unwrap();
        for i in 0..m {
            for j in 0..n {
                assert_eq!(t.as_slice()[j * m + i], data[i * n + j]);
            }
        }
    }
}
