//! Dense linear algebra kernels.
//!
//! The workhorse is [`sgemm`], a cache-blocked matrix multiply that
//! parallelizes over row panels with rayon. All dense and convolution layers
//! (via im2col) reduce to this kernel, so its throughput dominates simulated
//! training time.

use crate::tensor::Tensor;
use crate::{Result, TensorError};
use rayon::prelude::*;

/// Row-panel height processed per rayon task. Chosen so a panel of `A` plus
/// the streaming slice of `B` stay comfortably in L2.
const PANEL_M: usize = 64;
/// Inner blocking along `k` to keep the accumulator loop in registers/L1.
const BLOCK_K: usize = 256;
/// Below this many multiply-adds the rayon dispatch overhead outweighs the
/// parallel speedup; run single-threaded instead.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// `C = A * B` for row-major matrices: `A` is `m x k`, `B` is `k x n`,
/// `C` is `m x n`. `C` is fully overwritten.
///
/// # Panics
/// Debug-asserts slice lengths; in release an incorrect length is a logic
/// error upstream (the public [`matmul`] wrapper validates shapes).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "sgemm: A buffer length");
    debug_assert_eq!(b.len(), k * n, "sgemm: B buffer length");
    debug_assert_eq!(c.len(), m * n, "sgemm: C buffer length");

    if m * k * n >= PAR_THRESHOLD && m >= 2 {
        c.par_chunks_mut(PANEL_M * n)
            .enumerate()
            .for_each(|(panel, c_panel)| {
                let row0 = panel * PANEL_M;
                let rows = c_panel.len() / n;
                sgemm_panel(rows, k, n, &a[row0 * k..(row0 + rows) * k], b, c_panel);
            });
    } else {
        sgemm_panel(m, k, n, a, b, c);
    }
}

/// Single-threaded blocked kernel over one row panel.
fn sgemm_panel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    c.fill(0.0);
    let mut k0 = 0;
    while k0 < k {
        let kb = BLOCK_K.min(k - k0);
        for i in 0..m {
            let a_row = &a[i * k + k0..i * k + k0 + kb];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                // The compiler auto-vectorizes this saxpy-style inner loop.
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
        k0 += kb;
    }
}

/// `C += A^T * B` where `A` is `k x m` (so `A^T` is `m x k`), `B` is `k x n`.
///
/// Used by dense-layer weight gradients (`dW = X^T * dY`) without forming the
/// transpose explicitly.
pub fn sgemm_at_b_accum(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Loop order: for each row `r` of A/B pair, scatter the outer product.
    // This keeps both reads streaming.
    for r in 0..k {
        let a_row = &a[r * m..(r + 1) * m];
        let b_row = &b[r * n..(r + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `C = A * B^T` where `A` is `m x k`, `B` is `n x k`, so `C` is `m x n`.
///
/// Used by dense-layer input gradients (`dX = dY * W^T`) — each output row is
/// a set of dot products against the rows of `B`, which are contiguous.
pub fn sgemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv = acc;
        }
    };
    if m * k * n >= PAR_THRESHOLD && m >= 2 {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Shape-checked matrix multiply over 2-d tensors.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() != 2 || bsh.len() != 2 || ash[1] != bsh[0] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: ash.to_vec(),
            rhs: bsh.to_vec(),
        });
    }
    let (m, k, n) = (ash[0], ash[1], bsh[1]);
    let mut c = Tensor::zeros(&[m, n]);
    sgemm(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
    Ok(c)
}

/// Transpose a 2-d tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let sh = a.shape();
    if sh.len() != 2 {
        return Err(TensorError::InvalidShape(format!(
            "transpose expects 2-d, got {sh:?}"
        )));
    }
    let (m, n) = (sh[0], sh[1]);
    let src = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = src[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn sgemm_matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|v| v as f32 * 0.5 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|v| (v as f32).sin()).collect();
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive_matmul(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_matches_naive_large_parallel_path() {
        let (m, k, n) = (130, 70, 90);
        let mut rng = Prng::seed_from_u64(5);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive_matmul(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_overwrite_semantics() {
        // C must be fully overwritten, not accumulated into.
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![100.0; 4];
        sgemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn at_b_accum_matches_explicit_transpose() {
        let (k, m, n) = (6, 3, 4);
        let mut rng = Prng::seed_from_u64(9);
        let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.5f32; m * n];

        // reference: transpose A then naive matmul, plus the 0.5 offset
        let mut at = vec![0.0f32; m * k];
        for r in 0..k {
            for i in 0..m {
                at[i * k + r] = a[r * m + i];
            }
        }
        let mut expect = naive_matmul(m, k, n, &at, &b);
        for e in &mut expect {
            *e += 0.5;
        }

        sgemm_at_b_accum(k, m, n, &a, &b, &mut c);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let (m, k, n) = (4, 5, 3);
        let mut rng = Prng::seed_from_u64(10);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let expect = naive_matmul(m, k, n, &a, &bt);
        let mut c = vec![0.0f32; m * n];
        sgemm_a_bt(m, k, n, &a, &b, &mut c);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tensor_shapes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
        assert!(matmul(&a, &Tensor::zeros(&[3, 2])).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        let back = transpose(&t).unwrap();
        assert_eq!(back, a);
    }
}
