//! im2col / col2im transformations for convolution layers.
//!
//! Convolutions are lowered to SGEMM: for each image, the receptive fields
//! are unrolled into a `[C*KH*KW, OH*OW]` column matrix, multiplied by the
//! `[OC, C*KH*KW]` filter matrix, and the result is the `[OC, OH*OW]` output
//! plane. `col2im` is the adjoint scatter used for input gradients.

/// Geometry of one 2-d convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Rows of the column matrix (`C * KH * KW`).
    #[inline]
    pub fn col_rows(&self) -> usize {
        self.in_c * self.k_h * self.k_w
    }

    /// Columns of the column matrix (`OH * OW`).
    #[inline]
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// True when the geometry is internally consistent (kernel fits).
    pub fn is_valid(&self) -> bool {
        self.in_h + 2 * self.pad >= self.k_h
            && self.in_w + 2 * self.pad >= self.k_w
            && self.stride > 0
            && self.in_c > 0
            && self.out_c > 0
    }
}

/// Unroll one image `[C, H, W]` into the column matrix `[C*KH*KW, OH*OW]`.
///
/// `img` must have `in_c * in_h * in_w` elements; `col` must have
/// `col_rows() * col_cols()` elements and is fully overwritten.
pub fn im2col(g: &ConvGeom, img: &[f32], col: &mut [f32]) {
    debug_assert_eq!(col.len(), g.col_rows() * g.col_cols());
    im2col_into(g, img, col, g.col_cols(), 0);
}

/// [`im2col`] into a strided destination: row `r` of the per-image column
/// matrix lands at `col[r * row_stride + col_offset ..][..col_cols()]`.
///
/// This is what lets a whole batch share one wide `[C*KH*KW, B*OH*OW]`
/// column matrix (image `bi` at `col_offset = bi * col_cols()`), so the
/// convolution becomes a single SGEMM per layer instead of one per image.
pub fn im2col_into(
    g: &ConvGeom,
    img: &[f32],
    col: &mut [f32],
    row_stride: usize,
    col_offset: usize,
) {
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    debug_assert!(row_stride >= n_cols);
    for c in 0..g.in_c {
        let plane = &img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (c * g.k_h + kh) * g.k_w + kw;
                let dst = &mut col[row * row_stride + col_offset..][..n_cols];
                if g.stride == 1 {
                    // stride-1 fast path: each output row is a contiguous
                    // slice of the input row, bordered by pad zeros
                    for oy in 0..oh {
                        let d = &mut dst[oy * ow..(oy + 1) * ow];
                        let iy = (oy + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            d.fill(0.0);
                            continue;
                        }
                        // valid ox: 0 <= ox + kw - pad < in_w
                        let lo = (g.pad as isize - kw as isize).clamp(0, ow as isize) as usize;
                        let hi = (g.in_w as isize + g.pad as isize - kw as isize)
                            .clamp(lo as isize, ow as isize)
                            as usize;
                        d[..lo].fill(0.0);
                        let src0 = iy as usize * g.in_w + lo + kw - g.pad;
                        d[lo..hi].copy_from_slice(&plane[src0..src0 + (hi - lo)]);
                        d[hi..].fill(0.0);
                    }
                } else {
                    let mut di = 0usize;
                    for oy in 0..oh {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            dst[di..di + ow].fill(0.0);
                            di += ow;
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            dst[di] = if ix < 0 || ix >= g.in_w as isize {
                                0.0
                            } else {
                                plane[iy * g.in_w + ix as usize]
                            };
                            di += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add the column matrix back into an image
/// gradient buffer `[C, H, W]` (which must be zeroed by the caller when a
/// fresh gradient is wanted).
pub fn col2im_accum(g: &ConvGeom, col: &[f32], img: &mut [f32]) {
    debug_assert_eq!(col.len(), g.col_rows() * g.col_cols());
    col2im_accum_from(g, col, g.col_cols(), 0, img);
}

/// [`col2im_accum`] from a strided source: row `r` of the per-image column
/// gradient is read at `col[r * row_stride + col_offset ..][..col_cols()]`
/// (the batched layout [`im2col_into`] writes).
pub fn col2im_accum_from(
    g: &ConvGeom,
    col: &[f32],
    row_stride: usize,
    col_offset: usize,
    img: &mut [f32],
) {
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    debug_assert!(row_stride >= n_cols);
    for c in 0..g.in_c {
        let plane = &mut img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for kh in 0..g.k_h {
            for kw in 0..g.k_w {
                let row = (c * g.k_h + kh) * g.k_w + kw;
                let src = &col[row * row_stride + col_offset..][..n_cols];
                if g.stride == 1 {
                    // stride-1 fast path: the valid span of each output row
                    // accumulates into a contiguous input-row slice
                    for oy in 0..oh {
                        let s = &src[oy * ow..(oy + 1) * ow];
                        let iy = (oy + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        let lo = (g.pad as isize - kw as isize).clamp(0, ow as isize) as usize;
                        let hi = (g.in_w as isize + g.pad as isize - kw as isize)
                            .clamp(lo as isize, ow as isize)
                            as usize;
                        let dst0 = iy as usize * g.in_w + lo + kw - g.pad;
                        for (d, &v) in plane[dst0..dst0 + (hi - lo)].iter_mut().zip(&s[lo..hi]) {
                            *d += v;
                        }
                    }
                } else {
                    let mut si = 0usize;
                    for oy in 0..oh {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            si += ow;
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if ix >= 0 && ix < g.in_w as isize {
                                plane[iy * g.in_w + ix as usize] += src[si];
                            }
                            si += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Reference direct convolution for one image (testing / ablation baseline).
///
/// `weights` is `[OC, C, KH, KW]`, `out` is `[OC, OH, OW]` and is overwritten.
pub fn conv2d_direct(g: &ConvGeom, img: &[f32], weights: &[f32], bias: &[f32], out: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    debug_assert_eq!(out.len(), g.out_c * oh * ow);
    debug_assert_eq!(weights.len(), g.out_c * g.col_rows());
    debug_assert_eq!(bias.len(), g.out_c);
    for oc in 0..g.out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[oc];
                for c in 0..g.in_c {
                    for kh in 0..g.k_h {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kw in 0..g.k_w {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let w = weights[((oc * g.in_c + c) * g.k_h + kh) * g.k_w + kw];
                            let x = img[(c * g.in_h + iy as usize) * g.in_w + ix as usize];
                            acc += w * x;
                        }
                    }
                }
                out[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::sgemm;
    use crate::rng::Prng;

    fn geom() -> ConvGeom {
        ConvGeom {
            in_c: 2,
            in_h: 5,
            in_w: 5,
            out_c: 3,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn geometry_sizes() {
        let g = geom();
        assert!(g.is_valid());
        assert_eq!(g.out_h(), 5);
        assert_eq!(g.out_w(), 5);
        assert_eq!(g.col_rows(), 18);
        assert_eq!(g.col_cols(), 25);
    }

    #[test]
    fn invalid_geometry_detected() {
        let mut g = geom();
        g.k_h = 9;
        g.pad = 0;
        assert!(!g.is_valid());
    }

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let g = geom();
        let mut rng = Prng::seed_from_u64(21);
        let img: Vec<f32> = (0..g.in_c * g.in_h * g.in_w)
            .map(|_| rng.normal())
            .collect();
        let w: Vec<f32> = (0..g.out_c * g.col_rows()).map(|_| rng.normal()).collect();
        let bias: Vec<f32> = (0..g.out_c).map(|_| rng.normal()).collect();

        // direct
        let mut direct = vec![0.0f32; g.out_c * g.col_cols()];
        conv2d_direct(&g, &img, &w, &bias, &mut direct);

        // im2col + gemm
        let mut col = vec![0.0f32; g.col_rows() * g.col_cols()];
        im2col(&g, &img, &mut col);
        let mut out = vec![0.0f32; g.out_c * g.col_cols()];
        sgemm(g.out_c, g.col_rows(), g.col_cols(), &w, &col, &mut out);
        for oc in 0..g.out_c {
            for p in 0..g.col_cols() {
                out[oc * g.col_cols() + p] += bias[oc];
            }
        }

        for (a, b) in out.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property that makes the backward pass correct.
        let g = geom();
        let mut rng = Prng::seed_from_u64(33);
        let x: Vec<f32> = (0..g.in_c * g.in_h * g.in_w)
            .map(|_| rng.normal())
            .collect();
        let y: Vec<f32> = (0..g.col_rows() * g.col_cols())
            .map(|_| rng.normal())
            .collect();

        let mut cx = vec![0.0f32; y.len()];
        im2col(&g, &x, &mut cx);
        let lhs: f64 = cx
            .iter()
            .zip(&y)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();

        let mut aty = vec![0.0f32; x.len()];
        col2im_accum(&g, &y, &mut aty);
        let rhs: f64 = x
            .iter()
            .zip(&aty)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();

        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn stride_two_no_pad() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 6,
            in_w: 6,
            out_c: 1,
            k_h: 2,
            k_w: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(g.out_h(), 3);
        assert_eq!(g.out_w(), 3);
        let img: Vec<f32> = (0..36).map(|v| v as f32).collect();
        let w = vec![1.0, 0.0, 0.0, 0.0]; // picks top-left of each 2x2 patch
        let bias = vec![0.0];
        let mut out = vec![0.0; 9];
        conv2d_direct(&g, &img, &w, &bias, &mut out);
        assert_eq!(out, vec![0.0, 2.0, 4.0, 12.0, 14.0, 16.0, 24.0, 26.0, 28.0]);
    }
}
