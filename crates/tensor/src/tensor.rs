//! Dense, row-major `f32` n-dimensional array.
//!
//! [`Tensor`] is the single data container used throughout the workspace:
//! mini-batches, activations, gradients and parameter blocks are all tensors.
//! The design goal is predictability over generality — contiguous storage,
//! explicit shapes, and fallible ops that return [`TensorError`] instead of
//! panicking in library code.

use crate::rng::Prng;
use crate::{Result, TensorError};

/// A dense, row-major `f32` n-dimensional array.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    ///
    /// # Panics
    /// Panics if `shape` contains a zero dimension (an empty tensor is almost
    /// always a logic bug in this workspace).
    pub fn zeros(shape: &[usize]) -> Self {
        let n = checked_len(shape).expect("Tensor::zeros: invalid shape"); // lint:allow(panic) — documented panic on invalid shape
        Tensor {
            data: vec![0.0; n],
            shape: shape.to_vec(),
        }
    }

    /// Create a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = checked_len(shape).expect("Tensor::full: invalid shape"); // lint:allow(panic) — documented panic on invalid shape
        Tensor {
            data: vec![value; n],
            shape: shape.to_vec(),
        }
    }

    /// Build a tensor from an existing buffer.
    ///
    /// Returns an error when the buffer length does not match the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let n = checked_len(shape)?;
        if n != data.len() {
            return Err(TensorError::InvalidShape(format!(
                "buffer of {} elements cannot have shape {:?} ({} elements)",
                data.len(),
                shape,
                n
            )));
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Sample every element i.i.d. from `N(0, std^2)`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut Prng) -> Self {
        let n = checked_len(shape).expect("Tensor::randn: invalid shape"); // lint:allow(panic) — documented panic on invalid shape
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(rng.normal() * std);
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Sample every element i.i.d. from `U(-limit, limit)` (He/Glorot style
    /// fan-in init is built on top of this in the layers).
    pub fn rand_uniform(shape: &[usize], limit: f32, rng: &mut Prng) -> Self {
        let n = checked_len(shape).expect("Tensor::rand_uniform: invalid shape"); // lint:allow(panic) — documented panic on invalid shape
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push((rng.uniform() * 2.0 - 1.0) * limit);
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (never the case for tensors
    /// produced by this crate's constructors, but kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let n = checked_len(shape)?;
        if n != self.len() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.shape.clone(),
                rhs: shape.to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// In-place reshape (no data movement).
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let n = checked_len(shape)?;
        if n != self.len() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape_in_place",
                lhs: self.shape.clone(),
                rhs: shape.to_vec(),
            });
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Ok(())
    }

    /// Re-purpose this tensor's storage for a new shape, reusing the existing
    /// buffer and shape capacity (no allocation once capacity suffices —
    /// this is the primitive [`crate::scratch::Scratch`] is built on).
    ///
    /// Contents after the call are **unspecified**: elements retained from the
    /// previous use are stale and the caller must overwrite every element it
    /// reads.
    ///
    /// # Panics
    /// Panics if `shape` contains a zero dimension.
    pub fn reuse(&mut self, shape: &[usize]) {
        let n = checked_len(shape).expect("Tensor::reuse: invalid shape"); // lint:allow(panic) — documented panic on invalid shape
        self.data.resize(n, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Element at a multi-dimensional index. Debug-asserts bounds.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Mutable element access at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        &mut self.data[off]
    }

    #[inline]
    fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            debug_assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (dim {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Elementwise addition, `self + rhs`.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise subtraction, `self - rhs`.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<()> {
        self.zip_assign(rhs, "add_assign", |a, b| *a += b)
    }

    /// In-place `self -= rhs`.
    pub fn sub_assign(&mut self, rhs: &Tensor) -> Result<()> {
        self.zip_assign(rhs, "sub_assign", |a, b| *a -= b)
    }

    /// In-place `self += alpha * rhs` (the BLAS `axpy` primitive).
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        self.zip_assign(rhs, "axpy", |a, b| *a += alpha * b)
    }

    /// In-place scaling, `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Map every element through `f`, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Squared L2 norm, `sum(x_i^2)`.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Dot product with another tensor of identical element count.
    pub fn dot(&self, rhs: &Tensor) -> Result<f64> {
        if self.len() != rhs.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum())
    }

    /// Maximum element; `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Index of the maximum element along the last axis for each "row".
    ///
    /// For a `[batch, classes]` tensor this is the per-sample argmax used by
    /// accuracy evaluation.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let cols = *self.shape.last().unwrap_or(&1);
        if cols == 0 {
            return Vec::new();
        }
        self.data
            .chunks_exact(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    fn zip_assign(
        &mut self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(&mut f32, f32),
    ) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            f(a, b);
        }
        Ok(())
    }
}

fn checked_len(shape: &[usize]) -> Result<usize> {
    if shape.is_empty() {
        return Err(TensorError::InvalidShape("empty shape".into()));
    }
    let mut n = 1usize;
    for &d in shape {
        if d == 0 {
            return Err(TensorError::InvalidShape(format!(
                "zero dimension in shape {shape:?}"
            )));
        }
        n = n
            .checked_mul(d)
            .ok_or_else(|| TensorError::InvalidShape(format!("shape {shape:?} overflows usize")))?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidShape(_)));
    }

    #[test]
    fn from_vec_rejects_zero_dim() {
        let err = Tensor::from_vec(vec![], &[0, 3]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidShape(_)));
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    fn elementwise_ops_match_reference() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10.0, 40.0, 90.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn axpy_matches_manual_update() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, -4.0], &[2]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.sq_norm(), 14.0);
        assert_eq!(t.max(), Some(3.0));
    }

    #[test]
    fn argmax_rows_per_sample() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn randn_is_seeded_deterministic() {
        let mut r1 = Prng::seed_from_u64(7);
        let mut r2 = Prng::seed_from_u64(7);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn randn_has_sane_moments() {
        let mut rng = Prng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {} too far from 0", t.mean());
        let var = t.sq_norm() / t.len() as f64;
        assert!((var - 1.0).abs() < 0.08, "variance {var} too far from 1");
    }
}
