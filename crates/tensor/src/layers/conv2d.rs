//! 2-d convolution layer (im2col + SGEMM lowering).

use super::Layer;
use crate::conv::{col2im_accum, im2col, ConvGeom};
use crate::linalg::{sgemm, sgemm_a_bt, sgemm_at_b_accum};
use crate::rng::Prng;
use crate::tensor::Tensor;

/// 2-d convolution over `[batch, C, H, W]` inputs.
///
/// Weights are stored as the `[out_c, in_c*k_h*k_w]` filter matrix that the
/// im2col lowering multiplies directly.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geom: ConvGeom,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// He-uniform initialized convolution.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (kernel larger than padded input).
    pub fn new(geom: ConvGeom, rng: &mut Prng) -> Self {
        assert!(geom.is_valid(), "invalid conv geometry: {geom:?}");
        let fan_in = geom.col_rows();
        let limit = (6.0f32 / fan_in as f32).sqrt();
        let weight = Tensor::rand_uniform(&[geom.out_c, fan_in], limit, rng).into_vec();
        Conv2d {
            geom,
            weight,
            bias: vec![0.0; geom.out_c],
            grad_weight: vec![0.0; geom.out_c * fan_in],
            grad_bias: vec![0.0; geom.out_c],
            cached_input: None,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    fn in_elems(&self) -> usize {
        self.geom.in_c * self.geom.in_h * self.geom.in_w
    }

    fn out_elems(&self) -> usize {
        self.geom.out_c * self.geom.col_cols()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let g = &self.geom;
        let batch = input.len() / self.in_elems();
        debug_assert_eq!(batch * self.in_elems(), input.len(), "conv2d input size");
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = Tensor::zeros(&[batch, g.out_c, oh, ow]);
        let mut col = vec![0.0f32; g.col_rows() * g.col_cols()];
        let n_cols = g.col_cols();
        for bi in 0..batch {
            let img = &input.as_slice()[bi * self.in_elems()..(bi + 1) * self.in_elems()];
            im2col(g, img, &mut col);
            let dst = &mut out.as_mut_slice()[bi * self.out_elems()..(bi + 1) * self.out_elems()];
            sgemm(g.out_c, g.col_rows(), n_cols, &self.weight, &col, dst);
            for oc in 0..g.out_c {
                let b = self.bias[oc];
                for v in &mut dst[oc * n_cols..(oc + 1) * n_cols] {
                    *v += b;
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.geom;
        let input = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward called before forward");
        let batch = input.len() / self.in_elems();
        let n_cols = g.col_cols();
        let in_elems = self.in_elems();
        let out_elems = self.out_elems();
        debug_assert_eq!(grad_out.len(), batch * out_elems);

        let mut grad_in = Tensor::zeros(&[batch, g.in_c, g.in_h, g.in_w]);
        let mut col = vec![0.0f32; g.col_rows() * n_cols];
        let mut col_grad = vec![0.0f32; g.col_rows() * n_cols];

        for bi in 0..batch {
            let img = &input.as_slice()[bi * in_elems..(bi + 1) * in_elems];
            let dy = &grad_out.as_slice()[bi * out_elems..(bi + 1) * out_elems];

            // dW += dY * col^T: dY is [out_c, n_cols], col is [col_rows, n_cols]
            im2col(&g, img, &mut col);
            let mut dw = vec![0.0f32; g.out_c * g.col_rows()];
            sgemm_a_bt(g.out_c, n_cols, g.col_rows(), dy, &col, &mut dw);
            for (acc, v) in self.grad_weight.iter_mut().zip(&dw) {
                *acc += v;
            }

            // db += per-channel sums of dY
            for oc in 0..g.out_c {
                let mut s = 0.0f32;
                for &v in &dy[oc * n_cols..(oc + 1) * n_cols] {
                    s += v;
                }
                self.grad_bias[oc] += s;
            }

            // d(col) = W^T dY: accumulate into image gradient via col2im
            col_grad.fill(0.0);
            sgemm_at_b_accum(
                g.out_c,
                g.col_rows(),
                n_cols,
                &self.weight,
                dy,
                &mut col_grad,
            );
            let gi = &mut grad_in.as_mut_slice()[bi * in_elems..(bi + 1) * in_elems];
            col2im_accum(&g, &col_grad, gi);
        }
        grad_in
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        vec![
            (&mut self.weight[..], &self.grad_weight[..]),
            (&mut self.bias[..], &self.grad_bias[..]),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn flops_forward(&self) -> u64 {
        let g = &self.geom;
        // GEMM: 2 * out_c * col_rows * col_cols, plus bias adds
        2 * (g.out_c as u64) * (g.col_rows() as u64) * (g.col_cols() as u64)
            + (g.out_c * g.col_cols()) as u64
    }

    fn flops_backward(&self) -> u64 {
        // dW GEMM + d(col) GEMM, each the same size as the forward GEMM
        2 * self.flops_forward()
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.geom.out_c, self.geom.out_h(), self.geom.out_w()]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn small_geom() -> ConvGeom {
        ConvGeom {
            in_c: 2,
            in_h: 6,
            in_w: 6,
            out_c: 3,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = Prng::seed_from_u64(7);
        let mut conv = Conv2d::new(small_geom(), &mut rng);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 3, 6, 6]);
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut rng = Prng::seed_from_u64(8);
        let mut conv = Conv2d::new(small_geom(), &mut rng);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        gradcheck::check_input_gradient(&mut conv, &x, 6e-2);
        gradcheck::check_param_gradient(&mut conv, &x, 6e-2);
    }

    #[test]
    fn stride_two_output_shape() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 8,
            in_w: 8,
            out_c: 4,
            k_h: 3,
            k_w: 3,
            stride: 2,
            pad: 1,
        };
        let mut rng = Prng::seed_from_u64(9);
        let mut conv = Conv2d::new(g, &mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
        assert_eq!(conv.output_shape(&[1, 8, 8]), vec![4, 4, 4]);
    }

    #[test]
    fn num_params() {
        let mut rng = Prng::seed_from_u64(10);
        let conv = Conv2d::new(small_geom(), &mut rng);
        assert_eq!(conv.num_params(), 3 * 2 * 3 * 3 + 3);
    }

    #[test]
    fn bias_shifts_every_output_plane() {
        let mut rng = Prng::seed_from_u64(11);
        let g = small_geom();
        let mut conv = Conv2d::new(g, &mut rng);
        let x = Tensor::zeros(&[1, 2, 6, 6]);
        conv.params_mut()[1].copy_from_slice(&[1.0, 2.0, 3.0]);
        let y = conv.forward(&x);
        let n = g.col_cols();
        for oc in 0..3 {
            for &v in &y.as_slice()[oc * n..(oc + 1) * n] {
                assert!((v - (oc as f32 + 1.0)).abs() < 1e-6);
            }
        }
    }
}
