//! 2-d convolution layer (im2col + SGEMM lowering).

use super::Layer;
use crate::conv::{col2im_accum_from, im2col_into, ConvGeom};
use crate::linalg::{sgemm, sgemm_a_bt, sgemm_at_b};
use crate::rng::Prng;
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// 2-d convolution over `[batch, C, H, W]` inputs.
///
/// Weights are stored as the `[out_c, in_c*k_h*k_w]` filter matrix that the
/// im2col lowering multiplies directly. The whole batch is unrolled into one
/// wide `[in_c*k_h*k_w, batch*out_h*out_w]` column matrix so each of the
/// forward / weight-gradient / input-gradient passes is a **single** SGEMM
/// per layer — per-image GEMMs on these paper-scale geometries are too small
/// to amortize the packed kernel's setup (the worst case, a 1x1 output map,
/// degenerates to a GEMV that wastes the whole N-tile).
#[derive(Debug, Clone)]
pub struct Conv2d {
    geom: ConvGeom,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    /// Batched column matrix from the last forward, reused by backward
    /// (with the batch size it was built for).
    cached_col: Option<(Vec<f32>, usize)>,
}

impl Conv2d {
    /// He-uniform initialized convolution.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (kernel larger than padded input).
    pub fn new(geom: ConvGeom, rng: &mut Prng) -> Self {
        assert!(geom.is_valid(), "invalid conv geometry: {geom:?}");
        let fan_in = geom.col_rows();
        let limit = (6.0f32 / fan_in as f32).sqrt();
        let weight = Tensor::rand_uniform(&[geom.out_c, fan_in], limit, rng).into_vec();
        Conv2d {
            geom,
            weight,
            bias: vec![0.0; geom.out_c],
            grad_weight: vec![0.0; geom.out_c * fan_in],
            grad_bias: vec![0.0; geom.out_c],
            cached_col: None,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    fn in_elems(&self) -> usize {
        self.geom.in_c * self.geom.in_h * self.geom.in_w
    }

    fn out_elems(&self) -> usize {
        self.geom.out_c * self.geom.col_cols()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: Tensor, scratch: &mut Scratch) -> Tensor {
        let g = &self.geom;
        let batch = input.len() / self.in_elems();
        debug_assert_eq!(batch * self.in_elems(), input.len(), "conv2d input size");
        let (oh, ow) = (g.out_h(), g.out_w());
        let n_cols = g.col_cols();
        let wide = batch * n_cols;

        // one wide column matrix for the whole batch (image bi occupies
        // columns [bi*n_cols, (bi+1)*n_cols)); fully overwritten by im2col
        let mut col = scratch.take(g.col_rows() * wide);
        for bi in 0..batch {
            let img = &input.as_slice()[bi * self.in_elems()..(bi + 1) * self.in_elems()];
            im2col_into(g, img, &mut col, wide, bi * n_cols);
        }

        // single forward GEMM: [out_c, col_rows] x [col_rows, wide]
        let mut out_wide = scratch.take(g.out_c * wide);
        sgemm(
            g.out_c,
            g.col_rows(),
            wide,
            &self.weight,
            &col,
            &mut out_wide,
        );

        // un-interleave [out_c, batch*n_cols] -> [batch, out_c, n_cols],
        // fusing the bias add into the copy (overwrites every element)
        let mut out = scratch.take_tensor(&[batch, g.out_c, oh, ow]);
        let dst = out.as_mut_slice();
        for oc in 0..g.out_c {
            let b = self.bias[oc];
            let src_row = &out_wide[oc * wide..(oc + 1) * wide];
            for bi in 0..batch {
                let d = &mut dst[(bi * g.out_c + oc) * n_cols..][..n_cols];
                for (dv, &sv) in d.iter_mut().zip(&src_row[bi * n_cols..][..n_cols]) {
                    *dv = sv + b;
                }
            }
        }
        scratch.give(out_wide);

        // backward reuses the column matrix instead of re-running im2col;
        // the input itself is no longer needed
        if let Some((old, _)) = self.cached_col.replace((col, batch)) {
            scratch.give(old);
        }
        scratch.give_tensor(input);
        out
    }

    fn backward(&mut self, grad_out: Tensor, scratch: &mut Scratch) -> Tensor {
        let g = self.geom;
        let (mut col, batch) = self
            .cached_col
            .take()
            .expect("Conv2d::backward called before forward"); // lint:allow(panic) — backward-after-forward is the layer contract
        let n_cols = g.col_cols();
        let wide = batch * n_cols;
        let in_elems = self.in_elems();
        let out_elems = self.out_elems();
        debug_assert_eq!(grad_out.len(), batch * out_elems);
        debug_assert_eq!(col.len(), g.col_rows() * wide);

        // gather dY [batch, out_c, n_cols] into the wide layout
        // [out_c, batch*n_cols] that pairs with the cached column matrix
        let mut dy_wide = scratch.take(g.out_c * wide);
        for bi in 0..batch {
            let dy = &grad_out.as_slice()[bi * out_elems..(bi + 1) * out_elems];
            for oc in 0..g.out_c {
                dy_wide[oc * wide + bi * n_cols..][..n_cols]
                    .copy_from_slice(&dy[oc * n_cols..(oc + 1) * n_cols]);
            }
        }

        // dW += dY_wide * col^T — one GEMM reduces over the whole batch
        let mut dw = scratch.take(g.out_c * g.col_rows());
        sgemm_a_bt(g.out_c, wide, g.col_rows(), &dy_wide, &col, &mut dw);
        for (acc, v) in self.grad_weight.iter_mut().zip(&dw) {
            *acc += v;
        }
        scratch.give(dw);

        // db += per-channel sums of dY
        for oc in 0..g.out_c {
            let mut s = 0.0f32;
            for &v in &dy_wide[oc * wide..(oc + 1) * wide] {
                s += v;
            }
            self.grad_bias[oc] += s;
        }

        // d(col) = W^T dY_wide — reuse the column buffer (its contents were
        // consumed by the dW GEMM above); then scatter back per image
        sgemm_at_b(
            g.out_c,
            g.col_rows(),
            wide,
            &self.weight,
            &dy_wide,
            &mut col,
        );
        scratch.give(dy_wide);
        let mut grad_in = scratch.take_tensor_zeroed(&[batch, g.in_c, g.in_h, g.in_w]);
        for bi in 0..batch {
            let gi = &mut grad_in.as_mut_slice()[bi * in_elems..(bi + 1) * in_elems];
            col2im_accum_from(&g, &col, wide, bi * n_cols, gi);
        }
        scratch.give(col);
        scratch.give_tensor(grad_out);
        grad_in
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        vec![
            (&mut self.weight[..], &self.grad_weight[..]),
            (&mut self.bias[..], &self.grad_bias[..]),
        ]
    }

    fn for_each_param_grad(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(&mut self.weight, &self.grad_weight);
        f(&mut self.bias, &self.grad_bias);
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn flops_forward(&self) -> u64 {
        let g = &self.geom;
        // GEMM: 2 * out_c * col_rows * col_cols, plus bias adds
        2 * (g.out_c as u64) * (g.col_rows() as u64) * (g.col_cols() as u64)
            + (g.out_c * g.col_cols()) as u64
    }

    fn flops_backward(&self) -> u64 {
        // dW GEMM + d(col) GEMM, each the same size as the forward GEMM
        2 * self.flops_forward()
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.geom.out_c, self.geom.out_h(), self.geom.out_w()]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn small_geom() -> ConvGeom {
        ConvGeom {
            in_c: 2,
            in_h: 6,
            in_w: 6,
            out_c: 3,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = Prng::seed_from_u64(7);
        let mut conv = Conv2d::new(small_geom(), &mut rng);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        let y = conv.forward(x, &mut Scratch::new());
        assert_eq!(y.shape(), &[2, 3, 6, 6]);
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut rng = Prng::seed_from_u64(8);
        let mut conv = Conv2d::new(small_geom(), &mut rng);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        gradcheck::check_input_gradient(&mut conv, &x, 6e-2);
        gradcheck::check_param_gradient(&mut conv, &x, 6e-2);
    }

    #[test]
    fn stride_two_output_shape() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 8,
            in_w: 8,
            out_c: 4,
            k_h: 3,
            k_w: 3,
            stride: 2,
            pad: 1,
        };
        let mut rng = Prng::seed_from_u64(9);
        let mut conv = Conv2d::new(g, &mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        let y = conv.forward(x, &mut Scratch::new());
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
        assert_eq!(conv.output_shape(&[1, 8, 8]), vec![4, 4, 4]);
    }

    #[test]
    fn num_params() {
        let mut rng = Prng::seed_from_u64(10);
        let conv = Conv2d::new(small_geom(), &mut rng);
        assert_eq!(conv.num_params(), 3 * 2 * 3 * 3 + 3);
    }

    #[test]
    fn bias_shifts_every_output_plane() {
        let mut rng = Prng::seed_from_u64(11);
        let g = small_geom();
        let mut conv = Conv2d::new(g, &mut rng);
        let x = Tensor::zeros(&[1, 2, 6, 6]);
        conv.params_mut()[1].copy_from_slice(&[1.0, 2.0, 3.0]);
        let y = conv.forward(x, &mut Scratch::new());
        let n = g.col_cols();
        for oc in 0..3 {
            for &v in &y.as_slice()[oc * n..(oc + 1) * n] {
                assert!((v - (oc as f32 + 1.0)).abs() < 1e-6);
            }
        }
    }
}
