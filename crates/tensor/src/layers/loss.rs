//! Softmax cross-entropy loss head.

use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Combined softmax + cross-entropy loss with the numerically stable
/// log-sum-exp formulation and the fused gradient `(softmax - onehot) / B`.
#[derive(Debug, Clone, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Create the loss head.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    /// Mean cross-entropy loss over the batch and its gradient w.r.t. the
    /// logits.
    ///
    /// `logits` is `[batch, classes]`; `targets` are class indices.
    ///
    /// # Panics
    /// Panics if `targets.len()` does not match the batch size or a target
    /// index is out of range.
    pub fn forward_backward(&self, logits: &Tensor, targets: &[usize]) -> (f64, Tensor) {
        let classes = *logits.shape().last().expect("logits must be 2-d"); // lint:allow(panic) — 2-d logits are the documented contract
        let batch = logits.len() / classes;
        let mut grad = Tensor::zeros(&[batch, classes]);
        let loss = self.fb_into(logits, targets, &mut grad);
        (loss, grad)
    }

    /// Like [`SoftmaxCrossEntropy::forward_backward`], but the gradient is
    /// written into a recycled scratch tensor (the hot-loop form used by
    /// `Sequential::train_step`).
    pub fn forward_backward_scratch(
        &self,
        logits: &Tensor,
        targets: &[usize],
        scratch: &mut Scratch,
    ) -> (f64, Tensor) {
        let classes = *logits.shape().last().expect("logits must be 2-d"); // lint:allow(panic) — 2-d logits are the documented contract
        let batch = logits.len() / classes;
        // every gradient element is written by fb_into
        let mut grad = scratch.take_tensor(&[batch, classes]);
        let loss = self.fb_into(logits, targets, &mut grad);
        (loss, grad)
    }

    /// Core loss/gradient pass; overwrites every element of `grad`.
    fn fb_into(&self, logits: &Tensor, targets: &[usize], grad: &mut Tensor) -> f64 {
        let classes = *logits.shape().last().expect("logits must be 2-d"); // lint:allow(panic) — 2-d logits are the documented contract
        let batch = logits.len() / classes;
        assert_eq!(batch, targets.len(), "target count != batch size");
        debug_assert_eq!(grad.len(), batch * classes);

        let mut total_loss = 0.0f64;
        let inv_b = 1.0f32 / batch as f32;

        for (bi, (&t, row)) in targets
            .iter()
            .zip(logits.as_slice().chunks_exact(classes))
            .enumerate()
        {
            assert!(t < classes, "target {t} out of range (classes={classes})");
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum_exp = 0.0f32;
            for &v in row {
                sum_exp += (v - m).exp();
            }
            let log_z = m + sum_exp.ln();
            total_loss += (log_z - row[t]) as f64;

            let g_row = &mut grad.as_mut_slice()[bi * classes..(bi + 1) * classes];
            for (j, (&v, g)) in row.iter().zip(g_row.iter_mut()).enumerate() {
                let p = (v - log_z).exp();
                *g = (p - if j == t { 1.0 } else { 0.0 }) * inv_b;
            }
        }
        total_loss / batch as f64
    }

    /// Softmax probabilities (used by evaluation / t-SNE tooling).
    pub fn probabilities(&self, logits: &Tensor) -> Tensor {
        let classes = *logits.shape().last().expect("logits must be 2-d"); // lint:allow(panic) — 2-d logits are the documented contract
        let mut out = logits.clone();
        for row in out.as_mut_slice().chunks_exact_mut(classes) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Analytic FLOPs per sample for `classes` outputs (exp + norm + grad).
    pub fn flops(&self, classes: usize) -> u64 {
        5 * classes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[2, 4]);
        let (l, _) = loss.forward_backward(&logits, &[0, 3]);
        assert!((l - (4.0f64).ln()).abs() < 1e-6, "loss {l}");
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0], &[1, 4]).unwrap();
        let (l, _) = loss.forward_backward(&logits, &[0]);
        assert!(l < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.4], &[2, 3]).unwrap();
        let targets = [2usize, 0];
        let (_, grad) = loss.forward_backward(&logits, &targets);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (fp, _) = loss.forward_backward(&lp, &targets);
            let (fm, _) = loss.forward_backward(&lm, &targets);
            let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
            let an = grad.as_slice()[idx];
            assert!((fd - an).abs() < 1e-3, "idx {idx}: fd={fd} an={an}");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // sum_j (p_j - onehot_j) = 0 for each sample
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![2.0, -1.0, 0.5, 0.0, 3.0, 1.0], &[2, 3]).unwrap();
        let (_, grad) = loss.forward_backward(&logits, &[1, 2]);
        for row in grad.as_slice().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn probabilities_normalize() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![5.0, 1.0, -2.0, 0.0], &[2, 2]).unwrap();
        let p = loss.probabilities(&logits);
        for row in p.as_slice().chunks_exact(2) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn numerically_stable_for_huge_logits() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]).unwrap();
        let (l, grad) = loss.forward_backward(&logits, &[0]);
        assert!(l.is_finite());
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scratch_variant_matches_allocating_one() {
        let loss = SoftmaxCrossEntropy::new();
        let mut s = Scratch::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.4], &[2, 3]).unwrap();
        let targets = [2usize, 0];
        let (l0, g0) = loss.forward_backward(&logits, &targets);
        // poison the pool so stale contents would show through
        let mut poison = s.take_tensor(&[2, 3]);
        poison.as_mut_slice().fill(99.0);
        s.give_tensor(poison);
        let (l1, g1) = loss.forward_backward_scratch(&logits, &targets, &mut s);
        assert_eq!(l0, l1);
        assert_eq!(g0.as_slice(), g1.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[1, 3]);
        let _ = loss.forward_backward(&logits, &[3]);
    }
}
