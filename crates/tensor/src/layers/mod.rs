//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward`, mutates
//! its own gradient buffers during `backward`, and reports analytic FLOP
//! counts so the federated cost model (paper Appendix A, Tables III/V/VIII)
//! can be computed exactly rather than estimated.

mod conv2d;
mod dense;
mod dropout;
mod loss;
mod pool;
mod simple;

pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use loss::SoftmaxCrossEntropy;
pub use pool::MaxPool2d;
pub use simple::{Flatten, Relu};

use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations, `backward` consumes
/// them and accumulates parameter gradients. A fresh copy for an independent
/// client is obtained through [`Layer::clone_box`]. `Send + Sync` so model
/// templates can be shared read-only across rayon workers (each worker
/// clones its own mutable copy).
///
/// Both passes take their tensor argument **by value** and draw working
/// buffers from the [`Scratch`] arena: a layer either mutates the input in
/// place and returns it, or gives the consumed tensor back to the arena and
/// returns a recycled one. In steady state a whole forward/backward sweep
/// performs no heap allocation.
pub trait Layer: Send + Sync {
    /// Human-readable layer name (used in model summaries).
    fn name(&self) -> &'static str;

    /// Run the layer on a batch, caching whatever `backward` will need.
    ///
    /// Consumes `input`; buffers that do not escape as the result must be
    /// returned to `scratch`.
    fn forward(&mut self, input: Tensor, scratch: &mut Scratch) -> Tensor;

    /// Propagate the output gradient, accumulating parameter gradients and
    /// returning the input gradient.
    ///
    /// Must be called after `forward` on the same batch. Consumes
    /// `grad_out`; buffers that do not escape must go back to `scratch`.
    fn backward(&mut self, grad_out: Tensor, scratch: &mut Scratch) -> Tensor;

    /// Flat views of the layer's parameters, in a stable order.
    fn params(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Mutable flat views of the layer's parameters.
    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        Vec::new()
    }

    /// Flat views of the accumulated parameter gradients (same order as
    /// [`Layer::params`]).
    fn grads(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Mutable flat views of the parameter gradients.
    fn grads_mut(&mut self) -> Vec<&mut [f32]> {
        Vec::new()
    }

    /// Paired mutable-parameter / gradient views for optimizer steps.
    ///
    /// The two slices of each pair have identical lengths and stable order.
    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        Vec::new()
    }

    /// Visit each (parameters, gradients) pair in the same stable order as
    /// [`Layer::params_and_grads`] without allocating — the hot-loop form
    /// used by fused optimizer sweeps.
    fn for_each_param_grad(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        let _ = f;
    }

    /// True for elementwise layers whose FLOP counts are *per element*
    /// rather than per sample (the network multiplies by activation size).
    fn is_elementwise(&self) -> bool {
        false
    }

    /// Switch between training and inference behaviour (dropout masks,
    /// etc.). Most layers behave identically in both modes.
    fn set_training(&mut self, _on: bool) {}

    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Number of trainable parameters.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Analytic forward FLOPs for a single sample.
    fn flops_forward(&self) -> u64;

    /// Analytic backward FLOPs for a single sample.
    fn flops_backward(&self) -> u64;

    /// Output shape (excluding the batch dimension) for a given input shape
    /// (also excluding batch).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Clone into a boxed trait object (models are cloned per client).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Finite-difference gradient checking used by layer unit tests.
#[cfg(test)]
pub(crate) mod gradcheck {
    use super::*;

    /// Check `d loss / d input` of `layer` against central finite differences
    /// where `loss = sum(weights * forward(x))` for a fixed random weighting.
    pub fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let mut s = Scratch::new();
        let y = layer.forward(x.clone(), &mut s);
        // fixed pseudo-random weighting puts every output element in play
        let w: Vec<f32> = (0..y.len())
            .map(|i| ((i * 2654435761) % 97) as f32 / 97.0 - 0.5)
            .collect();
        let grad_out = Tensor::from_vec(w.clone(), y.shape()).unwrap();
        layer.zero_grads();
        let gin = layer.backward(grad_out, &mut s);

        let eps = 1e-2f32;
        let n_check = x.len().min(40);
        let stride = (x.len() / n_check).max(1);
        for idx in (0..x.len()).step_by(stride) {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let yp = layer.forward(xp, &mut s);
            let lp: f64 = yp
                .as_slice()
                .iter()
                .zip(&w)
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            let ym = layer.forward(xm, &mut s);
            let lm: f64 = ym
                .as_slice()
                .iter()
                .zip(&w)
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = gin.as_slice()[idx];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                "input grad mismatch at {idx}: fd={fd} analytic={an}"
            );
        }
    }

    /// Check `d loss / d params` against central finite differences.
    pub fn check_param_gradient(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let mut s = Scratch::new();
        let y = layer.forward(x.clone(), &mut s);
        let w: Vec<f32> = (0..y.len())
            .map(|i| ((i * 2246822519) % 89) as f32 / 89.0 - 0.5)
            .collect();
        let grad_out = Tensor::from_vec(w.clone(), y.shape()).unwrap();
        layer.zero_grads();
        let _ = layer.backward(grad_out, &mut s);
        let analytic: Vec<Vec<f32>> = layer.grads().iter().map(|g| g.to_vec()).collect();

        let eps = 1e-2f32;
        for (pi, g) in analytic.iter().enumerate() {
            let n_check = g.len().min(25);
            let stride = (g.len() / n_check).max(1);
            for idx in (0..g.len()).step_by(stride) {
                let orig = layer.params()[pi][idx];
                layer.params_mut()[pi][idx] = orig + eps;
                let yp = layer.forward(x.clone(), &mut s);
                let lp: f64 = yp
                    .as_slice()
                    .iter()
                    .zip(&w)
                    .map(|(&a, &b)| (a * b) as f64)
                    .sum();
                layer.params_mut()[pi][idx] = orig - eps;
                let ym = layer.forward(x.clone(), &mut s);
                let lm: f64 = ym
                    .as_slice()
                    .iter()
                    .zip(&w)
                    .map(|(&a, &b)| (a * b) as f64)
                    .sum();
                layer.params_mut()[pi][idx] = orig;
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let an = g[idx];
                assert!(
                    (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                    "param {pi} grad mismatch at {idx}: fd={fd} analytic={an}"
                );
            }
        }
    }
}
