//! Fully-connected layer.

use super::Layer;
use crate::linalg::{sgemm, sgemm_a_bt, sgemm_at_b_accum};
use crate::rng::Prng;
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Fully-connected layer: `y = x W + b` with `W: [in, out]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// He-uniform initialized dense layer (`limit = sqrt(6 / in)`), the
    /// standard choice for ReLU networks.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Prng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
        let limit = (6.0f32 / in_dim as f32).sqrt();
        let weight = Tensor::rand_uniform(&[in_dim, out_dim], limit, rng).into_vec();
        Dense {
            in_dim,
            out_dim,
            weight,
            bias: vec![0.0; out_dim],
            grad_weight: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: Tensor, scratch: &mut Scratch) -> Tensor {
        let batch = input.len() / self.in_dim;
        debug_assert_eq!(
            batch * self.in_dim,
            input.len(),
            "Dense: input length {} not divisible by in_dim {}",
            input.len(),
            self.in_dim
        );
        // sgemm fully overwrites `out`, so stale scratch contents are fine
        let mut out = scratch.take_tensor(&[batch, self.out_dim]);
        sgemm(
            batch,
            self.in_dim,
            self.out_dim,
            input.as_slice(),
            &self.weight,
            out.as_mut_slice(),
        );
        // broadcast bias over rows
        for row in out.as_mut_slice().chunks_exact_mut(self.out_dim) {
            for (o, &b) in row.iter_mut().zip(&self.bias) {
                *o += b;
            }
        }
        if let Some(old) = self.cached_input.replace(input) {
            scratch.give_tensor(old);
        }
        out
    }

    fn backward(&mut self, grad_out: Tensor, scratch: &mut Scratch) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Dense::backward called before forward"); // lint:allow(panic) — backward-after-forward is the layer contract
        let batch = grad_out.len() / self.out_dim;
        debug_assert_eq!(batch * self.in_dim, x.len());

        // dW += X^T dY  (X: [batch, in], dY: [batch, out])
        sgemm_at_b_accum(
            batch,
            self.in_dim,
            self.out_dim,
            x.as_slice(),
            grad_out.as_slice(),
            &mut self.grad_weight,
        );
        // db += column sums of dY
        for row in grad_out.as_slice().chunks_exact(self.out_dim) {
            for (g, &d) in self.grad_bias.iter_mut().zip(row) {
                *g += d;
            }
        }
        // dX = dY W^T  (W: [in, out] interpreted as B with n=in, k=out);
        // fully overwritten by sgemm_a_bt
        let mut grad_in = scratch.take_tensor(&[batch, self.in_dim]);
        sgemm_a_bt(
            batch,
            self.out_dim,
            self.in_dim,
            grad_out.as_slice(),
            &self.weight,
            grad_in.as_mut_slice(),
        );
        scratch.give_tensor(x);
        scratch.give_tensor(grad_out);
        grad_in
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        vec![
            (&mut self.weight[..], &self.grad_weight[..]),
            (&mut self.bias[..], &self.grad_bias[..]),
        ]
    }

    fn for_each_param_grad(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(&mut self.weight, &self.grad_weight);
        f(&mut self.bias, &self.grad_bias);
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn flops_forward(&self) -> u64 {
        // one multiply-add per weight element, plus the bias add
        2 * (self.in_dim as u64) * (self.out_dim as u64) + self.out_dim as u64
    }

    fn flops_backward(&self) -> u64 {
        // dW (2*in*out) + dX (2*in*out) + db (out)
        4 * (self.in_dim as u64) * (self.out_dim as u64) + self.out_dim as u64
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_dim]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn forward_matches_manual() {
        let mut rng = Prng::seed_from_u64(1);
        let mut d = Dense::new(2, 3, &mut rng);
        // overwrite params with known values
        d.params_mut()[0].copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // W [2,3]
        d.params_mut()[1].copy_from_slice(&[0.1, 0.2, 0.3]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(x, &mut Scratch::new());
        assert_eq!(y.shape(), &[1, 3]);
        let e = [5.1f32, 7.2, 9.3];
        for (a, b) in y.as_slice().iter().zip(&e) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut rng = Prng::seed_from_u64(2);
        let mut d = Dense::new(5, 4, &mut rng);
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        gradcheck::check_input_gradient(&mut d, &x, 5e-2);
        gradcheck::check_param_gradient(&mut d, &x, 5e-2);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Prng::seed_from_u64(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let mut s = Scratch::new();
        d.forward(x.clone(), &mut s);
        d.backward(g.clone(), &mut s);
        let g1 = d.grads()[0].to_vec();
        d.forward(x, &mut s);
        d.backward(g, &mut s);
        let g2 = d.grads()[0].to_vec();
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-5, "accumulation broken: {a} {b}");
        }
        d.zero_grads();
        assert!(d.grads()[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = Prng::seed_from_u64(4);
        let d = Dense::new(10, 7, &mut rng);
        assert_eq!(d.num_params(), 10 * 7 + 7);
        assert_eq!(d.output_shape(&[10]), vec![7]);
    }

    #[test]
    fn flops_are_symmetric_with_size() {
        let mut rng = Prng::seed_from_u64(5);
        let d = Dense::new(100, 10, &mut rng);
        assert_eq!(d.flops_forward(), 2 * 1000 + 10);
        assert_eq!(d.flops_backward(), 4 * 1000 + 10);
    }
}
