//! Max-pooling layer.

use super::Layer;
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// 2-d max pooling over `[batch, C, H, W]` inputs with square window and
/// stride equal to the window size (the configuration used by all three
/// paper models).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    channels: usize,
    in_h: usize,
    in_w: usize,
    k: usize,
    /// argmax flat index (within the input image) per output element
    cached_argmax: Vec<usize>,
    cached_batch: usize,
}

impl MaxPool2d {
    /// Create a pooling layer for a fixed input geometry.
    ///
    /// # Panics
    /// Panics when the window does not evenly tile the input (the models in
    /// this workspace are constructed so that it always does).
    pub fn new(channels: usize, in_h: usize, in_w: usize, k: usize) -> Self {
        assert!(k > 0 && channels > 0, "MaxPool2d: bad config");
        assert!(
            in_h.is_multiple_of(k) && in_w.is_multiple_of(k),
            "MaxPool2d: {in_h}x{in_w} not divisible by window {k}"
        );
        MaxPool2d {
            channels,
            in_h,
            in_w,
            k,
            cached_argmax: Vec::new(),
            cached_batch: 0,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h / self.k
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w / self.k
    }

    fn in_elems(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    fn out_elems(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: Tensor, scratch: &mut Scratch) -> Tensor {
        let batch = input.len() / self.in_elems();
        debug_assert_eq!(batch * self.in_elems(), input.len());
        let (oh, ow) = (self.out_h(), self.out_w());
        // every output element is written by the argmax scan below
        let mut out = scratch.take_tensor(&[batch, self.channels, oh, ow]);
        self.cached_argmax.clear();
        self.cached_argmax.resize(batch * self.out_elems(), 0);
        self.cached_batch = batch;

        let src = input.as_slice();
        let dst = out.as_mut_slice();
        if self.k == 2 {
            // 2x2 fast path (every paper model): walk two input rows in
            // lock-step with explicit first-strict-max comparisons in the
            // same dy,dx scan order as the generic loop below
            for plane in 0..batch * self.channels {
                let plane_off = plane * self.in_h * self.in_w;
                let out_off = plane * oh * ow;
                for oy in 0..oh {
                    let r0 = plane_off + (2 * oy) * self.in_w;
                    let r1 = r0 + self.in_w;
                    let o = out_off + oy * ow;
                    for ox in 0..ow {
                        let (i0, i1, i2, i3) =
                            (r0 + 2 * ox, r0 + 2 * ox + 1, r1 + 2 * ox, r1 + 2 * ox + 1);
                        let (mut best, mut best_idx) = (src[i0], i0);
                        if src[i1] > best {
                            best = src[i1];
                            best_idx = i1;
                        }
                        if src[i2] > best {
                            best = src[i2];
                            best_idx = i2;
                        }
                        if src[i3] > best {
                            best = src[i3];
                            best_idx = i3;
                        }
                        dst[o + ox] = best;
                        self.cached_argmax[o + ox] = best_idx;
                    }
                }
            }
            scratch.give_tensor(input);
            return out;
        }
        for bi in 0..batch {
            for c in 0..self.channels {
                let plane_off = (bi * self.channels + c) * self.in_h * self.in_w;
                let out_off = (bi * self.channels + c) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..self.k {
                            let iy = oy * self.k + dy;
                            for dx in 0..self.k {
                                let ix = ox * self.k + dx;
                                let idx = plane_off + iy * self.in_w + ix;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[out_off + oy * ow + ox] = best;
                        self.cached_argmax[out_off + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        scratch.give_tensor(input);
        out
    }

    fn backward(&mut self, grad_out: Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            self.cached_batch > 0,
            "MaxPool2d::backward called before forward"
        );
        let batch = self.cached_batch;
        debug_assert_eq!(grad_out.len(), batch * self.out_elems());
        // scatter-accumulate target: must start zeroed
        let mut grad_in = scratch.take_tensor_zeroed(&[batch, self.channels, self.in_h, self.in_w]);
        let gi = grad_in.as_mut_slice();
        for (go, &src_idx) in grad_out.as_slice().iter().zip(&self.cached_argmax) {
            gi[src_idx] += go;
        }
        scratch.give_tensor(grad_out);
        grad_in
    }

    fn flops_forward(&self) -> u64 {
        // one comparison per window element
        (self.channels * self.in_h * self.in_w) as u64
    }

    fn flops_backward(&self) -> u64 {
        self.out_elems() as u64
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.channels, self.out_h(), self.out_w()]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_window_max() {
        let mut p = MaxPool2d::new(1, 4, 4, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(x, &mut Scratch::new());
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::new(1, 2, 2, 2);
        let mut s = Scratch::new();
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        p.forward(x, &mut s);
        let g = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]).unwrap();
        let gi = p.backward(g, &mut s);
        assert_eq!(gi.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_batched() {
        let mut p = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::from_vec(
            vec![
                // batch 0, channel 0 and 1
                1.0, 2.0, 3.0, 4.0, //
                -1.0, -2.0, -3.0, -4.0, //
                // batch 1
                10.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 20.0,
            ],
            &[2, 2, 2, 2],
        )
        .unwrap();
        let y = p.forward(x, &mut Scratch::new());
        assert_eq!(y.as_slice(), &[4.0, -1.0, 10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_non_tiling_window() {
        let _ = MaxPool2d::new(1, 5, 5, 2);
    }
}
