//! Inverted dropout.

use super::Layer;
use crate::rng::Prng;
use crate::rng_tags;
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference
/// (where the layer is the identity) needs no rescaling.
///
/// Not used by the paper's three models (which predate heavy regularization
/// stacks at this scale) — provided as a building block for custom
/// architectures via the same `Layer` trait.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: Prng,
    mask: Vec<f32>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p` and its own
    /// deterministic mask stream.
    ///
    /// # Panics
    /// Panics unless `p` is in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout {
            p,
            training: true,
            rng: Prng::derive(seed, &[rng_tags::DROPOUT]),
            mask: Vec::new(),
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, mut input: Tensor, _scratch: &mut Scratch) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask.clear();
            return input;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask.clear();
        self.mask.reserve(input.len());
        for v in input.as_mut_slice() {
            if self.rng.uniform() < self.p {
                self.mask.push(0.0);
                *v = 0.0;
            } else {
                self.mask.push(scale);
                *v *= scale;
            }
        }
        input
    }

    fn backward(&mut self, mut grad_out: Tensor, _scratch: &mut Scratch) -> Tensor {
        if self.mask.is_empty() {
            // eval mode (or p == 0): identity
            return grad_out;
        }
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "Dropout::backward shape drift"
        );
        for (gv, &m) in grad_out.as_mut_slice().iter_mut().zip(&self.mask) {
            *gv *= m;
        }
        grad_out
    }

    fn flops_forward(&self) -> u64 {
        1
    }

    fn flops_backward(&self) -> u64 {
        1
    }

    fn is_elementwise(&self) -> bool {
        true
    }

    fn set_training(&mut self, on: bool) {
        self.training = on;
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let mut s = Scratch::new();
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let y = d.forward(x.clone(), &mut s);
        assert_eq!(y.as_slice(), x.as_slice());
        let g = d.backward(y, &mut s);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::full(&[10_000], 1.0);
        let y = d.forward(x, &mut Scratch::new());
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn survivors_are_rescaled_to_preserve_expectation() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(&[20_000], 1.0);
        let y = d.forward(x, &mut Scratch::new());
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // survivors carry exactly 1/(1-p)
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_routes_through_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let mut s = Scratch::new();
        let x = Tensor::full(&[100], 1.0);
        let y = d.forward(x, &mut s);
        let g = d.backward(Tensor::full(&[100], 1.0), &mut s);
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv, gv, "gradient mask must equal forward mask");
        }
    }

    #[test]
    fn zero_p_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor::from_vec(vec![5.0, 6.0], &[2]).unwrap();
        assert_eq!(
            d.forward(x.clone(), &mut Scratch::new()).as_slice(),
            x.as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
