//! Parameter-free layers: ReLU and Flatten.

use super::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// 1.0 where the input was positive, 0.0 elsewhere.
    mask: Vec<f32>,
}

impl Relu {
    /// Create a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.mask.clear();
        self.mask.reserve(input.len());
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            if *v > 0.0 {
                self.mask.push(1.0);
            } else {
                self.mask.push(0.0);
                *v = 0.0;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "Relu::backward shape drift (forward not called?)"
        );
        let mut g = grad_out.clone();
        for (gv, &m) in g.as_mut_slice().iter_mut().zip(&self.mask) {
            *gv *= m;
        }
        g
    }

    fn flops_forward(&self) -> u64 {
        1 // per element; Sequential multiplies by activation size
    }

    fn flops_backward(&self) -> u64 {
        1
    }

    fn is_elementwise(&self) -> bool {
        true
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Collapse all non-batch dimensions: `[B, C, H, W] -> [B, C*H*W]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Create a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_shape = input.shape().to_vec();
        let batch = input.shape()[0];
        let rest = input.len() / batch;
        input
            .reshape(&[batch, rest])
            .expect("flatten reshape cannot fail")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out
            .reshape(&self.cached_shape)
            .expect("Flatten::backward called before forward")
    }

    fn flops_forward(&self) -> u64 {
        0
    }

    fn flops_backward(&self) -> u64 {
        0
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        r.forward(&x);
        let g = Tensor::from_vec(vec![5.0, 5.0], &[2]).unwrap();
        let gi = r.backward(&g);
        assert_eq!(gi.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn relu_zero_input_has_zero_gradient() {
        // subgradient convention: relu'(0) = 0
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        r.forward(&x);
        let gi = r.backward(&Tensor::from_vec(vec![1.0], &[1]).unwrap());
        assert_eq!(gi.as_slice(), &[0.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back.shape(), &[2, 3, 2, 2]);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn layers_have_no_params() {
        let r = Relu::new();
        let f = Flatten::new();
        assert_eq!(r.num_params(), 0);
        assert_eq!(f.num_params(), 0);
    }
}
