//! Parameter-free layers: ReLU and Flatten.

use super::Layer;
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// 1.0 where the input was positive, 0.0 elsewhere.
    mask: Vec<f32>,
}

impl Relu {
    /// Create a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, mut input: Tensor, _scratch: &mut Scratch) -> Tensor {
        // branchless compare + select keeps the loop vectorizable (the
        // push-per-element form cost more than the surrounding GEMMs on
        // wide activations); `max(0.0)` maps negatives, -0.0 and NaN to
        // +0.0 exactly like the branchy original
        self.mask.resize(input.len(), 0.0);
        for (v, m) in input.as_mut_slice().iter_mut().zip(self.mask.iter_mut()) {
            *m = if *v > 0.0 { 1.0 } else { 0.0 };
            *v = v.max(0.0);
        }
        input
    }

    fn backward(&mut self, mut grad_out: Tensor, _scratch: &mut Scratch) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "Relu::backward shape drift (forward not called?)"
        );
        for (gv, &m) in grad_out.as_mut_slice().iter_mut().zip(&self.mask) {
            *gv *= m;
        }
        grad_out
    }

    fn flops_forward(&self) -> u64 {
        1 // per element; Sequential multiplies by activation size
    }

    fn flops_backward(&self) -> u64 {
        1
    }

    fn is_elementwise(&self) -> bool {
        true
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Collapse all non-batch dimensions: `[B, C, H, W] -> [B, C*H*W]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Create a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, mut input: Tensor, _scratch: &mut Scratch) -> Tensor {
        self.cached_shape.clear();
        self.cached_shape.extend_from_slice(input.shape());
        let batch = input.shape()[0];
        let rest = input.len() / batch;
        input
            .reshape_in_place(&[batch, rest])
            .expect("flatten reshape cannot fail"); // lint:allow(panic) — element count is conserved
        input
    }

    fn backward(&mut self, mut grad_out: Tensor, _scratch: &mut Scratch) -> Tensor {
        grad_out
            .reshape_in_place(&self.cached_shape)
            .expect("Flatten::backward called before forward"); // lint:allow(panic) — backward-after-forward is the layer contract
        grad_out
    }

    fn flops_forward(&self) -> u64 {
        0
    }

    fn flops_backward(&self) -> u64 {
        0
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let mut s = Scratch::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(x, &mut s);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::new();
        let mut s = Scratch::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        r.forward(x, &mut s);
        let g = Tensor::from_vec(vec![5.0, 5.0], &[2]).unwrap();
        let gi = r.backward(g, &mut s);
        assert_eq!(gi.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn relu_zero_input_has_zero_gradient() {
        // subgradient convention: relu'(0) = 0
        let mut r = Relu::new();
        let mut s = Scratch::new();
        let x = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        r.forward(x, &mut s);
        let gi = r.backward(Tensor::from_vec(vec![1.0], &[1]).unwrap(), &mut s);
        assert_eq!(gi.as_slice(), &[0.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let mut s = Scratch::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(x.clone(), &mut s);
        assert_eq!(y.shape(), &[2, 12]);
        let back = f.backward(y, &mut s);
        assert_eq!(back.shape(), &[2, 3, 2, 2]);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn layers_have_no_params() {
        let r = Relu::new();
        let f = Flatten::new();
        assert_eq!(r.num_params(), 0);
        assert_eq!(f.num_params(), 0);
    }
}
