//! Reusable scratch arena for the training hot loop.
//!
//! Every forward/backward pass through a network needs short-lived buffers:
//! layer activations, im2col column matrices, gradient staging. Allocating
//! them per call dominated the local-step profile, so [`Scratch`] keeps two
//! free-lists — one of raw `Vec<f32>` buffers, one of whole [`Tensor`]s —
//! that are grown on first use and recycled forever after. A client's entire
//! local round (and, via the executor, *all* clients handled by one worker)
//! runs allocation-free once the pools are warm.
//!
//! ## Ownership rules
//!
//! * The arena lives inside [`crate::net::Sequential`]; layers receive
//!   `&mut Scratch` on each call and must return ("give") every buffer they
//!   consume that does not escape as the call's result.
//! * `take*` hands out **stale contents** — only consumers that overwrite
//!   every element they later read may use [`Scratch::take`] /
//!   [`Scratch::take_tensor`]. Scatter-accumulate consumers (`col2im_accum`,
//!   max-pool gradient routing) must use the `_zeroed` variants.
//! * Cloning a network must *not* share arenas across threads:
//!   `Sequential`'s manual `Clone` starts the copy with an empty arena.

use crate::tensor::Tensor;

/// A pool of reusable `f32` buffers and tensors.
///
/// Buffers are matched best-fit by capacity so a steady-state workload with a
/// fixed set of shapes settles into a fixed set of buffers and never touches
/// the allocator again.
#[derive(Debug, Default)]
pub struct Scratch {
    bufs: Vec<Vec<f32>>,
    tensors: Vec<Tensor>,
}

/// Pick the pool entry whose capacity fits `len` best: the smallest capacity
/// that is ≥ `len`, or — when none is large enough — the largest available
/// (growing the biggest buffer wastes the least total memory).
fn best_fit(caps: impl Iterator<Item = usize>, len: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (index, capacity)
    for (i, cap) in caps.enumerate() {
        let better = match best {
            None => true,
            Some((_, bc)) => {
                if bc >= len {
                    cap >= len && cap < bc
                } else {
                    cap > bc
                }
            }
        };
        if better {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| i)
}

impl Scratch {
    /// Create an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Take a buffer of exactly `len` elements with **unspecified contents**
    /// (stale data from a previous use). Only use when every element read
    /// later is overwritten first.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match best_fit(self.bufs.iter().map(Vec::capacity), len) {
            Some(i) => {
                let mut v = self.bufs.swap_remove(i);
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Take a buffer of `len` elements, all zero.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.take(len);
        v.fill(0.0);
        v
    }

    /// Return a buffer to the pool for reuse.
    pub fn give(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            self.bufs.push(v);
        }
    }

    /// Take a tensor of `shape` with **unspecified contents** (see
    /// [`Scratch::take`] for the overwrite contract).
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        match best_fit(self.tensors.iter().map(|t| t.as_slice().len()), len) {
            Some(i) => {
                let mut t = self.tensors.swap_remove(i);
                t.reuse(shape);
                t
            }
            None => Tensor::zeros(shape),
        }
    }

    /// Take a tensor of `shape`, all zero.
    pub fn take_tensor_zeroed(&mut self, shape: &[usize]) -> Tensor {
        let mut t = self.take_tensor(shape);
        t.as_mut_slice().fill(0.0);
        t
    }

    /// Take a tensor that is an element-wise copy of `src` (same shape).
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.take_tensor(src.shape());
        t.as_mut_slice().copy_from_slice(src.as_slice());
        t
    }

    /// Return a tensor to the pool for reuse.
    pub fn give_tensor(&mut self, t: Tensor) {
        if !t.is_empty() {
            self.tensors.push(t);
        }
    }

    /// Number of pooled entries (buffers + tensors); exposed for tests that
    /// assert steady-state pool sizes.
    pub fn pooled(&self) -> usize {
        self.bufs.len() + self.tensors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_the_same_allocation() {
        let mut s = Scratch::new();
        let mut v = s.take(100);
        v[0] = 7.0;
        let ptr = v.as_ptr();
        s.give(v);
        let v2 = s.take(80); // smaller fits in the same buffer
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(v2.len(), 80);
        s.give(v2);
        let v3 = s.take(100);
        assert_eq!(v3.as_ptr(), ptr);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut s = Scratch::new();
        let mut v = s.take(16);
        v.fill(3.5);
        s.give(v);
        let v2 = s.take_zeroed(16);
        assert!(v2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        s.give(vec![0.0; 1000]);
        s.give(vec![0.0; 10]);
        s.give(vec![0.0; 100]);
        let v = s.take(50);
        assert!(v.capacity() >= 50 && v.capacity() < 1000);
        assert_eq!(s.pooled(), 2);
    }

    #[test]
    fn best_fit_grows_largest_when_none_suffices() {
        let mut s = Scratch::new();
        s.give(vec![0.0; 10]);
        s.give(vec![0.0; 100]);
        let v = s.take(200);
        assert_eq!(v.len(), 200);
        // the 100-capacity buffer was grown; the 10-capacity one remains
        assert_eq!(s.pooled(), 1);
        assert!(s.bufs[0].capacity() <= 10 + 10); // small one untouched
    }

    #[test]
    fn tensor_round_trip_reuses_storage_and_reshapes() {
        let mut s = Scratch::new();
        let t = s.take_tensor(&[4, 8]);
        assert_eq!(t.shape(), &[4, 8]);
        let ptr = t.as_slice().as_ptr();
        s.give_tensor(t);
        let t2 = s.take_tensor(&[2, 3, 4]);
        assert_eq!(t2.shape(), &[2, 3, 4]);
        assert_eq!(t2.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut s = Scratch::new();
        let src = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let t = s.take_copy(&src);
        assert_eq!(t.shape(), src.shape());
        assert_eq!(t.as_slice(), src.as_slice());
    }

    #[test]
    fn take_tensor_zeroed_clears_stale_contents() {
        let mut s = Scratch::new();
        let mut t = s.take_tensor(&[3, 3]);
        t.as_mut_slice().fill(9.0);
        s.give_tensor(t);
        let t2 = s.take_tensor_zeroed(&[3, 3]);
        assert!(t2.as_slice().iter().all(|&x| x == 0.0));
    }
}
