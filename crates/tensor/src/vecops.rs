//! Fused flat-vector kernels for federated algorithms.
//!
//! Every regularizer in the paper is an O(|w|) vector operation on flat
//! parameter/gradient views ("attaching operations" in the paper's Appendix
//! A). These kernels fuse the passes so each runs in a single sweep over
//! memory — the ablation bench `bench_local_step` compares them against the
//! naive multi-pass formulations.

/// `y += alpha * x`.
///
/// # Panics
/// Debug-asserts equal lengths.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `out = a - b` (fresh allocation).
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Squared Euclidean distance `||a - b||^2` with f64 accumulation.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

/// Dot product with f64 accumulation.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64) * (y as f64))
        .sum()
}

/// L2 norm with f64 accumulation.
pub fn norm(a: &[f32]) -> f64 {
    a.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

/// FedProx attaching operation (fused single pass):
/// `g += mu * (w - anchor)`.
pub fn prox_adjust(g: &mut [f32], mu: f32, w: &[f32], anchor: &[f32]) {
    debug_assert_eq!(g.len(), w.len());
    debug_assert_eq!(g.len(), anchor.len());
    for ((gv, &wv), &av) in g.iter_mut().zip(w).zip(anchor) {
        *gv += mu * (wv - av);
    }
}

/// FedTrip attaching operation (Algorithm 1, line 7 — fused single pass):
/// `g += mu * ((w - global) + xi * (hist - w))`.
pub fn triplet_adjust(g: &mut [f32], mu: f32, xi: f32, w: &[f32], global: &[f32], hist: &[f32]) {
    debug_assert_eq!(g.len(), w.len());
    debug_assert_eq!(g.len(), global.len());
    debug_assert_eq!(g.len(), hist.len());
    for (((gv, &wv), &gl), &hv) in g.iter_mut().zip(w).zip(global).zip(hist) {
        *gv += mu * ((wv - gl) + xi * (hv - wv));
    }
}

/// Reference (unfused, allocation-heavy) formulation of
/// [`triplet_adjust`], kept for tests and the fusion ablation bench.
pub fn triplet_adjust_naive(
    g: &mut [f32],
    mu: f32,
    xi: f32,
    w: &[f32],
    global: &[f32],
    hist: &[f32],
) {
    let d1 = sub(w, global);
    let d2 = sub(hist, w);
    let mut term = d1;
    for (t, &d) in term.iter_mut().zip(&d2) {
        *t += xi * d;
    }
    axpy(g, mu, &term);
}

/// Weighted average of parameter vectors: `out = sum_k weights[k] * inputs[k]`.
///
/// This is the server aggregation `w_t = Σ a_k w_k` (paper Eq. 2).
///
/// # Panics
/// Panics when `inputs` is empty or lengths mismatch.
pub fn weighted_average(inputs: &[&[f32]], weights: &[f64]) -> Vec<f32> {
    assert!(!inputs.is_empty(), "weighted_average of nothing");
    assert_eq!(inputs.len(), weights.len(), "weights/inputs mismatch");
    let n = inputs[0].len();
    // accumulate in f64: aggregation error compounds over hundreds of rounds
    let mut acc = vec![0.0f64; n];
    for (input, &wt) in inputs.iter().zip(weights) {
        assert_eq!(input.len(), n, "parameter vector length mismatch");
        for (a, &v) in acc.iter_mut().zip(*input) {
            *a += wt * v as f64;
        }
    }
    acc.into_iter().map(|v| v as f32).collect()
}

/// In-place linear interpolation: `a = (1 - t) * a + t * b`.
pub fn lerp(a: &mut [f32], b: &[f32], t: f32) {
    debug_assert_eq!(a.len(), b.len());
    for (av, &bv) in a.iter_mut().zip(b) {
        *av = (1.0 - t) * *av + t * bv;
    }
}

/// Cosine similarity between two vectors (used by MOON's contrastive loss).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 2.0];
        axpy(&mut y, 2.0, &[10.0, 20.0]);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn sq_dist_and_norm() {
        assert_eq!(sq_dist(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn prox_adjust_pulls_toward_anchor() {
        // w above anchor -> gradient increases -> SGD pushes w down toward anchor
        let mut g = vec![0.0f32];
        prox_adjust(&mut g, 0.5, &[2.0], &[1.0]);
        assert_eq!(g, vec![0.5]);
    }

    #[test]
    fn triplet_fused_matches_naive() {
        let w = [1.0f32, -2.0, 0.5, 3.0];
        let glob = [0.5f32, -1.0, 0.0, 2.0];
        let hist = [2.0f32, -3.0, 1.0, 4.0];
        let mut g1 = vec![0.1f32, 0.2, 0.3, 0.4];
        let mut g2 = g1.clone();
        triplet_adjust(&mut g1, 0.4, 0.7, &w, &glob, &hist);
        triplet_adjust_naive(&mut g2, 0.4, 0.7, &w, &glob, &hist);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn triplet_with_zero_xi_is_prox() {
        let w = [1.0f32, -2.0];
        let glob = [0.0f32, 0.0];
        let hist = [9.0f32, 9.0];
        let mut g1 = vec![0.0f32; 2];
        let mut g2 = vec![0.0f32; 2];
        triplet_adjust(&mut g1, 0.3, 0.0, &w, &glob, &hist);
        prox_adjust(&mut g2, 0.3, &w, &glob);
        assert_eq!(g1, g2);
    }

    #[test]
    fn weighted_average_is_convex_combination() {
        let a = vec![0.0f32, 10.0];
        let b = vec![10.0f32, 0.0];
        let avg = weighted_average(&[&a, &b], &[0.25, 0.75]);
        assert_eq!(avg, vec![7.5, 2.5]);
    }

    #[test]
    fn weighted_average_identity_for_single_input() {
        let a = vec![1.0f32, 2.0, 3.0];
        let avg = weighted_average(&[&a], &[1.0]);
        assert_eq!(avg, a);
    }

    #[test]
    #[should_panic(expected = "weighted_average of nothing")]
    fn weighted_average_rejects_empty() {
        let _ = weighted_average(&[], &[]);
    }

    #[test]
    fn lerp_endpoints() {
        let mut a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 6.0];
        let orig = a.clone();
        lerp(&mut a, &b, 0.0);
        assert_eq!(a, orig);
        lerp(&mut a, &b, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn cosine_similarity_bounds() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
