//! Local optimizers with fused adjusted-gradient sweeps.
//!
//! The paper (§V-A) trains with SGD-with-momentum (lr 0.01, momentum 0.9)
//! for FedAvg / FedProx / MOON / FedTrip and plain SGD for SlowMo / FedDyn.
//!
//! Every federated algorithm in this workspace perturbs the local gradient
//! before the descent step — FedProx adds a proximal pull, FedTrip its
//! triplet attraction/repulsion, FedDyn a dynamic regularizer, SCAFFOLD
//! control variates, MimeLite a server-statistic interpolation. Those used
//! to run as a separate flatten → hook → scatter pass over cloned parameter
//! and gradient vectors (three full-model allocations plus three extra
//! memory sweeps per local step). [`GradAdjust`] fuses the adjustment into
//! the optimizer update itself: one pass over the parameter blocks, zero
//! allocation, and the raw gradients in the network are left untouched.
//!
//! Numerically the fusion is exact: each adjusted gradient element is the
//! same f32 expression, in the same order, as the old vecops hook applied
//! to the element — followed by the same update — so fused and unfused
//! trajectories are bit-identical.

use crate::net::Sequential;
use serde::{Deserialize, Serialize};

/// Learning-rate schedule applied across communication rounds.
///
/// The paper trains with a fixed rate (0.01); the schedules are the
/// extension its §VI future work invites and are exercised by the
/// `flrun` CLI and ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// The paper's setting: a fixed learning rate.
    Constant,
    /// Multiply the rate by `factor` every `every` rounds.
    StepDecay {
        /// Rounds between decays.
        every: usize,
        /// Multiplicative factor per decay (in `(0, 1]`).
        factor: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` rounds.
    Cosine {
        /// Rounds over which to anneal.
        total: usize,
        /// Terminal learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate in effect at a (1-based) round.
    ///
    /// # Panics
    /// Panics on invalid schedule parameters (zero period, factor outside
    /// `(0, 1]`, zero total).
    pub fn lr_at(&self, base_lr: f32, round: usize) -> f32 {
        let r = round.max(1) - 1; // 0-based rounds elapsed
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "StepDecay period must be positive");
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "StepDecay factor must be in (0,1]"
                );
                base_lr * factor.powi((r / every) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                assert!(total > 0, "Cosine total must be positive");
                let t = (r as f32 / total as f32).min(1.0);
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// An algorithm-specific gradient adjustment fused into the optimizer step.
///
/// Companion vectors are borrowed flat views (indexed by the same offsets
/// as [`Sequential::params_flat`]) and must have exactly `num_params`
/// elements. The adjusted gradient `h` replaces the raw gradient `g` inside
/// the update only — the network's accumulated gradient buffers are never
/// modified.
#[derive(Debug, Clone, Copy)]
pub enum GradAdjust<'a> {
    /// Use the raw gradient (FedAvg / SlowMo / MOON).
    None,
    /// FedProx: `h = g + mu * (w - anchor)`.
    Prox {
        /// Proximal strength.
        mu: f32,
        /// Round-start global parameters.
        anchor: &'a [f32],
    },
    /// FedTrip: `h = g + mu * ((w - global) + xi * (hist - w))`.
    Triplet {
        /// Proximal strength.
        mu: f32,
        /// Repulsion weight against the historical model.
        xi: f32,
        /// Round-start global parameters (positive anchor).
        global: &'a [f32],
        /// Previous-round local parameters (negative anchor).
        hist: &'a [f32],
    },
    /// FedDyn: `h = g + (-lambda + alpha * (w - global))`.
    DynReg {
        /// Regularization strength.
        alpha: f32,
        /// Client's accumulated linear-penalty state.
        lambda: &'a [f32],
        /// Round-start global parameters.
        global: &'a [f32],
    },
    /// SCAFFOLD: `h = g + (c_server - c_client)`.
    ControlVariates {
        /// Server control variate.
        c_server: &'a [f32],
        /// Client control variate.
        c_client: &'a [f32],
    },
    /// MimeLite: `h = (1 - beta) * g + beta * stat`.
    Interp {
        /// Interpolation weight toward the server statistic.
        beta: f32,
        /// Server-held full-batch gradient statistic.
        stat: &'a [f32],
    },
}

impl GradAdjust<'_> {
    /// Validate that every companion vector covers all `n` parameters.
    fn check_sizes(&self, n: usize) {
        let ck = |name: &str, s: &[f32]| {
            assert_eq!(s.len(), n, "GradAdjust::{name}: companion size mismatch");
        };
        match *self {
            GradAdjust::None => {}
            GradAdjust::Prox { anchor, .. } => ck("Prox", anchor),
            GradAdjust::Triplet { global, hist, .. } => {
                ck("Triplet", global);
                ck("Triplet", hist);
            }
            GradAdjust::DynReg { lambda, global, .. } => {
                ck("DynReg", lambda);
                ck("DynReg", global);
            }
            GradAdjust::ControlVariates { c_server, c_client } => {
                ck("ControlVariates", c_server);
                ck("ControlVariates", c_client);
            }
            GradAdjust::Interp { stat, .. } => ck("Interp", stat),
        }
    }
}

/// A first-order optimizer stepping a [`Sequential`] in place.
pub trait Optimizer: Send {
    /// Apply one update step, adjusting each gradient element on the fly.
    ///
    /// The network's gradient buffers are read-only here; the adjustment is
    /// applied inside the update expression.
    fn step_adjusted(&mut self, net: &mut Sequential, adjust: &GradAdjust<'_>);

    /// Apply one plain update step using the accumulated gradients.
    fn step(&mut self, net: &mut Sequential) {
        self.step_adjusted(net, &GradAdjust::None);
    }

    /// Clear internal state (momentum buffers).
    fn reset(&mut self);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Clone into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Optimizer>;
}

impl Clone for Box<dyn Optimizer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One fused plain-SGD sweep: `w -= lr * adj(i, w, g)`.
///
/// `adj` is monomorphized per adjustment variant so the inner loop carries
/// no per-element branching on the adjustment kind.
#[inline]
fn sgd_sweep<F: FnMut(usize, f32, f32) -> f32>(net: &mut Sequential, lr: f32, mut adj: F) {
    net.for_each_param_grad(&mut |off, p, g| {
        for (i, (pv, &gv)) in p.iter_mut().zip(g.iter()).enumerate() {
            let h = adj(off + i, *pv, gv);
            *pv -= lr * h;
        }
    });
}

/// One fused momentum sweep: `v = m * v + adj(i, w, g); w -= lr * v`.
#[inline]
fn momentum_sweep<F: FnMut(usize, f32, f32) -> f32>(
    net: &mut Sequential,
    lr: f32,
    momentum: f32,
    velocity: &mut [f32],
    mut adj: F,
) {
    net.for_each_param_grad(&mut |off, p, g| {
        let v = &mut velocity[off..off + p.len()];
        for (i, ((pv, &gv), vv)) in p.iter_mut().zip(g.iter()).zip(v.iter_mut()).enumerate() {
            let h = adj(off + i, *pv, gv);
            *vv = momentum * *vv + h;
            *pv -= lr * *vv;
        }
    });
}

/// Plain stochastic gradient descent: `w -= lr * h`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Create plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step_adjusted(&mut self, net: &mut Sequential, adjust: &GradAdjust<'_>) {
        adjust.check_sizes(net.num_params());
        let lr = self.lr;
        match *adjust {
            GradAdjust::None => sgd_sweep(net, lr, |_, _, g| g),
            GradAdjust::Prox { mu, anchor } => {
                sgd_sweep(net, lr, |i, w, g| g + mu * (w - anchor[i]));
            }
            GradAdjust::Triplet {
                mu,
                xi,
                global,
                hist,
            } => {
                sgd_sweep(net, lr, |i, w, g| {
                    g + mu * ((w - global[i]) + xi * (hist[i] - w))
                });
            }
            GradAdjust::DynReg {
                alpha,
                lambda,
                global,
            } => {
                sgd_sweep(net, lr, |i, w, g| {
                    g + (-lambda[i] + alpha * (w - global[i]))
                });
            }
            GradAdjust::ControlVariates { c_server, c_client } => {
                sgd_sweep(net, lr, |i, _, g| g + (c_server[i] - c_client[i]));
            }
            GradAdjust::Interp { beta, stat } => {
                sgd_sweep(net, lr, |i, _, g| (1.0 - beta) * g + beta * stat[i]);
            }
        }
    }

    fn reset(&mut self) {}

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn clone_box(&self) -> Box<dyn Optimizer> {
        Box::new(self.clone())
    }
}

/// SGD with (PyTorch-convention) momentum:
/// `v = m * v + h; w -= lr * v`.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    /// Flat velocity buffer, one element per parameter (lazily sized).
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Create SGD-with-momentum. The paper default is `lr=0.01, m=0.9`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        SgdMomentum {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn step_adjusted(&mut self, net: &mut Sequential, adjust: &GradAdjust<'_>) {
        let n = net.num_params();
        adjust.check_sizes(n);
        if self.velocity.len() != n {
            // `clear + resize` keeps the allocation across `reset()` cycles
            self.velocity.clear();
            self.velocity.resize(n, 0.0);
        }
        let lr = self.lr;
        let m = self.momentum;
        let vel = self.velocity.as_mut_slice();
        match *adjust {
            GradAdjust::None => momentum_sweep(net, lr, m, vel, |_, _, g| g),
            GradAdjust::Prox { mu, anchor } => {
                momentum_sweep(net, lr, m, vel, |i, w, g| g + mu * (w - anchor[i]));
            }
            GradAdjust::Triplet {
                mu,
                xi,
                global,
                hist,
            } => {
                momentum_sweep(net, lr, m, vel, |i, w, g| {
                    g + mu * ((w - global[i]) + xi * (hist[i] - w))
                });
            }
            GradAdjust::DynReg {
                alpha,
                lambda,
                global,
            } => {
                momentum_sweep(net, lr, m, vel, |i, w, g| {
                    g + (-lambda[i] + alpha * (w - global[i]))
                });
            }
            GradAdjust::ControlVariates { c_server, c_client } => {
                momentum_sweep(net, lr, m, vel, |i, _, g| g + (c_server[i] - c_client[i]));
            }
            GradAdjust::Interp { beta, stat } => {
                momentum_sweep(net, lr, m, vel, |i, _, g| (1.0 - beta) * g + beta * stat[i]);
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn clone_box(&self) -> Box<dyn Optimizer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::rng::Prng;
    use crate::vecops;

    fn one_layer_net(rng: &mut Prng) -> Sequential {
        Sequential::new(&[2]).with(Dense::new(2, 2, rng))
    }

    #[test]
    fn sgd_step_is_w_minus_lr_g() {
        let mut rng = Prng::seed_from_u64(1);
        let mut net = one_layer_net(&mut rng);
        let w0 = net.params_flat();
        net.zero_grads();
        let g = vec![1.0f32; net.num_params()];
        net.set_grads_flat(&g);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut net);
        let w1 = net.params_flat();
        for (a, b) in w0.iter().zip(&w1) {
            assert!((a - 0.1 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates_across_steps() {
        let mut rng = Prng::seed_from_u64(2);
        let mut net = one_layer_net(&mut rng);
        let w0 = net.params_flat();
        let g = vec![1.0f32; net.num_params()];
        let mut opt = SgdMomentum::new(0.1, 0.9);
        // step 1: v=1, w -= 0.1
        net.set_grads_flat(&g);
        opt.step(&mut net);
        // step 2: v=1.9, w -= 0.19
        net.set_grads_flat(&g);
        opt.step(&mut net);
        let w2 = net.params_flat();
        for (a, b) in w0.iter().zip(&w2) {
            assert!((a - 0.1 - 0.19 - b).abs() < 1e-5, "{a} {b}");
        }
    }

    #[test]
    fn momentum_reset_clears_velocity() {
        let mut rng = Prng::seed_from_u64(3);
        let mut net = one_layer_net(&mut rng);
        let g = vec![1.0f32; net.num_params()];
        let mut opt = SgdMomentum::new(0.1, 0.9);
        net.set_grads_flat(&g);
        opt.step(&mut net);
        opt.reset();
        let w1 = net.params_flat();
        net.set_grads_flat(&g);
        opt.step(&mut net);
        let w2 = net.params_flat();
        // after reset the step is again lr * g exactly
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - 0.1 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_momentum_equals_plain_sgd() {
        let mut rng = Prng::seed_from_u64(4);
        let mut net_a = one_layer_net(&mut rng);
        let mut net_b = net_a.clone();
        let g: Vec<f32> = (0..net_a.num_params()).map(|i| i as f32 * 0.01).collect();
        net_a.set_grads_flat(&g);
        net_b.set_grads_flat(&g);
        Sgd::new(0.05).step(&mut net_a);
        SgdMomentum::new(0.05, 0.0).step(&mut net_b);
        assert_eq!(net_a.params_flat(), net_b.params_flat());
    }

    /// Reference for the fused sweeps: apply `hook` to a flat gradient
    /// clone (the pre-fusion data path), scatter it back, plain-step, and
    /// restore the original grads.
    fn hook_then_step(
        net: &mut Sequential,
        opt: &mut dyn Optimizer,
        hook: impl Fn(&mut Vec<f32>, &[f32]),
    ) {
        let params = net.params_flat();
        let mut grads = net.grads_flat();
        let saved = grads.clone();
        hook(&mut grads, &params);
        net.set_grads_flat(&grads);
        opt.step(net);
        net.set_grads_flat(&saved);
    }

    /// Shared fixture: a net with pseudo-random params/grads plus companion
    /// vectors, returned as (net, grads, companion-a, companion-b).
    fn fused_fixture(seed: u64) -> (Sequential, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = Prng::seed_from_u64(seed);
        let net = Sequential::new(&[3])
            .with(Dense::new(3, 4, &mut rng))
            .with(Dense::new(4, 2, &mut rng));
        let n = net.num_params();
        let g: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let a: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        (net, g, a, b)
    }

    #[test]
    fn fused_prox_matches_hook_then_step_bitwise() {
        for (mk_opt, seed) in [
            (
                (|| Box::new(Sgd::new(0.05)) as Box<dyn Optimizer>) as fn() -> Box<dyn Optimizer>,
                7u64,
            ),
            (|| Box::new(SgdMomentum::new(0.05, 0.9)), 8),
        ] {
            let (mut net, g, anchor, _) = fused_fixture(seed);
            let mut reference = net.clone();
            net.set_grads_flat(&g);
            reference.set_grads_flat(&g);
            let mu = 0.25f32;

            let mut opt_f = mk_opt();
            opt_f.step_adjusted(
                &mut net,
                &GradAdjust::Prox {
                    mu,
                    anchor: &anchor,
                },
            );

            let mut opt_r = mk_opt();
            hook_then_step(&mut reference, opt_r.as_mut(), |gr, w| {
                vecops::prox_adjust(gr, mu, w, &anchor);
            });

            assert_eq!(net.params_flat(), reference.params_flat());
            // fused path must leave the raw gradients untouched
            assert_eq!(net.grads_flat(), g);
        }
    }

    #[test]
    fn fused_triplet_matches_hook_then_step_bitwise() {
        let (mut net, g, global, hist) = fused_fixture(9);
        let mut reference = net.clone();
        net.set_grads_flat(&g);
        reference.set_grads_flat(&g);
        let (mu, xi) = (0.5f32, 0.125f32);

        let mut opt_f = SgdMomentum::new(0.01, 0.9);
        opt_f.step_adjusted(
            &mut net,
            &GradAdjust::Triplet {
                mu,
                xi,
                global: &global,
                hist: &hist,
            },
        );

        let mut opt_r = SgdMomentum::new(0.01, 0.9);
        hook_then_step(&mut reference, &mut opt_r, |gr, w| {
            vecops::triplet_adjust(gr, mu, xi, w, &global, &hist);
        });

        assert_eq!(net.params_flat(), reference.params_flat());
    }

    #[test]
    fn fused_dyn_reg_matches_hook_then_step_bitwise() {
        let (mut net, g, lambda, global) = fused_fixture(10);
        let mut reference = net.clone();
        net.set_grads_flat(&g);
        reference.set_grads_flat(&g);
        let alpha = 0.1f32;

        let mut opt_f = Sgd::new(0.05);
        opt_f.step_adjusted(
            &mut net,
            &GradAdjust::DynReg {
                alpha,
                lambda: &lambda,
                global: &global,
            },
        );

        let mut opt_r = Sgd::new(0.05);
        hook_then_step(&mut reference, &mut opt_r, |gr, w| {
            for (i, gv) in gr.iter_mut().enumerate() {
                *gv += -lambda[i] + alpha * (w[i] - global[i]);
            }
        });

        assert_eq!(net.params_flat(), reference.params_flat());
    }

    #[test]
    fn fused_control_variates_matches_hook_then_step_bitwise() {
        let (mut net, g, c_server, c_client) = fused_fixture(11);
        let mut reference = net.clone();
        net.set_grads_flat(&g);
        reference.set_grads_flat(&g);

        let mut opt_f = Sgd::new(0.02);
        opt_f.step_adjusted(
            &mut net,
            &GradAdjust::ControlVariates {
                c_server: &c_server,
                c_client: &c_client,
            },
        );

        let mut opt_r = Sgd::new(0.02);
        hook_then_step(&mut reference, &mut opt_r, |gr, _| {
            for (i, gv) in gr.iter_mut().enumerate() {
                *gv += c_server[i] - c_client[i];
            }
        });

        assert_eq!(net.params_flat(), reference.params_flat());
    }

    #[test]
    fn fused_interp_matches_hook_then_step_bitwise() {
        let (mut net, g, stat, _) = fused_fixture(12);
        let mut reference = net.clone();
        net.set_grads_flat(&g);
        reference.set_grads_flat(&g);
        let beta = 0.3f32;

        let mut opt_f = SgdMomentum::new(0.01, 0.9);
        opt_f.step_adjusted(&mut net, &GradAdjust::Interp { beta, stat: &stat });

        let mut opt_r = SgdMomentum::new(0.01, 0.9);
        hook_then_step(&mut reference, &mut opt_r, |gr, _| {
            for (i, gv) in gr.iter_mut().enumerate() {
                *gv = (1.0 - beta) * *gv + beta * stat[i];
            }
        });

        assert_eq!(net.params_flat(), reference.params_flat());
    }

    #[test]
    #[should_panic(expected = "companion size mismatch")]
    fn rejects_short_companion_vector() {
        let mut rng = Prng::seed_from_u64(13);
        let mut net = one_layer_net(&mut rng);
        let short = vec![0.0f32; net.num_params() - 1];
        Sgd::new(0.1).step_adjusted(
            &mut net,
            &GradAdjust::Prox {
                mu: 0.1,
                anchor: &short,
            },
        );
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn constant_schedule_is_identity() {
        for r in [1, 10, 1000] {
            assert_eq!(LrSchedule::Constant.lr_at(0.01, r), 0.01);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.lr_at(0.4, 1), 0.4);
        assert_eq!(s.lr_at(0.4, 10), 0.4);
        assert_eq!(s.lr_at(0.4, 11), 0.2);
        assert_eq!(s.lr_at(0.4, 21), 0.1);
    }

    #[test]
    fn cosine_hits_endpoints_and_is_monotone() {
        let s = LrSchedule::Cosine {
            total: 100,
            min_lr: 0.001,
        };
        assert!((s.lr_at(0.1, 1) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(0.1, 101) - 0.001).abs() < 1e-7);
        // clamps past the end
        assert!((s.lr_at(0.1, 500) - 0.001).abs() < 1e-7);
        let mut prev = f32::INFINITY;
        for r in 1..=101 {
            let lr = s.lr_at(0.1, r);
            assert!(lr <= prev + 1e-9, "cosine not monotone at round {r}");
            prev = lr;
        }
    }

    #[test]
    #[should_panic(expected = "period")]
    fn step_decay_rejects_zero_period() {
        let _ = LrSchedule::StepDecay {
            every: 0,
            factor: 0.5,
        }
        .lr_at(0.1, 5);
    }
}
