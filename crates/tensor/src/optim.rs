//! Local optimizers.
//!
//! The paper (§V-A) trains with SGD-with-momentum (lr 0.01, momentum 0.9)
//! for FedAvg / FedProx / MOON / FedTrip and plain SGD for SlowMo / FedDyn.
//! Both are implemented against [`Sequential`]'s flat (param, grad) pairs.

use crate::net::Sequential;
use serde::{Deserialize, Serialize};

/// Learning-rate schedule applied across communication rounds.
///
/// The paper trains with a fixed rate (0.01); the schedules are the
/// extension its §VI future work invites and are exercised by the
/// `flrun` CLI and ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// The paper's setting: a fixed learning rate.
    Constant,
    /// Multiply the rate by `factor` every `every` rounds.
    StepDecay {
        /// Rounds between decays.
        every: usize,
        /// Multiplicative factor per decay (in `(0, 1]`).
        factor: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` rounds.
    Cosine {
        /// Rounds over which to anneal.
        total: usize,
        /// Terminal learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate in effect at a (1-based) round.
    ///
    /// # Panics
    /// Panics on invalid schedule parameters (zero period, factor outside
    /// `(0, 1]`, zero total).
    pub fn lr_at(&self, base_lr: f32, round: usize) -> f32 {
        let r = round.max(1) - 1; // 0-based rounds elapsed
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "StepDecay period must be positive");
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "StepDecay factor must be in (0,1]"
                );
                base_lr * factor.powi((r / every) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                assert!(total > 0, "Cosine total must be positive");
                let t = (r as f32 / total as f32).min(1.0);
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// A first-order optimizer stepping a [`Sequential`] in place.
pub trait Optimizer: Send {
    /// Apply one update step using the currently accumulated gradients.
    fn step(&mut self, net: &mut Sequential);

    /// Clear internal state (momentum buffers).
    fn reset(&mut self);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Clone into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Optimizer>;
}

impl Clone for Box<dyn Optimizer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Plain stochastic gradient descent: `w -= lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Create plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        for (p, g) in net.params_and_grads() {
            for (pv, gv) in p.iter_mut().zip(g) {
                *pv -= self.lr * gv;
            }
        }
    }

    fn reset(&mut self) {}

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn clone_box(&self) -> Box<dyn Optimizer> {
        Box::new(self.clone())
    }
}

/// SGD with (PyTorch-convention) momentum:
/// `v = m * v + g; w -= lr * v`.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl SgdMomentum {
    /// Create SGD-with-momentum. The paper default is `lr=0.01, m=0.9`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        SgdMomentum {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, net: &mut Sequential) {
        let pairs = net.params_and_grads();
        if self.velocity.len() != pairs.len() {
            self.velocity = pairs.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        for ((p, g), v) in pairs.into_iter().zip(&mut self.velocity) {
            debug_assert_eq!(p.len(), v.len(), "velocity buffer drift");
            for ((pv, gv), vv) in p.iter_mut().zip(g).zip(v.iter_mut()) {
                *vv = self.momentum * *vv + gv;
                *pv -= self.lr * *vv;
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn clone_box(&self) -> Box<dyn Optimizer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::rng::Prng;

    fn one_layer_net(rng: &mut Prng) -> Sequential {
        Sequential::new(&[2]).with(Dense::new(2, 2, rng))
    }

    #[test]
    fn sgd_step_is_w_minus_lr_g() {
        let mut rng = Prng::seed_from_u64(1);
        let mut net = one_layer_net(&mut rng);
        let w0 = net.params_flat();
        net.zero_grads();
        let g = vec![1.0f32; net.num_params()];
        net.set_grads_flat(&g);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut net);
        let w1 = net.params_flat();
        for (a, b) in w0.iter().zip(&w1) {
            assert!((a - 0.1 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates_across_steps() {
        let mut rng = Prng::seed_from_u64(2);
        let mut net = one_layer_net(&mut rng);
        let w0 = net.params_flat();
        let g = vec![1.0f32; net.num_params()];
        let mut opt = SgdMomentum::new(0.1, 0.9);
        // step 1: v=1, w -= 0.1
        net.set_grads_flat(&g);
        opt.step(&mut net);
        // step 2: v=1.9, w -= 0.19
        net.set_grads_flat(&g);
        opt.step(&mut net);
        let w2 = net.params_flat();
        for (a, b) in w0.iter().zip(&w2) {
            assert!((a - 0.1 - 0.19 - b).abs() < 1e-5, "{a} {b}");
        }
    }

    #[test]
    fn momentum_reset_clears_velocity() {
        let mut rng = Prng::seed_from_u64(3);
        let mut net = one_layer_net(&mut rng);
        let g = vec![1.0f32; net.num_params()];
        let mut opt = SgdMomentum::new(0.1, 0.9);
        net.set_grads_flat(&g);
        opt.step(&mut net);
        opt.reset();
        let w1 = net.params_flat();
        net.set_grads_flat(&g);
        opt.step(&mut net);
        let w2 = net.params_flat();
        // after reset the step is again lr * g exactly
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - 0.1 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_momentum_equals_plain_sgd() {
        let mut rng = Prng::seed_from_u64(4);
        let mut net_a = one_layer_net(&mut rng);
        let mut net_b = net_a.clone();
        let g: Vec<f32> = (0..net_a.num_params()).map(|i| i as f32 * 0.01).collect();
        net_a.set_grads_flat(&g);
        net_b.set_grads_flat(&g);
        Sgd::new(0.05).step(&mut net_a);
        SgdMomentum::new(0.05, 0.0).step(&mut net_b);
        assert_eq!(net_a.params_flat(), net_b.params_flat());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn constant_schedule_is_identity() {
        for r in [1, 10, 1000] {
            assert_eq!(LrSchedule::Constant.lr_at(0.01, r), 0.01);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.lr_at(0.4, 1), 0.4);
        assert_eq!(s.lr_at(0.4, 10), 0.4);
        assert_eq!(s.lr_at(0.4, 11), 0.2);
        assert_eq!(s.lr_at(0.4, 21), 0.1);
    }

    #[test]
    fn cosine_hits_endpoints_and_is_monotone() {
        let s = LrSchedule::Cosine {
            total: 100,
            min_lr: 0.001,
        };
        assert!((s.lr_at(0.1, 1) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(0.1, 101) - 0.001).abs() < 1e-7);
        // clamps past the end
        assert!((s.lr_at(0.1, 500) - 0.001).abs() < 1e-7);
        let mut prev = f32::INFINITY;
        for r in 1..=101 {
            let lr = s.lr_at(0.1, r);
            assert!(lr <= prev + 1e-9, "cosine not monotone at round {r}");
            prev = lr;
        }
    }

    #[test]
    #[should_panic(expected = "period")]
    fn step_decay_rejects_zero_period() {
        let _ = LrSchedule::StepDecay {
            every: 0,
            factor: 0.5,
        }
        .lr_at(0.1, 5);
    }
}
