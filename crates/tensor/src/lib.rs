//! # fedtrip-tensor
//!
//! A small, self-contained CPU tensor and neural-network substrate built for
//! the FedTrip reproduction. The paper trains MLP / CNN / AlexNet models with
//! SGD(+momentum) inside a federated simulation; everything those training
//! loops need lives here:
//!
//! * [`Tensor`] — a dense, row-major `f32` n-d array with the elementwise and
//!   reduction operations used by layers and federated algorithms.
//! * [`linalg`] — a packed, register-tiled SGEMM (BLIS-style cache blocking
//!   with a runtime-dispatched AVX2 micro-kernel) plus a tiled transpose.
//! * [`layers`] — forward/backward layers (dense, conv2d, max-pool, ReLU,
//!   flatten, softmax-cross-entropy) with analytic FLOP accounting.
//! * [`net`] — [`net::Sequential`], a feed-forward network whose parameters
//!   can be viewed as a single flat vector (the representation federated
//!   algorithms operate on).
//! * [`optim`] — SGD and SGD-with-momentum, the two optimizers used in the
//!   paper's experiments (§V-A).
//! * [`vecops`] — fused vector kernels for the regularizers (FedProx /
//!   FedTrip / FedDyn all reduce to axpy-style updates over `&[f32]`).
//! * [`compress`] — affine integer quantization and top-k magnitude
//!   selection, the building blocks of the communication codecs in
//!   `fedtrip_core::compression`.
//! * [`rng`] — deterministic, splittable random number helpers so that
//!   parallel client training stays bit-reproducible.
//!
//! The crate deliberately avoids any autograd graph: every layer implements
//! an explicit `backward`, which keeps the computational cost model exact —
//! the paper's evaluation (Tables V and VIII) is phrased in FLOPs of forward,
//! backward and "attaching" operations, and we account for each of them
//! analytically.

pub mod compress;
pub mod conv;
pub mod layers;
pub mod linalg;
pub mod net;
pub mod optim;
pub mod rng;
pub mod rng_tags;
pub mod scratch;
pub mod tensor;
pub mod vecops;

pub use net::Sequential;
pub use optim::{GradAdjust, Optimizer, Sgd, SgdMomentum};
pub use scratch::Scratch;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the failed operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
    },
    /// A shape with zero or inconsistent element count was supplied.
    InvalidShape(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
