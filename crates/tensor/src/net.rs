//! Feed-forward network container.
//!
//! [`Sequential`] chains layers, exposes the flat-parameter view that every
//! federated algorithm operates on, and supports the *feature tap* required
//! by representation-based methods (MOON needs the penultimate activation of
//! three different models plus a gradient injection point at that tap).

use crate::layers::{Layer, SoftmaxCrossEntropy};
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Visitor over `(flat offset, params, grads)` parameter blocks — see
/// [`Sequential::for_each_param_grad`].
pub type ParamGradVisitor<'a> = dyn FnMut(usize, &mut [f32], &[f32]) + 'a;

/// A feed-forward network: an ordered stack of layers plus a softmax
/// cross-entropy head.
///
/// The network owns a [`Scratch`] arena that all layer passes draw their
/// working buffers from; after the first batch, forward/backward/train-step
/// sweeps run without heap allocation.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Vec<usize>,
    loss: SoftmaxCrossEntropy,
    /// Index of the layer whose *output* is the feature representation.
    feature_layer: Option<usize>,
    /// Cached per-layer input element counts (per sample), for FLOPs.
    layer_input_elems: Vec<usize>,
    /// Reusable buffer arena for the hot loop.
    scratch: Scratch,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        // the clone gets a fresh, empty arena: scratch buffers are cheap to
        // re-grow and must never be shared across rayon workers
        Sequential {
            layers: self.layers.clone(),
            input_shape: self.input_shape.clone(),
            loss: self.loss.clone(),
            feature_layer: self.feature_layer,
            layer_input_elems: self.layer_input_elems.clone(),
            scratch: Scratch::new(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sequential({} layers, {} params, input {:?})",
            self.layers.len(),
            self.num_params(),
            self.input_shape
        )
    }
}

impl Sequential {
    /// Create an empty network for inputs of the given per-sample shape
    /// (e.g. `[1, 28, 28]` for grayscale images, `[784]` for flat vectors).
    pub fn new(input_shape: &[usize]) -> Self {
        assert!(!input_shape.is_empty(), "input shape cannot be empty");
        Sequential {
            layers: Vec::new(),
            input_shape: input_shape.to_vec(),
            loss: SoftmaxCrossEntropy::new(),
            feature_layer: None,
            layer_input_elems: Vec::new(),
            scratch: Scratch::new(),
        }
    }

    /// Append a layer (builder style).
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        let in_shape = self.current_output_shape();
        self.layer_input_elems.push(in_shape.iter().product());
        self.layers.push(layer);
    }

    /// Mark the most recently added layer's output as the network's feature
    /// representation (builder style).
    ///
    /// # Panics
    /// Panics when called on an empty network.
    pub fn mark_features(mut self) -> Self {
        assert!(!self.layers.is_empty(), "no layer to mark as features");
        self.feature_layer = Some(self.layers.len() - 1);
        self
    }

    /// Index of the feature layer, if one was marked.
    pub fn feature_layer(&self) -> Option<usize> {
        self.feature_layer
    }

    /// Per-sample shape of the network input.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-sample shape of the network output.
    pub fn output_shape(&self) -> Vec<usize> {
        self.current_output_shape()
    }

    fn current_output_shape(&self) -> Vec<usize> {
        let mut shape = self.input_shape.clone();
        for l in &self.layers {
            shape = l.output_shape(&shape);
        }
        shape
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Run a forward pass, returning logits `[batch, classes]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let Sequential {
            layers, scratch, ..
        } = self;
        let mut a = scratch.take_copy(x);
        for l in layers.iter_mut() {
            a = l.forward(a, scratch);
        }
        a
    }

    /// Forward pass that also captures the feature-tap activation.
    ///
    /// # Panics
    /// Panics if no feature layer was marked.
    pub fn forward_with_features(&mut self, x: &Tensor) -> (Tensor, Tensor) {
        let fi = self
            .feature_layer
            .expect("forward_with_features: no feature layer marked"); // lint:allow(panic) — documented precondition: a feature layer is marked
        let Sequential {
            layers, scratch, ..
        } = self;
        let mut a = scratch.take_copy(x);
        let mut features = None;
        for (i, l) in layers.iter_mut().enumerate() {
            a = l.forward(a, scratch);
            if i == fi {
                features = Some(a.clone());
            }
        }
        (a, features.expect("feature layer index in range")) // lint:allow(panic) — mark_feature_layer checked the index
    }

    /// Backward pass from a logits gradient; accumulates parameter grads and
    /// returns the input gradient.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let Sequential {
            layers, scratch, ..
        } = self;
        let mut g = scratch.take_copy(grad_logits);
        for l in layers.iter_mut().rev() {
            g = l.backward(g, scratch);
        }
        g
    }

    /// Backward pass that adds `feature_grad` to the gradient flowing through
    /// the feature tap (used by MOON's contrastive term).
    ///
    /// # Panics
    /// Panics if no feature layer was marked or shapes mismatch.
    pub fn backward_with_feature_grad(
        &mut self,
        grad_logits: &Tensor,
        feature_grad: &Tensor,
    ) -> Tensor {
        let fi = self
            .feature_layer
            .expect("backward_with_feature_grad: no feature layer marked"); // lint:allow(panic) — documented precondition: a feature layer is marked
        let Sequential {
            layers, scratch, ..
        } = self;
        let mut g = scratch.take_copy(grad_logits);
        for (i, l) in layers.iter_mut().enumerate().rev() {
            if i == fi {
                g.add_assign(feature_grad)
                    .expect("feature gradient shape mismatch"); // lint:allow(panic) — shapes agree with the matching forward
            }
            g = l.backward(g, scratch);
        }
        g
    }

    /// Mean cross-entropy loss + full backward pass for a labelled batch.
    /// Returns the loss. Gradients are *accumulated*; call
    /// [`Sequential::zero_grads`] between steps.
    ///
    /// Every intermediate tensor — input copy, activations, logits, logits
    /// gradient, input gradient — is recycled through the network's scratch
    /// arena, so steady-state calls are allocation-free.
    pub fn train_step(&mut self, x: &Tensor, targets: &[usize]) -> f64 {
        let Sequential {
            layers,
            scratch,
            loss,
            ..
        } = self;
        let mut a = scratch.take_copy(x);
        for l in layers.iter_mut() {
            a = l.forward(a, scratch);
        }
        let (loss_val, grad) = loss.forward_backward_scratch(&a, targets, scratch);
        scratch.give_tensor(a);
        let mut g = grad;
        for l in layers.iter_mut().rev() {
            g = l.backward(g, scratch);
        }
        scratch.give_tensor(g);
        loss_val
    }

    /// Loss head access.
    pub fn loss_head(&self) -> &SoftmaxCrossEntropy {
        &self.loss
    }

    /// Zero all parameter gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Switch every layer between training and inference mode (dropout
    /// masks on/off).
    pub fn set_training(&mut self, on: bool) {
        for l in &mut self.layers {
            l.set_training(on);
        }
    }

    /// Copy all parameters into a single flat vector (stable layer order).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            for p in l.params() {
                out.extend_from_slice(p);
            }
        }
        out
    }

    /// Overwrite all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics when `flat.len() != num_params()`.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "flat parameter size mismatch"
        );
        let mut off = 0;
        for l in &mut self.layers {
            for p in l.params_mut() {
                p.copy_from_slice(&flat[off..off + p.len()]);
                off += p.len();
            }
        }
    }

    /// Copy all gradients into a single flat vector.
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            for g in l.grads() {
                out.extend_from_slice(g);
            }
        }
        out
    }

    /// Overwrite all gradient buffers from a flat vector (used by algorithms
    /// that post-process gradients in flat space before stepping).
    ///
    /// # Panics
    /// Panics when `flat.len() != num_params()`.
    pub fn set_grads_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat gradient size mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            for g in l.grads_mut() {
                g.copy_from_slice(&flat[off..off + g.len()]);
                off += g.len();
            }
        }
    }

    /// Paired (params, grads) mutable views for optimizers, flattened across
    /// layers in stable order.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        let mut out = Vec::new();
        for l in &mut self.layers {
            out.extend(l.params_and_grads());
        }
        out
    }

    /// Visit each (flat offset, params, grads) block in the same stable order
    /// as [`Sequential::params_flat`], without allocating. The offset is the
    /// block's position in the flat-parameter view, so callers can index
    /// companion flat vectors (global weights, control variates, momentum).
    pub fn for_each_param_grad(&mut self, f: &mut ParamGradVisitor<'_>) {
        let mut off = 0usize;
        for l in &mut self.layers {
            l.for_each_param_grad(&mut |p, g| {
                let len = p.len();
                f(off, p, g);
                off += len;
            });
        }
    }

    /// Analytic forward FLOPs per sample.
    pub fn flops_forward(&self) -> u64 {
        let mut total = 0u64;
        for (l, &elems) in self.layers.iter().zip(&self.layer_input_elems) {
            total += if l.is_elementwise() {
                l.flops_forward() * elems as u64
            } else {
                l.flops_forward()
            };
        }
        let classes: usize = self.output_shape().iter().product();
        total + self.loss.flops(classes)
    }

    /// Analytic backward FLOPs per sample.
    pub fn flops_backward(&self) -> u64 {
        let mut total = 0u64;
        for (l, &elems) in self.layers.iter().zip(&self.layer_input_elems) {
            total += if l.is_elementwise() {
                l.flops_backward() * elems as u64
            } else {
                l.flops_backward()
            };
        }
        total
    }

    /// Predicted class indices for a batch.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Classification accuracy on a labelled batch.
    pub fn accuracy(&mut self, x: &Tensor, targets: &[usize]) -> f64 {
        let pred = self.predict(x);
        assert_eq!(pred.len(), targets.len());
        if targets.is_empty() {
            return 0.0;
        }
        let correct = pred.iter().zip(targets).filter(|(p, t)| p == t).count();
        correct as f64 / targets.len() as f64
    }

    /// One-line per-layer summary (name, output shape, params).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let mut shape = self.input_shape.clone();
        s.push_str(&format!("input: {shape:?}\n"));
        for l in &self.layers {
            shape = l.output_shape(&shape);
            s.push_str(&format!(
                "{:<10} -> {:?} ({} params)\n",
                l.name(),
                shape,
                l.num_params()
            ));
        }
        s.push_str(&format!("total params: {}", self.num_params()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::rng::Prng;

    fn tiny_net(rng: &mut Prng) -> Sequential {
        Sequential::new(&[4])
            .with(Dense::new(4, 8, rng))
            .with(Relu::new())
            .mark_features()
            .with(Dense::new(8, 3, rng))
    }

    #[test]
    fn shapes_and_param_counts() {
        let mut rng = Prng::seed_from_u64(1);
        let net = tiny_net(&mut rng);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.output_shape(), vec![3]);
        assert_eq!(net.feature_layer(), Some(1));
    }

    #[test]
    fn params_flat_round_trip() {
        let mut rng = Prng::seed_from_u64(2);
        let mut net = tiny_net(&mut rng);
        let flat = net.params_flat();
        assert_eq!(flat.len(), net.num_params());
        let mut shifted = flat.clone();
        for v in &mut shifted {
            *v += 1.0;
        }
        net.set_params_flat(&shifted);
        let back = net.params_flat();
        assert_eq!(back, shifted);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn set_params_flat_rejects_wrong_len() {
        let mut rng = Prng::seed_from_u64(3);
        let mut net = tiny_net(&mut rng);
        net.set_params_flat(&[0.0; 3]);
    }

    #[test]
    fn train_step_reduces_loss_on_fixed_batch() {
        let mut rng = Prng::seed_from_u64(4);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[16, 4], 1.0, &mut rng);
        let targets: Vec<usize> = (0..16).map(|i| i % 3).collect();
        let mut prev = f64::INFINITY;
        for _ in 0..60 {
            net.zero_grads();
            let loss = net.train_step(&x, &targets);
            // plain SGD, lr 0.5
            for (p, g) in net.params_and_grads() {
                for (pv, gv) in p.iter_mut().zip(g) {
                    *pv -= 0.5 * gv;
                }
            }
            prev = loss;
        }
        assert!(prev < 0.3, "loss did not decrease: {prev}");
    }

    #[test]
    fn grads_flat_matches_layer_grads() {
        let mut rng = Prng::seed_from_u64(5);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[4, 4], 1.0, &mut rng);
        net.zero_grads();
        net.train_step(&x, &[0, 1, 2, 0]);
        let flat = net.grads_flat();
        assert_eq!(flat.len(), net.num_params());
        assert!(flat.iter().any(|&v| v != 0.0));
        // set_grads_flat round trip
        let mut doubled = flat.clone();
        for v in &mut doubled {
            *v *= 2.0;
        }
        net.set_grads_flat(&doubled);
        assert_eq!(net.grads_flat(), doubled);
    }

    #[test]
    fn feature_tap_shape() {
        let mut rng = Prng::seed_from_u64(6);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let (logits, feats) = net.forward_with_features(&x);
        assert_eq!(logits.shape(), &[5, 3]);
        assert_eq!(feats.shape(), &[5, 8]);
    }

    #[test]
    fn feature_grad_injection_changes_feature_path_grads() {
        let mut rng = Prng::seed_from_u64(7);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let logits = net.forward(&x);
        let zero_glogits = Tensor::zeros(logits.shape());
        let fgrad = Tensor::full(&[2, 8], 0.1);
        net.zero_grads();
        net.backward_with_feature_grad(&zero_glogits, &fgrad);
        let g = net.grads_flat();
        // the first dense layer (before the tap) must receive gradient
        assert!(g[..4 * 8].iter().any(|&v| v != 0.0));
        // the head receives none (logits grad is zero, injection is upstream)
        let head_off = 4 * 8 + 8;
        assert!(g[head_off..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_is_independent() {
        let mut rng = Prng::seed_from_u64(8);
        let net = tiny_net(&mut rng);
        let mut c = net.clone();
        let orig = net.params_flat();
        c.set_params_flat(&vec![0.0; c.num_params()]);
        assert_eq!(net.params_flat(), orig);
    }

    #[test]
    fn flops_positive_and_consistent() {
        let mut rng = Prng::seed_from_u64(9);
        let net = tiny_net(&mut rng);
        // dense 4x8: 2*32+8, relu: 8, dense 8x3: 2*24+3, loss: 15
        assert_eq!(net.flops_forward(), (64 + 8) + 8 + (48 + 3) + 15);
        assert!(net.flops_backward() > net.flops_forward() / 2);
    }

    #[test]
    fn accuracy_on_known_labels() {
        let mut rng = Prng::seed_from_u64(10);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[10, 4], 1.0, &mut rng);
        let pred = net.predict(&x);
        let acc = net.accuracy(&x, &pred);
        assert_eq!(acc, 1.0);
    }
}
