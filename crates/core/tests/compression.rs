//! Integration and property tests for the communication-compression
//! subsystem: codec round-trip error bounds, exact byte accounting, top-k
//! selection semantics, error-feedback conservation, and the end-to-end
//! claim the subsystem exists for — a compressed run reaches the adaptive
//! accuracy target in strictly less virtual time than the uncompressed
//! run under a wide device-speed spread.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::compression::{
    error_feedback_step, CompressionKind, Compressor, Identity, QuantizeQ4, QuantizeQ8, TopK,
};
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use proptest::prelude::*;

fn minmax(x: &[f32]) -> (f32, f32) {
    fedtrip_tensor::compress::minmax(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quantized round trips stay within half a quantization step.
    #[test]
    fn q8_roundtrip_error_bound(x in prop::collection::vec(-50.0f32..50.0, 1..300)) {
        let c = QuantizeQ8;
        let wire = c.encode(&x);
        prop_assert_eq!(wire.len(), c.encoded_len(x.len()));
        let back = c.decode(&wire, x.len());
        let (min, max) = minmax(&x);
        let step = (max - min) / 255.0;
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-4, "{} vs {} (step {})", a, b, step);
        }
    }

    /// Same bound for the 4-bit codec at its coarser step.
    #[test]
    fn q4_roundtrip_error_bound(x in prop::collection::vec(-50.0f32..50.0, 1..300)) {
        let c = QuantizeQ4;
        let wire = c.encode(&x);
        prop_assert_eq!(wire.len(), c.encoded_len(x.len()));
        let back = c.decode(&wire, x.len());
        let (min, max) = minmax(&x);
        let step = (max - min) / 15.0;
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-4, "{} vs {} (step {})", a, b, step);
        }
    }

    /// Top-k keeps exactly the k largest magnitudes (every kept value is
    /// exact, every kept magnitude dominates every dropped one) and zeroes
    /// the rest.
    #[test]
    fn topk_preserves_the_k_largest(
        x in prop::collection::vec(-50.0f32..50.0, 2..300),
        frac in 0.01f32..1.0,
    ) {
        let c = TopK::new(frac);
        let n = x.len();
        let k = c.k_for(n);
        prop_assert!(k >= 1 && k <= n);
        let wire = c.encode(&x);
        prop_assert_eq!(wire.len(), c.encoded_len(n));
        prop_assert_eq!(wire.len(), 8 * k);
        let back = c.decode(&wire, n);

        let kept: Vec<usize> = (0..n).filter(|&i| back[i] != 0.0).collect();
        // kept values are exact copies
        for &i in &kept {
            prop_assert_eq!(back[i], x[i]);
        }
        // zeros elsewhere (a kept-but-zero original also decodes to zero,
        // so count via the selection bound instead of equality)
        prop_assert!(kept.len() <= k);
        // every kept magnitude >= every dropped magnitude
        let min_kept = kept.iter().map(|&i| x[i].abs()).fold(f32::INFINITY, f32::min);
        let max_dropped = (0..n)
            .filter(|i| !kept.contains(i))
            .map(|i| x[i].abs())
            .fold(0.0f32, f32::max);
        if !kept.is_empty() {
            prop_assert!(min_kept >= max_dropped,
                "min kept {} < max dropped {}", min_kept, max_dropped);
        }
    }

    /// `encoded_len` is exact for every codec and every length.
    #[test]
    fn encoded_len_is_exact(x in prop::collection::vec(-10.0f32..10.0, 1..200)) {
        let codecs: Vec<Box<dyn Compressor>> = vec![
            Box::new(Identity),
            Box::new(QuantizeQ8),
            Box::new(QuantizeQ4),
            Box::new(TopK::new(0.1)),
            CompressionKind::TopK(0.999).build(),
        ];
        for c in &codecs {
            prop_assert_eq!(c.encode(&x).len(), c.encoded_len(x.len()), "codec {}", c.name());
        }
    }

    /// The identity codec round-trips bit-for-bit.
    #[test]
    fn identity_is_lossless(x in prop::collection::vec(-1e6f32..1e6, 1..200)) {
        let c = Identity;
        prop_assert_eq!(c.decode(&c.encode(&x), x.len()), x);
    }

    /// Error feedback conserves mass: after every step, delivered-so-far
    /// plus the carried residual equals the exact sum of raw updates.
    #[test]
    fn error_feedback_conserves_mass(
        base in prop::collection::vec(-5.0f32..5.0, 4..64),
        steps in 1usize..8,
    ) {
        let codec = TopK::new(0.25);
        let mut residual = None;
        let mut delivered = vec![0.0f64; base.len()];
        for s in 0..steps {
            // vary the update each round so the test isn't a fixed point
            let update: Vec<f32> = base.iter().map(|v| v * (1.0 + s as f32 * 0.5)).collect();
            let (decoded, _) = error_feedback_step(&codec, &update, &mut residual, true);
            for (d, v) in delivered.iter_mut().zip(&decoded) {
                *d += *v as f64;
            }
        }
        let carry = residual.unwrap();
        for i in 0..base.len() {
            let sent: f64 = (0..steps).map(|s| (base[i] * (1.0 + s as f32 * 0.5)) as f64).sum();
            let have = delivered[i] + carry[i] as f64;
            prop_assert!((have - sent).abs() <= 1e-3 * (1.0 + sent.abs()),
                "coordinate {}: {} vs {}", i, have, sent);
        }
    }
}

fn tiny_cfg(seed: u64) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 6,
        clients_per_round: 3,
        rounds: 12,
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 10,
        client_samples_override: Some(50),
        eval_every: 1,
        ..SimulationConfig::default()
    }
}

fn run_with(mut cfg: SimulationConfig, compression: CompressionKind, ef: bool) -> Simulation {
    cfg.compression = compression;
    cfg.error_feedback = ef;
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    sim.run();
    sim
}

/// The acceptance claim: under a 4x device-speed spread, a q8 run reaches
/// the adaptive accuracy target (90% of the uncompressed run's final
/// accuracy) in strictly less virtual time than the uncompressed run.
#[test]
fn q8_reaches_target_in_less_virtual_time_at_4x_spread() {
    let mut cfg = tiny_cfg(41);
    cfg.device_het = 4.0;
    let dense = run_with(cfg, CompressionKind::None, false);
    let q8 = run_with(cfg, CompressionKind::Q8, true);

    let target = 0.90 * dense.final_accuracy(3);
    let t_dense = dense
        .time_to_accuracy(target)
        .expect("dense run reaches its own adaptive target");
    let t_q8 = q8
        .time_to_accuracy(target)
        .expect("q8 run reaches the adaptive target");
    assert!(
        t_q8 < t_dense,
        "q8 {t_q8}s not faster than dense {t_dense}s to target {target}"
    );
}

/// Top-k with error feedback also beats dense time-to-target at 4x spread
/// (a milder fraction than q8's implicit 4x: at this tiny scale top-k's
/// sparsification bites harder per round, so it keeps a quarter of the
/// coordinates — still a ~4x uplink shrink).
#[test]
fn topk_reaches_target_in_less_virtual_time_at_4x_spread() {
    let mut cfg = tiny_cfg(41);
    cfg.rounds = 16;
    cfg.device_het = 4.0;
    let dense = run_with(cfg, CompressionKind::None, false);
    let topk = run_with(cfg, CompressionKind::TopK(0.25), true);

    let target = 0.90 * dense.final_accuracy(3);
    let t_dense = dense
        .time_to_accuracy(target)
        .expect("dense reaches target");
    let t_topk = topk.time_to_accuracy(target).expect("top-k reaches target");
    assert!(
        t_topk < t_dense,
        "topk {t_topk}s not faster than dense {t_dense}s to target {target}"
    );
}

/// Compression never changes *who* trains or *what data* they see — only
/// the uploaded bytes. Selection sequences stay identical across codecs.
#[test]
fn compression_does_not_perturb_selection_streams() {
    let cfg = tiny_cfg(43);
    let dense = run_with(cfg, CompressionKind::None, false);
    let q4 = run_with(cfg, CompressionKind::Q4, true);
    for (a, b) in dense.records().iter().zip(q4.records()) {
        assert_eq!(a.selected, b.selected, "round {}", a.round);
    }
}

/// Identity compression is not merely close — it takes the exact same
/// code path (no encode/decode round trip), so records match bit-for-bit
/// whether `error_feedback` is set or not.
#[test]
fn identity_compression_is_bit_identical_to_uncompressed() {
    let cfg = tiny_cfg(44);
    let dense = run_with(cfg, CompressionKind::None, false);
    let ident_ef = run_with(cfg, CompressionKind::None, true);
    assert_eq!(dense.global_params(), ident_ef.global_params());
    let ja = serde_json::to_string(&dense.records().to_vec()).unwrap();
    let jb = serde_json::to_string(&ident_ef.records().to_vec()).unwrap();
    assert_eq!(ja, jb);
}
