//! Property and golden tests for compressed downlink delta broadcasts.
//!
//! The server broadcasts `Δ = w_global − w_broadcast` through the
//! downlink codec with a server-side error-feedback residual; clients
//! reconstruct their view incrementally, re-anchored by a dense resync
//! every `resync_interval` rounds and on demand for participants that
//! lack the current broadcast base (churn joiners, restored clients).
//! Three invariants pin the design:
//!
//! 1. **Resync exactness** — at every resync boundary the clients' view
//!    is the dense broadcast, bit for bit (`view = global.clone()`);
//! 2. **Mass conservation** — between resyncs the server residual holds
//!    exactly the mass the codec dropped: `view + residual == last
//!    broadcast global` coordinate-wise (up to f32 accumulation);
//! 3. **Epoch accounting** — the per-round downlink bytes replay exactly
//!    from the per-client sync epochs: participants off the current
//!    broadcast epoch (joiners, first-timers) are charged a dense base,
//!    everyone else the encoded delta.
//!
//! A golden fixture additionally pins one full q8-downlink run (records
//! serialized in full) so the delta path itself stays bit-identical
//! across refactors.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::compression::CompressionKind;
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use proptest::prelude::*;

fn base_cfg(seed: u64) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 8,
        clients_per_round: 4,
        rounds: 6,
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: 2,
        ..SimulationConfig::default()
    }
}

const CODECS: [CompressionKind; 3] = [
    CompressionKind::Q8,
    CompressionKind::Q4,
    CompressionKind::TopK(0.25),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At every resync boundary the reconstructed client view *is* the
    /// dense broadcast: bit-identical to the global model, with the
    /// residual cleared — whatever codec ran between the boundaries.
    #[test]
    fn client_view_is_dense_broadcast_at_every_resync_boundary(
        seed in 0u64..500,
        codec_idx in 0usize..CODECS.len(),
        resync in 1usize..4,
    ) {
        let mut cfg = base_cfg(seed);
        cfg.downlink_compression = CODECS[codec_idx];
        cfg.resync_interval = resync;
        let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        for t in 1..=6usize {
            // the broadcast inside round t ships the global as of the
            // round's start (the previous fold's output)
            let broadcast = sim.global_params().to_vec();
            sim.run_round();
            if t % resync == 0 {
                let (view, last, residual, _) = sim.broadcast_state();
                prop_assert_eq!(view, &broadcast[..], "round {t}: view != global at resync");
                prop_assert_eq!(last, &broadcast[..], "round {t}: base != global at resync");
                prop_assert!(residual.is_none(), "round {t}: residual survived resync");
            }
        }
    }

    /// Server-side error feedback conserves mass: after every round,
    /// `view + residual` equals the global model as of the last
    /// broadcast, coordinate-wise — nothing the codec drops is lost,
    /// it is carried to the next round's compensated delta.
    #[test]
    fn server_error_feedback_conserves_broadcast_mass(
        seed in 0u64..500,
        codec_idx in 0usize..CODECS.len(),
    ) {
        let mut cfg = base_cfg(seed);
        cfg.downlink_compression = CODECS[codec_idx];
        cfg.resync_interval = 0; // never resync: residual accumulates all run
        let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        for _ in 0..6 {
            sim.run_round();
            let (view, last, residual, _) = sim.broadcast_state();
            match residual {
                Some(r) => {
                    for (i, ((v, e), l)) in view.iter().zip(r).zip(last).enumerate() {
                        prop_assert!(
                            (v + e - l).abs() <= 1e-3,
                            "coord {i}: view {v} + residual {e} != base {l}"
                        );
                    }
                }
                None => prop_assert_eq!(view, last, "no residual but view != base"),
            }
        }
    }

    /// Downlink byte accounting replays exactly from the sync epochs:
    /// before each round, predict every selected client's charge (dense
    /// base iff it is off the current broadcast epoch or the round is a
    /// resync; encoded delta otherwise) and match `comm_bytes_down` to
    /// the f64 sum — and every churn joiner's first round is a dense
    /// base, never a delta against state it does not have.
    #[test]
    fn joiners_get_dense_bases_and_epoch_accounting_replays(
        seed in 0u64..500,
        codec_idx in 0usize..CODECS.len(),
        resync in 0usize..4,
    ) {
        let kind = CODECS[codec_idx];
        let codec = kind.build();
        let mut cfg = base_cfg(seed);
        // FedAvg: AttachCost::ZERO keeps the byte model exactly n_params
        cfg.downlink_compression = kind;
        cfg.resync_interval = resync;
        cfg.churn_join_window = 3;
        cfg.churn_residency = 4;
        let mut sim = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        let n = sim.global_params().len();
        let dense = (4 * n) as f64;
        let delta = codec.encoded_len(n) as f64;
        for t in 1..=6usize {
            let epochs_before: Vec<Option<u64>> = (0..8)
                .map(|c| sim.client_states().get(c).and_then(|s| s.sync_epoch))
                .collect();
            let rec = sim.run_round().clone();
            let resync_round = resync > 0 && t % resync == 0;
            let epoch = sim.broadcast_state().3;
            let mut predicted = 0.0f64;
            for &c in &rec.selected {
                let on_epoch = epochs_before[c] == Some(epoch);
                if epochs_before[c].is_none() {
                    // joiner / first-timer: must be charged the dense base
                    prop_assert!(resync_round || !on_epoch);
                }
                predicted += if resync_round || !on_epoch { dense } else { delta };
                // after the round, every participant is on the current epoch
                let after = sim.client_states().get(c).and_then(|s| s.sync_epoch);
                prop_assert_eq!(after, Some(epoch), "round {t}: client {c} not synced");
            }
            prop_assert_eq!(
                rec.comm_bytes_down, predicted,
                "round {t}: recorded downlink bytes diverge from epoch replay"
            );
        }
    }
}

/// One q8-downlink run (bidirectional compression, churn, resync 3) must
/// stay bit-identical across refactors: the fixture pins the full
/// `RoundRecord` serialization — selection, losses, both directions'
/// byte accounting, compression ratios, virtual time, accuracies.
#[test]
fn q8_downlink_run_matches_golden_fixture() {
    let mut cfg = base_cfg(123);
    cfg.compression = CompressionKind::Q8;
    cfg.error_feedback = true;
    cfg.downlink_compression = CompressionKind::Q8;
    cfg.resync_interval = 3;
    cfg.churn_join_window = 3;
    cfg.churn_residency = 4;
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    sim.run();
    let mut got = serde_json::to_string_pretty(sim.records()).expect("serialize records");
    got.push('\n');
    if std::env::var("DOWNLINK_GOLDEN_REGEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden_downlink_records.json"
        );
        std::fs::write(path, &got).expect("write regenerated fixture");
        eprintln!("downlink golden fixture regenerated at {path}");
        return;
    }
    assert_eq!(
        got,
        include_str!("golden_downlink_records.json"),
        "q8-downlink run diverged from the committed fixture (regenerate \
         with DOWNLINK_GOLDEN_REGEN=1 only for an intentional semantics \
         change)"
    );
}
