//! Engine-level integration tests for the hierarchical aggregation tier:
//! sharded edge folds with per-edge clocks, parallel root merge, and the
//! edge→root uplink charge, driven through `Simulation` exactly as `flrun
//! --edges E` drives it.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;

fn cfg(seed: u64, edges: usize) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 9,
        clients_per_round: 6,
        rounds: 4,
        batch_size: 25,
        lr: 0.05,
        seed,
        test_per_class: 5,
        client_samples_override: Some(50),
        edges,
        ..SimulationConfig::default()
    }
}

fn run(config: SimulationConfig, kind: AlgorithmKind) -> Simulation {
    let hyper = HyperParams::default();
    let mut sim = Simulation::new(config, kind.build(&hyper));
    sim.run();
    sim
}

#[test]
fn edge_runs_are_deterministic() {
    let a = run(cfg(51, 3), AlgorithmKind::FedTrip);
    let b = run(cfg(51, 3), AlgorithmKind::FedTrip);
    assert_eq!(a.global_params(), b.global_params());
    assert_eq!(a.virtual_time(), b.virtual_time());
    assert_eq!(a.edge_clock_times(), b.edge_clock_times());
}

#[test]
fn every_algorithm_completes_under_the_edge_tier() {
    for kind in AlgorithmKind::ALL {
        let mut c = cfg(52, 3);
        c.rounds = 2;
        let sim = run(c, kind);
        assert_eq!(sim.records().len(), 2, "{}", kind.name());
        assert!(
            sim.global_params().iter().all(|p| p.is_finite()),
            "{}: non-finite global parameters",
            kind.name()
        );
    }
}

#[test]
fn sharded_fold_stays_close_to_flat_fold() {
    // the tree reorders f64/f32 summation but must not change the math:
    // after 4 rounds the E=2 and E=1 trajectories agree to float rounding
    let flat = run(cfg(53, 1), AlgorithmKind::FedTrip);
    let tiered = run(cfg(53, 2), AlgorithmKind::FedTrip);
    for (i, (a, b)) in flat
        .global_params()
        .iter()
        .zip(tiered.global_params())
        .enumerate()
    {
        assert!((a - b).abs() < 1e-4, "param {i}: {a} vs {b}");
    }
}

#[test]
fn edge_uplink_charges_clock_and_comm_accounting() {
    // same federation, same work — but E=3 ships three edge summaries to
    // the root each round, so both virtual time and cumulative bytes must
    // strictly exceed the colocated E=1 run
    let flat = run(cfg(54, 1), AlgorithmKind::FedAvg);
    let tiered = run(cfg(54, 3), AlgorithmKind::FedAvg);
    assert!(
        tiered.virtual_time() > flat.virtual_time(),
        "edge uplink not charged: {} vs {}",
        tiered.virtual_time(),
        flat.virtual_time()
    );
    let flat_bytes = flat.records().last().unwrap().cum_comm_bytes;
    let tiered_bytes = tiered.records().last().unwrap().cum_comm_bytes;
    assert!(
        tiered_bytes > flat_bytes,
        "edge summaries not accounted: {tiered_bytes} vs {flat_bytes}"
    );
}

#[test]
fn edge_clocks_trail_the_root_clock() {
    let sim = run(cfg(55, 3), AlgorithmKind::FedTrip);
    let root = sim.virtual_time();
    let edges = sim.edge_clock_times();
    assert_eq!(edges.len(), 3);
    for (e, &t) in edges.iter().enumerate() {
        assert!(t > 0.0, "edge {e} clock never advanced");
        assert!(t <= root, "edge {e} clock {t} ahead of root {root}");
    }
}

#[test]
fn semiasync_completes_under_the_edge_tier() {
    let mut c = cfg(56, 2);
    c.mode = fedtrip_core::engine::RunMode::SemiAsync;
    c.device_het = 4.0;
    c.rounds = 8;
    let sim = run(c, AlgorithmKind::FedAvg);
    assert_eq!(sim.records().len(), 8);
    assert!(sim.records().last().unwrap().mean_staleness >= 0.0);
}

#[test]
fn residency_stays_bounded_by_participation() {
    // the tier must not force whole-federation materialization: resident
    // client state stays bounded by rounds x K even when sharded
    let mut c = cfg(57, 4);
    c.n_clients = 1000;
    c.clients_per_round = 10;
    c.rounds = 3;
    c.eval_every = 4; // skip mid-run evals; this test is about residency
    let sim = run(c, AlgorithmKind::FedAvg);
    let bound = 3 * 10;
    assert!(
        sim.client_states().resident() <= bound,
        "{} resident clients exceeds rounds x K = {bound}",
        sim.client_states().resident()
    );
}
