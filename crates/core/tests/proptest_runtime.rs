//! Property-based tests for the runtime layer: staleness-discount weights
//! (positive, monotone-decreasing, sum-preserving at aggregation) and
//! seed-derived device profiles (deterministic, bounded).

use fedtrip_core::algorithms::{weighted_param_average, LocalOutcome};
use fedtrip_core::runtime::{staleness_weight, DeviceProfile};
use proptest::prelude::*;

fn outcome(params: Vec<f32>, n_samples: usize, staleness: usize, exponent: f32) -> LocalOutcome {
    LocalOutcome {
        params,
        n_samples,
        mean_loss: 0.0,
        iterations: 1,
        train_flops: 0.0,
        aux: None,
        staleness,
        agg_weight: staleness_weight(staleness, exponent),
        dense_down: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `1 / (1 + s)^a` is strictly positive for any staleness/exponent.
    #[test]
    fn staleness_weights_are_positive(s in 0usize..10_000, a in 0.0f32..8.0) {
        prop_assert!(staleness_weight(s, a) > 0.0);
    }

    /// Weights are monotone non-increasing in staleness (strictly
    /// decreasing for a positive exponent).
    #[test]
    fn staleness_weights_decrease_with_staleness(s in 0usize..1_000, a in 0.01f32..8.0) {
        let fresh = staleness_weight(s, a);
        let staler = staleness_weight(s + 1, a);
        prop_assert!(staler < fresh, "w({s})={fresh} w({})={staler}", s + 1);
        prop_assert!(fresh <= 1.0);
    }

    /// Aggregation is sum-preserving: the discounted weights are
    /// renormalized to sum to 1, so averaging copies of the same constant
    /// vector returns that constant regardless of staleness pattern.
    #[test]
    fn staleness_discounted_aggregation_preserves_weight_sum(
        c in -5.0f32..5.0,
        samples in prop::collection::vec(1usize..500, 1..6),
        staleness in prop::collection::vec(0usize..20, 6),
        a in 0.0f32..4.0,
    ) {
        let outcomes: Vec<LocalOutcome> = samples
            .iter()
            .zip(&staleness)
            .map(|(&n, &s)| outcome(vec![c, -c, 0.5 * c], n, s, a))
            .collect();
        let avg = weighted_param_average(&outcomes);
        for (got, want) in avg.iter().zip([c, -c, 0.5 * c]) {
            prop_assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    /// Explicit weight-sum check: the normalized effective weights used by
    /// the average sum to exactly 1 (within float tolerance).
    #[test]
    fn normalized_weights_sum_to_one(
        samples in prop::collection::vec(1usize..500, 1..8),
        staleness in prop::collection::vec(0usize..20, 8),
        a in 0.0f32..4.0,
    ) {
        let raw: Vec<f64> = samples
            .iter()
            .zip(&staleness)
            .map(|(&n, &s)| n as f64 * staleness_weight(s, a))
            .collect();
        let total: f64 = raw.iter().sum();
        let sum: f64 = raw.iter().map(|w| w / total).sum();
        prop_assert!((sum - 1.0).abs() < 1e-12, "weight sum {sum}");
    }

    /// Device profiles are pure functions of (seed, client, spread) and
    /// bounded by the spread.
    #[test]
    fn device_profiles_deterministic_and_bounded(
        seed in 0u64..1_000,
        client in 0usize..64,
        spread in 1.0f64..16.0,
    ) {
        let a = DeviceProfile::derive(seed, client, spread);
        let b = DeviceProfile::derive(seed, client, spread);
        prop_assert_eq!(a, b);
        prop_assert!(a.compute_multiplier >= 1.0 && a.compute_multiplier < spread.max(1.0 + 1e-9));
        prop_assert!(a.bandwidth_bytes_per_sec > 0.0);
        // more work never takes less virtual time
        prop_assert!(a.duration(2e9, 1e6) > a.duration(1e9, 1e6));
    }
}
