//! The availability layer's regime tests: a committed golden fixture
//! pinning one diurnal + churn + Oort run bit-for-bit, the Oort
//! acceptance criterion (utility-aware selection beats uniform
//! time-to-target under a wide device spread), the population-scale
//! churn/residency guarantees, and property tests for the trace
//! derivations and the filtered selection paths.
//!
//! Regenerate `tests/scenario_golden.json` after an *intentional* change
//! to the availability semantics with
//! `SCENARIO_GOLDEN_REGEN=1 cargo test -p fedtrip-core --test scenario`
//! — then re-run without the variable to confirm the new fixture pins.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::checkpoint::Checkpoint;
use fedtrip_core::engine::{SelectionStrategy, Simulation, SimulationConfig};
use fedtrip_core::runtime::{AvailabilityModel, DeviceProfiles, Sampler, UtilityTable};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use proptest::prelude::*;

/// The pinned diurnal + churn + Oort configuration: every availability
/// mechanism active at once (diurnal on/off, mid-run joiners and leavers,
/// utility-aware selection over a 4x device spread).
fn golden_cfg() -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 12,
        clients_per_round: 4,
        rounds: 6,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        seed: 91,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: 2,
        selection: SelectionStrategy::Oort,
        device_het: 4.0,
        availability_period: 3,
        availability_on_fraction: 0.5,
        churn_join_window: 3,
        churn_residency: 4,
        ..SimulationConfig::default()
    }
}

/// One diurnal + churn + Oort run must stay bit-identical across
/// refactors: the fixture pins selection (who the filtered Oort path
/// picked each round), losses, cost accounting, virtual time, and
/// accuracies through the full `RoundRecord` serialization.
#[test]
fn diurnal_churn_oort_run_matches_golden_fixture() {
    let mut sim = Simulation::new(
        golden_cfg(),
        AlgorithmKind::FedTrip.build(&HyperParams::default()),
    );
    sim.run();
    let mut got = serde_json::to_string_pretty(sim.records()).expect("serialize records");
    got.push('\n');
    if std::env::var("SCENARIO_GOLDEN_REGEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/scenario_golden.json");
        std::fs::write(path, &got).expect("write regenerated fixture");
        eprintln!("scenario golden fixture regenerated at {path}");
        return;
    }
    assert_eq!(
        got,
        include_str!("scenario_golden.json"),
        "diurnal+churn+oort run diverged from the committed fixture \
         (regenerate with SCENARIO_GOLDEN_REGEN=1 only for an intentional \
         semantics change)"
    );
}

/// The Oort acceptance criterion: under a 4x device-speed spread,
/// utility-aware selection reaches the accuracy target in less virtual
/// time than uniform sampling — the speed half of the score keeps the
/// synchronous barrier off the slowest devices.
#[test]
fn oort_beats_uniform_time_to_target_under_device_spread() {
    let cfg = |selection| SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 20,
        clients_per_round: 5,
        rounds: 24,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.02,
        momentum: 0.9,
        seed: 2023,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: 1,
        selection,
        device_het: 4.0,
        ..SimulationConfig::default()
    };
    let mut uniform = Simulation::new(
        cfg(SelectionStrategy::Uniform),
        AlgorithmKind::FedTrip.build(&HyperParams::default()),
    );
    uniform.run();
    let mut oort = Simulation::new(
        cfg(SelectionStrategy::Oort),
        AlgorithmKind::FedTrip.build(&HyperParams::default()),
    );
    oort.run();

    // a target late enough that the crossing happens after Oort's utility
    // table has warmed up, but one both runs still reach
    let target = 0.95 * uniform.final_accuracy(5).min(oort.final_accuracy(5));
    let t_uniform = uniform
        .time_to_accuracy(target)
        .expect("uniform run reaches its own discounted final accuracy");
    let t_oort = oort
        .time_to_accuracy(target)
        .expect("oort run reaches the shared target");
    assert!(
        t_oort < t_uniform,
        "oort ({t_oort:.1}s) should beat uniform ({t_uniform:.1}s) to {:.1}% \
         under a 4x device spread",
        target * 100.0
    );
}

/// Churn at population scale: an `N = 100k` federation with mid-run
/// joiners and leavers must stay O(participants) — joiners admit lazily
/// through the sparse store and the lazy partition without ever
/// materializing the federation, the `rounds × K` residency bound holds,
/// and every departed client's state is evicted.
#[test]
fn n_100k_churn_stays_sparse_and_evicts_leavers() {
    let rounds = 6;
    let k = 4;
    let cfg = SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 100_000,
        clients_per_round: k,
        rounds,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        seed: 2028,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: rounds, // evaluate once, at the end
        selection: SelectionStrategy::Oort,
        device_het: 4.0,
        availability_period: 4,
        availability_on_fraction: 0.5,
        churn_join_window: 3,
        churn_residency: 2,
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    sim.run();

    let bound = rounds * k;
    assert!(
        sim.client_states().resident() <= bound,
        "resident state entries {} exceed rounds×K = {bound}",
        sim.client_states().resident()
    );
    assert!(
        sim.partition().resident_shards() <= bound,
        "resident shards {} exceed rounds×K = {bound}",
        sim.partition().resident_shards()
    );
    assert!(sim.client_states().resident() > 0);

    // every client that has permanently left by the final round must have
    // had its state evicted (and its utility entry dropped with it)
    let avail = sim.config().availability_model();
    let t = sim.rounds_done();
    for (c, _) in sim.client_states().iter() {
        assert!(
            !avail.has_left(c, t),
            "client {c} left the federation but its state is still resident"
        );
    }
    for (c, _) in sim.utility_table().iter() {
        assert!(
            !avail.has_left(c, t),
            "client {c} left the federation but its utility entry survives"
        );
    }
}

/// Resuming across a churn epoch must be bit-identical: the v6 snapshot
/// carries the utility table (Oort selection depends on it), while the
/// availability traces rederive from `(seed, client, round)` alone — so a
/// run captured mid-churn and restored continues exactly, including the
/// evictions it performs after the resume point.
#[test]
fn n_100k_resume_across_churn_epoch_is_bit_identical() {
    let rounds = 6;
    let cfg = SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 100_000,
        clients_per_round: 4,
        rounds,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        seed: 2029,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: rounds,
        selection: SelectionStrategy::Oort,
        device_het: 4.0,
        availability_period: 4,
        availability_on_fraction: 0.5,
        churn_join_window: 3,
        churn_residency: 2,
        ..SimulationConfig::default()
    };
    let hyper = HyperParams::default();
    let mut straight = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&hyper));
    straight.run();

    // capture mid-run, inside the churn window, then resume
    let mut first = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&hyper));
    for _ in 0..3 {
        first.run_round();
    }
    let ckpt = Checkpoint::capture(&first, AlgorithmKind::FedTrip, hyper);
    let mut resumed = ckpt.restore().expect("self-consistent churn checkpoint");
    resumed.run();

    assert_eq!(
        straight.global_params(),
        resumed.global_params(),
        "resume across a churn epoch diverged from the straight run"
    );
    let sel_a: Vec<_> = straight
        .records()
        .iter()
        .map(|r| r.selected.clone())
        .collect();
    let sel_b: Vec<_> = resumed
        .records()
        .iter()
        .map(|r| r.selected.clone())
        .collect();
    assert_eq!(sel_a, sel_b, "post-resume selection diverged");
    assert_eq!(
        straight.utility_table().export(),
        resumed.utility_table().export(),
        "post-resume utility table diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Availability traces are pure functions of `(seed, client, t)`:
    /// re-querying in any order, from freshly built models, returns the
    /// same bits — no interior mutability, no query-order dependence.
    #[test]
    fn availability_is_deterministic_and_query_order_independent(
        seed in 0u64..10_000,
        period in 1usize..16,
        frac_pct in 1u32..=100,
        join_window in 0usize..8,
        t0 in 0usize..64,
    ) {
        let n = 10;
        let residency = if join_window > 0 { 4 } else { 0 };
        let frac = frac_pct as f32 / 100.0;
        let model = AvailabilityModel::new(seed, n, period, frac, join_window, residency);
        let fresh = AvailabilityModel::new(seed, n, period, frac, join_window, residency);

        // forward sweep vs reverse sweep vs independent model: same trace
        let forward: Vec<bool> = (0..n)
            .flat_map(|c| (t0..t0 + 8).map(move |t| (c, t)))
            .map(|(c, t)| model.is_available(c, t))
            .collect();
        let reverse: Vec<bool> = {
            let mut v: Vec<((usize, usize), bool)> = (0..n)
                .flat_map(|c| (t0..t0 + 8).map(move |t| (c, t)))
                .rev()
                .map(|(c, t)| ((c, t), fresh.is_available(c, t)))
                .collect();
            v.reverse();
            v.into_iter().map(|(_, a)| a).collect()
        };
        prop_assert_eq!(forward, reverse);

        // a departed client never comes back
        for c in 0..n {
            if model.has_left(c, t0) {
                prop_assert!(model.has_left(c, t0 + 1), "client {} returned after leaving", c);
                prop_assert!(!model.is_available(c, t0), "departed client {} still available", c);
            }
        }
    }

    /// Every filtered selection path respects the availability trace: when
    /// at least one client is reachable at round `t`, no strategy —
    /// including Oort with an arbitrary utility table — picks an
    /// unavailable client.
    #[test]
    fn filtered_selection_never_picks_unavailable_clients(
        seed in 0u64..10_000,
        t in 0usize..64,
        strategy_idx in 0usize..4,
        losses in prop::collection::vec(0.0f64..10.0, 0..8),
    ) {
        let n = 8;
        let strategy = [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
            SelectionStrategy::Oort,
        ][strategy_idx];
        let model = AvailabilityModel::new(seed, n, 4, 0.5, 2, 3);
        let sampler = Sampler::new(seed, 3, strategy, 0.0, vec![40; n])
            .with_availability(model)
            .with_profiles(DeviceProfiles::new(seed, n, 4.0));
        let utility = UtilityTable::from_pairs(
            losses.iter().enumerate().map(|(c, &l)| (c, l)),
        );
        let picked = sampler.select_with(t, &utility);
        prop_assert!(!picked.is_empty());
        let any_available = (0..n).any(|c| model.is_available(c, t));
        if any_available {
            for &c in &picked {
                prop_assert!(
                    model.is_available(c, t),
                    "{:?} picked unavailable client {} at t={}",
                    strategy, c, t
                );
            }
        }
        // selection is deterministic per (seed, t, table)
        prop_assert_eq!(picked, sampler.select_with(t, &utility));
    }
}
