//! Property-based tests for the hierarchical aggregation tree's combine:
//! `ServerFold::merge` recombines two partial folds into the fold of the
//! union cohort, across all eight algorithms, random cohort splits, and
//! random (staleness-style) aggregation weights.
//!
//! Exactness contract (documented in `DESIGN.md` §Hierarchical
//! aggregation): cohort and aux counts combine *exactly*; accumulator
//! values agree with the flat fold up to f64/f32 summation-order rounding
//! — a literal bit-identity for arbitrary splits is impossible because
//! `(a + b) + (c + d)` is not `((a + b) + c) + d` in floating point, and
//! the flat left-to-right order is pinned by the `E = 1` golden fixtures.
//! The degenerate tree of one bucket performs no merge at all, which is
//! what keeps `E = 1` bit-identical (pinned here and by the edge-tier
//! unit tests).

use fedtrip_core::algorithms::{
    Algorithm, AlgorithmKind, FoldPlan, HyperParams, LocalOutcome, ServerFold,
};
use proptest::prelude::*;

const DIM: usize = 5;
const COHORT: usize = 6;
/// Larger than any test cohort so SCAFFOLD's `max(n_clients, cohort)`
/// divisor is the same constant for flat and partial folds — exactly the
/// engine regime, where the federation is never smaller than a cohort.
const N_CLIENTS: usize = 64;

/// A synthetic client outcome: params/aux derive deterministically from
/// the generated scalars so cases shrink well.
fn outcome(base: f32, idx: usize, n_samples: usize, agg_weight: f32) -> LocalOutcome {
    let params: Vec<f32> = (0..DIM)
        .map(|j| base + 0.37 * idx as f32 - 0.11 * j as f32)
        .collect();
    let aux: Vec<f32> = (0..DIM)
        .map(|j| 0.5 * base - 0.07 * idx as f32 + 0.03 * j as f32)
        .collect();
    LocalOutcome {
        params,
        n_samples,
        mean_loss: 0.0,
        iterations: 1,
        train_flops: 0.0,
        aux: Some(aux),
        staleness: 0,
        agg_weight: agg_weight as f64,
        dense_down: true,
    }
}

fn make_outcomes(base: f32, samples: &[usize], weights: &[f32]) -> Vec<LocalOutcome> {
    samples
        .iter()
        .zip(weights)
        .enumerate()
        .map(|(i, (&n, &w))| outcome(base, i, n, w))
        .collect()
}

/// Build a method with server state seeded from `c` — for SCAFFOLD this
/// makes the control variate nonzero, exercising the duplicated-base
/// subtraction in its `server_merge`; for the other stateful methods the
/// seeded vector never enters the fold, so it is harmless.
fn make_algorithm(kind: AlgorithmKind, c: &[f32]) -> Box<dyn Algorithm> {
    let mut alg = kind.build(&HyperParams::default());
    alg.on_init(N_CLIENTS, DIM);
    alg.restore_server_state(vec![c.to_vec()]);
    alg
}

/// The flat streaming fold: plan pre-pass, `server_begin`, absorb in order.
fn fold_over(alg: &dyn Algorithm, global: &[f32], outcomes: &[LocalOutcome]) -> ServerFold {
    let plan = FoldPlan::for_outcomes(outcomes.iter());
    let mut fold = ServerFold::begin(DIM, plan);
    alg.server_begin(&mut fold);
    for o in outcomes {
        fold.absorb(alg, o, global);
    }
    fold
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) -> Result<(), TestCaseError> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y} (tol {tol})");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `merge(fold(A), fold(B))` equals `fold(A ∪ B)`: exact cohort and
    /// aux counts, weight and accumulator values up to summation-order
    /// rounding — for every algorithm, split point, and weight pattern.
    #[test]
    fn merged_split_matches_flat_fold(
        alg_idx in 0usize..8,
        base in -2.0f32..2.0,
        samples in prop::collection::vec(1usize..200, COHORT),
        weights in prop::collection::vec(0.05f32..1.0, COHORT),
        global in prop::collection::vec(-1.0f32..1.0, DIM),
        c in prop::collection::vec(-1.0f32..1.0, DIM),
        split in 1usize..COHORT,
    ) {
        let kind = AlgorithmKind::ALL[alg_idx];
        let alg = make_algorithm(kind, &c);
        let outcomes = make_outcomes(base, &samples, &weights);

        let flat = fold_over(alg.as_ref(), &global, &outcomes);
        let mut left = fold_over(alg.as_ref(), &global, &outcomes[..split]);
        let right = fold_over(alg.as_ref(), &global, &outcomes[split..]);
        left.merge(alg.as_ref(), right);

        // integer bookkeeping combines exactly
        prop_assert_eq!(left.plan().cohort, flat.plan().cohort, "{} cohort", kind.name());
        prop_assert_eq!(left.plan().aux_count, flat.plan().aux_count, "{} aux", kind.name());
        // the normalizer differs only by f64 summation order
        let (wm, wf) = (left.plan().total_weight, flat.plan().total_weight);
        prop_assert!(((wm - wf) / wf).abs() < 1e-12, "{}: weight {wm} vs {wf}", kind.name());

        let (avg_m, extra_m) = left.into_parts();
        let (avg_f, extra_f) = flat.into_parts();
        assert_close(&avg_m, &avg_f, 1e-4, kind.name())?;
        assert_close(&extra_m, &extra_f, 1e-3, kind.name())?;
    }

    /// The combine is commutative up to rounding: which side of the tree a
    /// partial fold arrives on does not change the result.
    #[test]
    fn merge_is_commutative_within_rounding(
        alg_idx in 0usize..8,
        base in -2.0f32..2.0,
        samples in prop::collection::vec(1usize..200, COHORT),
        weights in prop::collection::vec(0.05f32..1.0, COHORT),
        global in prop::collection::vec(-1.0f32..1.0, DIM),
        c in prop::collection::vec(-1.0f32..1.0, DIM),
        split in 1usize..COHORT,
    ) {
        let kind = AlgorithmKind::ALL[alg_idx];
        let alg = make_algorithm(kind, &c);
        let outcomes = make_outcomes(base, &samples, &weights);

        let mut ab = fold_over(alg.as_ref(), &global, &outcomes[..split]);
        ab.merge(alg.as_ref(), fold_over(alg.as_ref(), &global, &outcomes[split..]));
        let mut ba = fold_over(alg.as_ref(), &global, &outcomes[split..]);
        ba.merge(alg.as_ref(), fold_over(alg.as_ref(), &global, &outcomes[..split]));

        prop_assert_eq!(ab.plan().cohort, ba.plan().cohort);
        prop_assert_eq!(ab.plan().aux_count, ba.plan().aux_count);
        let (avg_ab, extra_ab) = ab.into_parts();
        let (avg_ba, extra_ba) = ba.into_parts();
        assert_close(&avg_ab, &avg_ba, 1e-4, kind.name())?;
        assert_close(&extra_ab, &extra_ba, 1e-3, kind.name())?;
    }

    /// The combine is associative up to rounding: a three-way split folds
    /// to the same result whichever pair merges first — the property that
    /// lets the root reduce edge summaries in any tree shape.
    #[test]
    fn merge_is_associative_within_rounding(
        alg_idx in 0usize..8,
        base in -2.0f32..2.0,
        samples in prop::collection::vec(1usize..200, COHORT),
        weights in prop::collection::vec(0.05f32..1.0, COHORT),
        global in prop::collection::vec(-1.0f32..1.0, DIM),
        c in prop::collection::vec(-1.0f32..1.0, DIM),
        s1 in 1usize..3,
        s2 in 3usize..5,
    ) {
        let kind = AlgorithmKind::ALL[alg_idx];
        let alg = make_algorithm(kind, &c);
        let outcomes = make_outcomes(base, &samples, &weights);
        let fold_chunk = |lo: usize, hi: usize| fold_over(alg.as_ref(), &global, &outcomes[lo..hi]);

        // ((A ∪ B) ∪ C)
        let mut lhs = fold_chunk(0, s1);
        lhs.merge(alg.as_ref(), fold_chunk(s1, s2));
        lhs.merge(alg.as_ref(), fold_chunk(s2, COHORT));
        // (A ∪ (B ∪ C))
        let mut bc = fold_chunk(s1, s2);
        bc.merge(alg.as_ref(), fold_chunk(s2, COHORT));
        let mut rhs = fold_chunk(0, s1);
        rhs.merge(alg.as_ref(), bc);

        prop_assert_eq!(lhs.plan().cohort, rhs.plan().cohort);
        prop_assert_eq!(lhs.plan().aux_count, rhs.plan().aux_count);
        let (avg_l, extra_l) = lhs.into_parts();
        let (avg_r, extra_r) = rhs.into_parts();
        assert_close(&avg_l, &avg_r, 1e-4, kind.name())?;
        assert_close(&extra_l, &extra_r, 1e-3, kind.name())?;
    }
}

/// The `E = 1` pin is structural, not tolerance-based: a tree of one
/// bucket never calls `merge`, so two independent flat folds of the same
/// cohort are bit-identical for every algorithm.
#[test]
fn tree_of_one_is_bit_identical_for_every_algorithm() {
    let samples = [37usize, 80, 5, 120, 64, 11];
    let weights = [1.0f32, 0.5, 0.8, 1.0, 0.33, 0.9];
    let outcomes = make_outcomes(0.7, &samples, &weights);
    let global = vec![0.25f32; DIM];
    let c = vec![0.1f32; DIM];
    for kind in AlgorithmKind::ALL {
        let alg = make_algorithm(kind, &c);
        let (a_avg, a_extra) = fold_over(alg.as_ref(), &global, &outcomes).into_parts();
        let (b_avg, b_extra) = fold_over(alg.as_ref(), &global, &outcomes).into_parts();
        assert_eq!(a_avg, b_avg, "{}", kind.name());
        assert_eq!(a_extra, b_extra, "{}", kind.name());
    }
}
