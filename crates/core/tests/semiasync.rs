//! Integration tests for the semi-async scheduler: same-seed bit-identical
//! determinism (mirroring `determinism.rs`), checkpoint/resume fidelity
//! including in-flight jobs, and the headline claim — under heterogeneous
//! device profiles, buffered semi-async aggregation reaches a target
//! accuracy in less virtual wall-clock time than the synchronous barrier.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::checkpoint::Checkpoint;
use fedtrip_core::engine::{RunMode, Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;

fn cfg(seed: u64, mode: RunMode) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 8,
        clients_per_round: 4,
        rounds: 12,
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 5,
        client_samples_override: Some(50),
        eval_every: 1,
        mode,
        device_het: 4.0,
        ..SimulationConfig::default()
    }
}

fn run_records(kind: AlgorithmKind, seed: u64) -> String {
    let mut sim = Simulation::new(
        cfg(seed, RunMode::SemiAsync),
        kind.build(&HyperParams::default()),
    );
    let records = sim.run();
    serde_json::to_string(&records.to_vec()).expect("serialize records")
}

#[test]
fn same_seed_bit_identical_records_despite_parallelism() {
    for kind in [AlgorithmKind::FedTrip, AlgorithmKind::FedAvg] {
        let a = run_records(kind, 77);
        let b = run_records(kind, 77);
        assert_eq!(
            a, b,
            "two {kind:?} semi-async runs with the same seed must produce \
             bit-identical RoundRecords"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_records(AlgorithmKind::FedTrip, 77);
    let b = run_records(AlgorithmKind::FedTrip, 78);
    assert_ne!(a, b, "distinct seeds should not collide");
}

#[test]
fn every_algorithm_completes_semiasync_rounds() {
    for kind in AlgorithmKind::ALL {
        let mut c = cfg(31, RunMode::SemiAsync);
        c.rounds = 4;
        let mut sim = Simulation::new(c, kind.build(&HyperParams::default()));
        sim.run();
        assert_eq!(sim.records().len(), 4, "{}", kind.name());
        assert!(sim.records().iter().all(|r| r.accuracy.unwrap() > 0.0));
    }
}

/// Resuming a semi-async run from a checkpoint (which carries the virtual
/// clock and the in-flight jobs) must replay the straight run bit-for-bit.
#[test]
fn semiasync_resume_is_bit_identical() {
    for kind in [AlgorithmKind::FedTrip, AlgorithmKind::SlowMo] {
        let hyper = HyperParams::default();
        let mut straight = Simulation::new(cfg(53, RunMode::SemiAsync), kind.build(&hyper));
        straight.run();

        let mut first = Simulation::new(cfg(53, RunMode::SemiAsync), kind.build(&hyper));
        for _ in 0..6 {
            first.run_round();
        }
        // round-trip the snapshot through JSON to cover serialization of
        // in-flight jobs (outcomes, finish times, versions)
        let ckpt = Checkpoint::capture(&first, kind, hyper);
        let path = std::env::temp_dir().join(format!("fedtrip_semiasync_{}.json", kind.name()));
        ckpt.save(&path).unwrap();
        let mut resumed = Checkpoint::load(&path).unwrap().restore().unwrap();
        resumed.run();

        let a = serde_json::to_string(&straight.records().to_vec()).unwrap();
        let b = serde_json::to_string(&resumed.records().to_vec()).unwrap();
        assert_eq!(a, b, "{}: resumed semi-async run diverged", kind.name());
        assert_eq!(straight.global_params(), resumed.global_params());
        assert_eq!(straight.virtual_time(), resumed.virtual_time());
    }
}

/// The acceptance claim: with a 4x device speed spread, the semi-async
/// scheduler reaches the target accuracy at a lower virtual wall-clock than
/// the synchronous barrier (which always waits for the slowest selected
/// client).
#[test]
fn semiasync_beats_sync_time_to_accuracy_under_heterogeneity() {
    let target = 0.25;
    let kind = AlgorithmKind::FedTrip;
    let hyper = HyperParams::default();

    let mut sync = Simulation::new(cfg(2023, RunMode::Sync), kind.build(&hyper));
    sync.run();
    // a fair budget: one semi-async fold aggregates B = K/2 results, so two
    // folds consume the client work of one synchronous round
    let mut semi_cfg = cfg(2023, RunMode::SemiAsync);
    semi_cfg.rounds *= 2;
    let mut semi = Simulation::new(semi_cfg, kind.build(&hyper));
    semi.run();

    let t_sync = sync
        .time_to_accuracy(target)
        .expect("sync run should reach the target accuracy");
    let t_semi = semi
        .time_to_accuracy(target)
        .expect("semi-async run should reach the target accuracy");
    assert!(
        t_semi < t_sync,
        "semi-async ({t_semi:.1}s) should reach {target} faster than sync ({t_sync:.1}s)"
    );
}

/// Staleness shows up and is bounded: folded updates can be stale, and the
/// discount keeps their aggregate influence sub-unit.
#[test]
fn semiasync_observes_bounded_staleness() {
    let mut sim = Simulation::new(
        cfg(91, RunMode::SemiAsync),
        AlgorithmKind::FedAvg.build(&HyperParams::default()),
    );
    sim.run();
    let max_staleness = sim
        .records()
        .iter()
        .map(|r| r.mean_staleness)
        .fold(0.0f64, f64::max);
    assert!(max_staleness > 0.0, "4x spread should produce stale folds");
    assert!(
        max_staleness < sim.records().len() as f64,
        "staleness cannot exceed the number of folds"
    );
}
