//! Population-scale guarantees of the sparse runtime.
//!
//! Two families of checks:
//!
//! * **Sparse ≡ dense.** The sparse [`ClientStateStore`] must be a pure
//!   storage optimization: a run against a store where *every* client was
//!   made resident up front (the dense shape the engine historically used)
//!   is bit-identical to the normal sparse run, across random participation
//!   traces — selection strategies × failure injection × semi-async
//!   scheduling. (Bit-identity against the *historical* dense engine is
//!   separately pinned by `tests/golden_sync.rs`.)
//! * **O(participants) residency.** An `N = 100 000`, `K = 4` federation
//!   must construct instantly and touch at most `rounds × K` state entries
//!   and partition shards — resident footprint scales with participation,
//!   never federation size.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::engine::{RunMode, SelectionStrategy, Simulation, SimulationConfig};
use fedtrip_data::partition::{HeterogeneityKind, ShardRegime};
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use proptest::prelude::*;

fn trace_cfg(
    seed: u64,
    selection: SelectionStrategy,
    failure_prob: f32,
    semi_async: bool,
) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 7,
        clients_per_round: 3,
        rounds: 5,
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 4,
        client_samples_override: Some(50),
        eval_every: 1,
        selection,
        failure_prob,
        mode: if semi_async {
            RunMode::SemiAsync
        } else {
            RunMode::Sync
        },
        device_het: if semi_async { 4.0 } else { 1.0 },
        ..SimulationConfig::default()
    }
}

fn run_to_end(cfg: SimulationConfig, kind: AlgorithmKind, dense: bool) -> Simulation {
    let mut sim = Simulation::new(cfg, kind.build(&HyperParams::default()));
    if dense {
        sim.prefill_dense_states();
    }
    sim.run();
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A dense-prefilled store run is bit-identical to the sparse run
    /// across random participation traces.
    #[test]
    fn sparse_store_runs_match_dense_store_runs(
        seed in 0u64..10_000,
        strategy_idx in 0usize..3,
        failures in 0usize..2,
        semi_async in 0usize..2,
        alg_idx in 0usize..3,
    ) {
        let strategy = [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ][strategy_idx];
        // FedTrip exercises gap/historical state, SCAFFOLD corrections +
        // aux uploads, FedAvg the plain path
        let kind = [AlgorithmKind::FedTrip, AlgorithmKind::Scaffold, AlgorithmKind::FedAvg][alg_idx];
        let failure_prob = if failures == 1 { 0.5 } else { 0.0 };
        let cfg = trace_cfg(seed, strategy, failure_prob, semi_async == 1);

        let sparse = run_to_end(cfg, kind, false);
        let dense = run_to_end(cfg, kind, true);

        prop_assert_eq!(sparse.global_params(), dense.global_params());
        let sel_a: Vec<_> = sparse.records().iter().map(|r| r.selected.clone()).collect();
        let sel_b: Vec<_> = dense.records().iter().map(|r| r.selected.clone()).collect();
        prop_assert_eq!(sel_a, sel_b);
        let acc_a: Vec<_> = sparse.records().iter().map(|r| r.accuracy).collect();
        let acc_b: Vec<_> = dense.records().iter().map(|r| r.accuracy).collect();
        prop_assert_eq!(acc_a, acc_b);
        // participation state agrees client by client where the sparse
        // store is resident; dense-only extras must be untouched defaults
        for c in 0..cfg.n_clients {
            match sparse.client_states().get(c) {
                Some(st) => prop_assert_eq!(
                    st.last_round,
                    dense.client_states().get(c).and_then(|s| s.last_round)
                ),
                None => prop_assert!(
                    dense.client_states().get(c).is_none_or(|s| s.is_vacant()),
                    "client {} resident only in the dense run but not vacant", c
                ),
            }
        }
    }
}

#[test]
fn n_100k_smoke_touches_at_most_rounds_times_k_entries() {
    let rounds = 3;
    let k = 4;
    let cfg = SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 100_000,
        clients_per_round: k,
        rounds,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        seed: 2026,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: rounds, // evaluate once, at the end
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    assert_eq!(sim.partition().regime(), ShardRegime::Independent);
    sim.run();

    let bound = rounds * k;
    assert!(
        sim.client_states().resident() <= bound,
        "resident state entries {} exceed rounds×K = {bound}",
        sim.client_states().resident()
    );
    assert!(
        sim.partition().resident_shards() <= bound,
        "resident shards {} exceed rounds×K = {bound}",
        sim.partition().resident_shards()
    );
    assert!(sim.client_states().resident() > 0);
    assert!(sim.records().last().unwrap().accuracy.is_some());
}

#[test]
fn n_100k_semiasync_smoke_stays_sparse() {
    let rounds = 4;
    let k = 4;
    let cfg = SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 100_000,
        clients_per_round: k,
        rounds,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        seed: 2027,
        test_per_class: 4,
        client_samples_override: Some(40),
        eval_every: rounds,
        mode: RunMode::SemiAsync,
        device_het: 4.0,
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
    sim.run();
    // each fold dispatches at most K fresh clients
    let bound = rounds * k;
    assert!(
        sim.client_states().resident() <= bound,
        "resident state entries {} exceed rounds×K = {bound}",
        sim.client_states().resident()
    );
    assert!(sim.partition().resident_shards() <= bound);
}

#[test]
fn n_50_sync_is_unchanged_by_population_machinery() {
    // the paper's scalability-study scale still runs pooled + sparse and
    // stays deterministic
    let cfg = SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 50,
        clients_per_round: 4,
        rounds: 3,
        batch_size: 20,
        test_per_class: 4,
        client_samples_override: Some(40),
        ..SimulationConfig::default()
    };
    let mut a = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    let mut b = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
    assert_eq!(a.partition().regime(), ShardRegime::Pooled);
    a.run();
    b.run();
    assert_eq!(a.global_params(), b.global_params());
    assert!(a.client_states().resident() <= 3 * 4);
}
