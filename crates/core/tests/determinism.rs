//! Determinism smoke test: the engine promises that results depend only on
//! the seed — never on rayon's scheduling of the parallel client loop (each
//! client derives its own RNG stream from `(seed, round, client)`).
//!
//! `RoundRecord` intentionally has no `PartialEq`, so the comparison goes
//! through the serialized JSON form: floats are printed as their shortest
//! round-trippable representation, so equal strings imply bit-identical
//! records.

use fedtrip_core::algorithms::{AlgorithmKind, HyperParams};
use fedtrip_core::engine::{Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;

fn cfg(seed: u64) -> SimulationConfig {
    SimulationConfig {
        dataset: DatasetKind::MnistLike,
        model: ModelKind::TinyMlp,
        heterogeneity: HeterogeneityKind::Dirichlet(0.5),
        n_clients: 8,
        clients_per_round: 4,
        rounds: 3,
        local_epochs: 1,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        seed,
        test_per_class: 5,
        client_samples_override: Some(50),
        eval_every: 1,
        ..SimulationConfig::default()
    }
}

fn run_records(kind: AlgorithmKind, seed: u64) -> String {
    let mut sim = Simulation::new(cfg(seed), kind.build(&HyperParams::default()));
    let records = sim.run();
    serde_json::to_string(&records.to_vec()).expect("serialize records")
}

#[test]
fn same_seed_bit_identical_records_despite_parallelism() {
    for kind in [AlgorithmKind::FedTrip, AlgorithmKind::FedAvg] {
        let a = run_records(kind, 77);
        let b = run_records(kind, 77);
        assert_eq!(
            a, b,
            "two {kind:?} runs with the same seed must produce bit-identical RoundRecords"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_records(AlgorithmKind::FedTrip, 77);
    let b = run_records(AlgorithmKind::FedTrip, 78);
    assert_ne!(a, b, "distinct seeds should not collide");
}
