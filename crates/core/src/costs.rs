//! Analytic resource model (paper Appendix A, Tables V and VIII).
//!
//! The paper compares methods by the cost of their *attaching operations* —
//! the extra work a method performs on top of vanilla local SGD — plus any
//! extra communication. Costs are expressed with the paper's symbols:
//!
//! * `K` — local iterations per round,
//! * `M` — mini-batch size,
//! * `n` — local data samples,
//! * `|w|` — model parameter count,
//! * `FP` / `BP` — forward / backward FLOPs for a single sample,
//! * `p` — number of historical models MOON contrasts against (1 here).
//!
//! [`CostModel`] carries those quantities for a concrete experiment;
//! [`AttachCost`] is the per-round result.

use serde::{Deserialize, Serialize};

/// Quantities entering the Appendix-A cost formulas for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `|w|` — number of model parameters.
    pub n_params: usize,
    /// `FP` — forward FLOPs per sample.
    pub fp_per_sample: u64,
    /// `BP` — backward FLOPs per sample.
    pub bp_per_sample: u64,
    /// `M` — mini-batch size.
    pub batch_size: usize,
    /// `K` — local iterations per round (`ceil(n / M) * epochs`).
    pub local_iterations: usize,
    /// `n` — local training samples per client.
    pub local_samples: usize,
}

impl CostModel {
    /// Baseline training FLOPs per client per round: every local iteration
    /// runs forward + backward over one mini-batch.
    pub fn base_train_flops(&self) -> f64 {
        self.local_iterations as f64
            * self.batch_size as f64
            * (self.fp_per_sample + self.bp_per_sample) as f64
    }

    /// `K * |w|` in FLOPs — the unit the vector-op formulas are built from.
    fn kw(&self) -> f64 {
        self.local_iterations as f64 * self.n_params as f64
    }
}

/// Per-round, per-client overhead of a method's attaching operations.
///
/// Communication overhead is kept as directed *value counts* rather than
/// bytes: the client→server half rides the same uplink as the model update
/// and is therefore subject to the configured upload codec
/// ([`crate::compression`]), and the server→client half likewise rides the
/// broadcast — dense f32 by default, or through the downlink codec when
/// delta broadcasts are enabled.
/// [`AttachCost::extra_comm_bytes`] gives the uncompressed byte total the
/// paper's Table VIII reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttachCost {
    /// Extra computation (FLOPs) per client per round.
    pub flops: f64,
    /// Extra f32 values *uploaded* (client→server) per round, beyond the
    /// `|w|` model parameters every method already sends (e.g. SCAFFOLD's
    /// control-variate delta).
    pub up_params: usize,
    /// Extra f32 values *downloaded* (server→client) per round, beyond the
    /// `|w|` model parameters every method already receives (e.g.
    /// MimeLite's server statistics).
    pub down_params: usize,
}

impl AttachCost {
    /// No overhead (FedAvg baseline).
    pub const ZERO: AttachCost = AttachCost {
        flops: 0.0,
        up_params: 0,
        down_params: 0,
    };

    /// Uncompressed extra communication in bytes (up + down combined) per
    /// client per round — the paper's Table VIII quantity. The engine
    /// instead routes [`AttachCost::up_params`] through the configured
    /// codec's `encoded_len`, so clock and cost tables agree when
    /// compression is off and diverge exactly by the codec ratio when on.
    pub fn extra_comm_bytes(&self) -> usize {
        (self.up_params + self.down_params) * std::mem::size_of::<f32>()
    }
}

/// Virtual seconds one edge aggregator needs to ship a summary of `bytes`
/// to the root over the reference backhaul link.
///
/// Edge→root links are modeled homogeneous at the reference bandwidth
/// (aggregation sites are provisioned infrastructure, unlike the spread of
/// client devices), so the uplink charge is a pure function of the encoded
/// summary size. `0.0` bytes — the colocated `E = 1` root — costs exactly
/// `0.0` seconds, which keeps single-edge clock arithmetic bit-identical to
/// the flat engine.
pub fn edge_uplink_secs(bytes: f64) -> f64 {
    bytes / crate::runtime::clock::BASE_BANDWIDTH_BPS
}

/// Appendix-A Table VIII rows, as functions of the cost model.
pub mod formulas {
    use super::{AttachCost, CostModel};

    /// FedAvg: no attaching operations.
    pub fn fedavg(_m: &CostModel) -> AttachCost {
        AttachCost::ZERO
    }

    /// FedProx: `2 K |w|` — one subtraction + one axpy per iteration.
    pub fn fedprox(m: &CostModel) -> AttachCost {
        AttachCost {
            flops: 2.0 * m.kw(),
            ..AttachCost::ZERO
        }
    }

    /// FedTrip: `4 K |w|` — the fused triplet kernel touches two anchor
    /// vectors (global + historical) per iteration.
    pub fn fedtrip(m: &CostModel) -> AttachCost {
        AttachCost {
            flops: 4.0 * m.kw(),
            ..AttachCost::ZERO
        }
    }

    /// FedDyn: `4 K |w|` — linear-correction term + proximal term.
    pub fn feddyn(m: &CostModel) -> AttachCost {
        AttachCost {
            flops: 4.0 * m.kw(),
            ..AttachCost::ZERO
        }
    }

    /// MOON: `K * M * (1 + p) * FP` — two extra forward passes per sample
    /// per iteration (global model and `p = 1` historical model).
    pub fn moon(m: &CostModel, p_history: usize) -> AttachCost {
        AttachCost {
            flops: m.local_iterations as f64
                * m.batch_size as f64
                * (1 + p_history) as f64
                * m.fp_per_sample as f64,
            ..AttachCost::ZERO
        }
    }

    /// SlowMo: server-side momentum only — no client attach cost.
    pub fn slowmo(_m: &CostModel) -> AttachCost {
        AttachCost::ZERO
    }

    /// SCAFFOLD: `2 (K + 1) |w|` control-variate arithmetic plus a
    /// full-batch gradient `n (FP + BP)`, and `2 |w|` extra communication
    /// (control variates travel both ways: the server's `c` down, the
    /// client's control-variate delta up).
    pub fn scaffold(m: &CostModel) -> AttachCost {
        AttachCost {
            flops: 2.0 * (m.local_iterations + 1) as f64 * m.n_params as f64
                + m.local_samples as f64 * (m.fp_per_sample + m.bp_per_sample) as f64,
            up_params: m.n_params,
            down_params: m.n_params,
        }
    }

    /// MimeLite: full-batch gradient at the server model, `n (FP + BP)`,
    /// and `2 |w|` extra communication (server statistics down, full-batch
    /// gradient up).
    pub fn mimelite(m: &CostModel) -> AttachCost {
        AttachCost {
            flops: m.local_samples as f64 * (m.fp_per_sample + m.bp_per_sample) as f64,
            up_params: m.n_params,
            down_params: m.n_params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::formulas::*;
    use super::*;

    fn cnn_like() -> CostModel {
        // LeNet-5 class numbers (paper CNN): |w| ~ 62k, FP ~ 0.9 MFLOPs
        CostModel {
            n_params: 61_706,
            fp_per_sample: 900_000,
            bp_per_sample: 1_700_000,
            batch_size: 50,
            local_iterations: 12,
            local_samples: 600,
        }
    }

    #[test]
    fn fedtrip_is_twice_fedprox() {
        let m = cnn_like();
        assert_eq!(fedtrip(&m).flops, 2.0 * fedprox(&m).flops);
    }

    #[test]
    fn fedtrip_equals_feddyn() {
        let m = cnn_like();
        assert_eq!(fedtrip(&m).flops, feddyn(&m).flops);
    }

    #[test]
    fn moon_dwarfs_fedtrip_on_cnn() {
        // Paper §V-B: MOON's attach cost is 171.4x FedTrip's on CNN.
        let m = cnn_like();
        let ratio = moon(&m, 1).flops / fedtrip(&m).flops;
        assert!(
            ratio > 100.0 && ratio < 500.0,
            "MOON/FedTrip attach ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn moon_ratio_grows_with_model_compute_density() {
        // Paper: ratio is 50x on MLP, 171x on CNN, 1336x on AlexNet — denser
        // models (more FLOPs per parameter) widen the gap.
        let mlp = CostModel {
            n_params: 79_510,
            fp_per_sample: 160_000,
            bp_per_sample: 320_000,
            batch_size: 50,
            local_iterations: 12,
            local_samples: 600,
        };
        let alex = CostModel {
            n_params: 2_500_000,
            fp_per_sample: 280_000_000,
            bp_per_sample: 560_000_000,
            batch_size: 50,
            local_iterations: 40,
            local_samples: 2_000,
        };
        let cnn = cnn_like();
        let r_mlp = moon(&mlp, 1).flops / fedtrip(&mlp).flops;
        let r_cnn = moon(&cnn, 1).flops / fedtrip(&cnn).flops;
        let r_alex = moon(&alex, 1).flops / fedtrip(&alex).flops;
        assert!(r_mlp < r_cnn && r_cnn < r_alex, "{r_mlp} {r_cnn} {r_alex}");
    }

    #[test]
    fn only_scaffold_and_mimelite_add_communication() {
        let m = cnn_like();
        assert_eq!(fedavg(&m).extra_comm_bytes(), 0);
        assert_eq!(fedprox(&m).extra_comm_bytes(), 0);
        assert_eq!(fedtrip(&m).extra_comm_bytes(), 0);
        assert_eq!(feddyn(&m).extra_comm_bytes(), 0);
        assert_eq!(moon(&m, 1).extra_comm_bytes(), 0);
        assert_eq!(slowmo(&m).extra_comm_bytes(), 0);
        assert_eq!(scaffold(&m).extra_comm_bytes(), 2 * m.n_params * 4);
        assert_eq!(mimelite(&m).extra_comm_bytes(), 2 * m.n_params * 4);
        // the uplink half is what the upload codec sees
        assert_eq!(scaffold(&m).up_params, m.n_params);
        assert_eq!(mimelite(&m).down_params, m.n_params);
    }

    #[test]
    fn scaffold_includes_full_batch_gradient() {
        let m = cnn_like();
        let full_grad = m.local_samples as f64 * (m.fp_per_sample + m.bp_per_sample) as f64;
        assert!(scaffold(&m).flops > full_grad);
        assert_eq!(mimelite(&m).flops, full_grad);
    }

    #[test]
    fn base_train_flops_scales_with_iterations() {
        let mut m = cnn_like();
        let f1 = m.base_train_flops();
        m.local_iterations *= 2;
        assert_eq!(m.base_train_flops(), 2.0 * f1);
    }
}
