//! Declarative experiment specs shared by examples, tests and the
//! table/figure binaries.
//!
//! A spec names a paper experiment cell (dataset, model, heterogeneity,
//! participation, method, hyper-parameters) plus a [`Scale`]. `smoke` runs in
//! seconds (CI), `default` in minutes (laptop), `paper` at the full Table II
//! sample counts and 100 rounds.

use crate::algorithms::{AlgorithmKind, HyperParams, XiMode};
use crate::engine::{RoundRecord, Simulation, SimulationConfig};
use fedtrip_data::partition::HeterogeneityKind;
use fedtrip_data::synth::DatasetKind;
use fedtrip_models::ModelKind;
use serde::{Deserialize, Serialize};

/// Execution scale for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds: tiny models, few samples, few rounds — CI smoke.
    Smoke,
    /// Minutes on a laptop: real models, reduced samples/rounds. The
    /// default for the table/figure binaries.
    Default,
    /// The paper's full configuration (Table II sample counts, 100 rounds).
    Paper,
}

impl Scale {
    /// Parse `smoke` / `default` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// A fully specified experiment cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Dataset preset.
    pub dataset: DatasetKind,
    /// Model architecture.
    pub model: ModelKind,
    /// Heterogeneity regime.
    pub heterogeneity: HeterogeneityKind,
    /// Federation size `N`.
    pub n_clients: usize,
    /// Participants per round `K`.
    pub clients_per_round: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs.
    pub local_epochs: usize,
    /// The method under test.
    pub algorithm: AlgorithmKind,
    /// Method hyper-parameters.
    pub hyper: HyperParams,
    /// Execution scale.
    pub scale: Scale,
    /// Seed (trial index is usually folded in here).
    pub seed: u64,
}

impl ExperimentSpec {
    /// The paper's default cell: CNN on MNIST, Dir-0.5, 4-of-10, FedTrip.
    pub fn quickstart() -> Self {
        ExperimentSpec {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::Cnn,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 10,
            clients_per_round: 4,
            rounds: 100,
            local_epochs: 1,
            algorithm: AlgorithmKind::FedTrip,
            hyper: HyperParams::default(),
            scale: Scale::Default,
            seed: 2023,
        }
    }

    /// Use another method (builder style).
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Change the scale (builder style).
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Change the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// FedTrip's `mu` follows the paper's rule: 1.0 for MLP experiments,
    /// 0.4 otherwise (§V-A).
    pub fn paper_mu(model: ModelKind) -> f32 {
        match model {
            ModelKind::Mlp | ModelKind::TinyMlp => 1.0,
            _ => 0.4,
        }
    }

    /// FedDyn's `alpha` follows the paper's rule: 1.0 on MNIST, 0.1 else.
    pub fn paper_feddyn_alpha(dataset: DatasetKind) -> f32 {
        match dataset {
            DatasetKind::MnistLike => 1.0,
            _ => 0.1,
        }
    }

    /// Hyper-parameters with the paper's per-cell rules applied.
    pub fn paper_hyper(dataset: DatasetKind, model: ModelKind) -> HyperParams {
        HyperParams {
            fedtrip_mu: Self::paper_mu(model),
            xi_mode: XiMode::Gap,
            feddyn_alpha: Self::paper_feddyn_alpha(dataset),
            ..HyperParams::default()
        }
    }

    /// Lower the simulation cost for the given scale:
    /// smoke swaps models for tiny variants and truncates everything;
    /// default keeps the architectures but reduces per-client samples and
    /// rounds; paper changes nothing.
    pub fn to_config(&self) -> SimulationConfig {
        let (model, client_samples, rounds, test_per_class, batch) = match self.scale {
            Scale::Smoke => {
                let m = match self.model {
                    ModelKind::Mlp | ModelKind::TinyMlp => ModelKind::TinyMlp,
                    _ => ModelKind::TinyCnn,
                };
                (m, Some(60), self.rounds.min(6), 5, 20)
            }
            // Reduced scales keep the paper's ~12 local iterations per round
            // (samples / batch = 600 / 50): with momentum 0.9 and very few
            // iterations per round, fresh-velocity SGDm amplifies the first
            // (class-biased) batches and inflates client drift, which is an
            // artifact of shrinking, not a property of the methods.
            Scale::Default => match self.model {
                // single-core default scale stands AlexNet down to the
                // compact CIFAR CNN (documented in DESIGN.md §2)
                ModelKind::AlexNet | ModelKind::CifarCnn => {
                    (ModelKind::CifarCnn, Some(96), self.rounds.min(25), 20, 8)
                }
                ModelKind::Cnn => (ModelKind::Cnn, Some(150), self.rounds.min(40), 20, 12),
                m => (m, Some(300), self.rounds.min(60), 20, 25),
            },
            Scale::Paper => (self.model, None, self.rounds, 100, 50),
        };
        SimulationConfig {
            dataset: self.dataset,
            model,
            heterogeneity: self.heterogeneity,
            n_clients: self.n_clients,
            clients_per_round: self.clients_per_round,
            rounds,
            local_epochs: self.local_epochs,
            batch_size: batch,
            lr: 0.01,
            momentum: 0.9,
            seed: self.seed,
            test_per_class,
            client_samples_override: client_samples,
            eval_every: 1,
            ..SimulationConfig::default()
        }
    }

    /// Build and run the simulation to completion, returning its records.
    pub fn run(&self) -> Vec<RoundRecord> {
        let mut sim = self.build();
        sim.run().to_vec()
    }

    /// Build the simulation without running it.
    pub fn build(&self) -> Simulation {
        Simulation::new(self.to_config(), self.algorithm.build(&self.hyper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_matches_paper_defaults() {
        let s = ExperimentSpec::quickstart();
        assert_eq!(s.n_clients, 10);
        assert_eq!(s.clients_per_round, 4);
        assert_eq!(s.rounds, 100);
        assert_eq!(s.algorithm, AlgorithmKind::FedTrip);
    }

    #[test]
    fn paper_mu_rule() {
        assert_eq!(ExperimentSpec::paper_mu(ModelKind::Mlp), 1.0);
        assert_eq!(ExperimentSpec::paper_mu(ModelKind::Cnn), 0.4);
        assert_eq!(ExperimentSpec::paper_mu(ModelKind::AlexNet), 0.4);
    }

    #[test]
    fn paper_feddyn_alpha_rule() {
        assert_eq!(
            ExperimentSpec::paper_feddyn_alpha(DatasetKind::MnistLike),
            1.0
        );
        assert_eq!(
            ExperimentSpec::paper_feddyn_alpha(DatasetKind::Cifar10Like),
            0.1
        );
    }

    #[test]
    fn smoke_scale_shrinks_everything() {
        let s = ExperimentSpec::quickstart().with_scale(Scale::Smoke);
        let c = s.to_config();
        assert_eq!(c.model, ModelKind::TinyCnn);
        assert!(c.rounds <= 6);
        assert_eq!(c.client_samples_override, Some(60));
    }

    #[test]
    fn paper_scale_is_faithful() {
        let s = ExperimentSpec::quickstart().with_scale(Scale::Paper);
        let c = s.to_config();
        assert_eq!(c.model, ModelKind::Cnn);
        assert_eq!(c.rounds, 100);
        assert_eq!(c.client_samples_override, None);
        assert_eq!(c.batch_size, 50);
        assert_eq!(c.lr, 0.01);
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("SMOKE"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn smoke_run_end_to_end() {
        let records = ExperimentSpec::quickstart().with_scale(Scale::Smoke).run();
        assert!(!records.is_empty());
        assert!(records.last().unwrap().accuracy.is_some());
    }
}
