//! Local-training fan-out.
//!
//! One batch of clients trains **in parallel** (rayon — clients are
//! independent) from a given global model. Outcomes are returned in the
//! order the clients were passed in, and every client derives its own RNG
//! stream from `(seed, round, client)`, so thread scheduling can never
//! change results. This is the pre-runtime engine's round body, moved
//! verbatim so both schedulers share one code path.

use crate::algorithms::{Algorithm, ClientData, ClientState, LocalContext, LocalOutcome};
use crate::engine::SimulationConfig;
use fedtrip_data::partition::Partition;
use fedtrip_data::synth::SyntheticVision;
use fedtrip_tensor::Sequential;
use rayon::prelude::*;

/// Shared, read-only context for training a batch of clients.
pub struct ClientExecutor<'a> {
    /// Engine configuration (epochs, batch size, LR schedule, seed).
    pub cfg: &'a SimulationConfig,
    /// The procedural dataset.
    pub dataset: &'a SyntheticVision,
    /// Per-client sample assignment.
    pub partition: &'a Partition,
    /// Architecture template (cloned per worker).
    pub template: &'a Sequential,
}

impl ClientExecutor<'_> {
    /// Train `clients` in parallel from `global`, as server step `round`
    /// (1-based; also the LR-schedule index and the RNG stream tag).
    ///
    /// Client states are taken out of `states` for the duration of training
    /// and returned afterwards; outcomes come back in `clients` order.
    pub fn train_batch(
        &self,
        algorithm: &dyn Algorithm,
        global: &[f32],
        states: &mut [ClientState],
        clients: &[usize],
        round: usize,
    ) -> Vec<LocalOutcome> {
        // pull the selected clients' states out so rayon workers own them
        let mut taken: Vec<(usize, ClientState)> = clients
            .iter()
            .map(|&c| (c, std::mem::take(&mut states[c])))
            .collect();

        let cfg = self.cfg;
        let dataset = self.dataset;
        let partition = self.partition;
        let template = self.template;
        let round_lr = cfg.lr_schedule.lr_at(cfg.lr, round);

        let outcomes: Vec<LocalOutcome> = taken
            .par_iter_mut()
            .map(|(client_id, state)| {
                let mut net = template.clone();
                net.set_params_flat(global);
                let ctx = LocalContext {
                    round,
                    client_id: *client_id,
                    global,
                    gap: state.last_round.map(|lr| round.saturating_sub(lr)),
                    epochs: cfg.local_epochs,
                    batch_size: cfg.batch_size,
                    lr: round_lr,
                    momentum: cfg.momentum,
                    seed: cfg.seed,
                };
                let data = ClientData {
                    dataset,
                    refs: &partition.clients[*client_id],
                };
                algorithm.local_train(&mut net, &data, state, &ctx)
            })
            .collect();

        // return states
        for (c, s) in taken {
            states[c] = s;
        }
        outcomes
    }
}
