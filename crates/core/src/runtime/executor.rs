//! Local-training fan-out.
//!
//! One batch of clients trains **in parallel** (rayon — clients are
//! independent) from a given global model. Outcomes are returned in the
//! order the clients were passed in, and every client derives its own RNG
//! stream from `(seed, round, client)`, so thread scheduling can never
//! change results. This is the pre-runtime engine's round body, moved
//! verbatim so both schedulers share one code path. The executor is also
//! where the upload codec ([`crate::compression`]) bites: each outcome's
//! parameters are encoded/decoded (with optional error feedback) before
//! any scheduler sees them, so the server only ever aggregates what
//! actually travelled the wire.
//!
//! ```
//! use fedtrip_core::algorithms::{AlgorithmKind, ClientStateStore, HyperParams};
//! use fedtrip_core::compression::Identity;
//! use fedtrip_core::engine::SimulationConfig;
//! use fedtrip_core::runtime::ClientExecutor;
//! use fedtrip_data::partition::Partition;
//! use fedtrip_data::synth::SyntheticVision;
//! use fedtrip_models::ModelKind;
//!
//! // a tiny 4-client federation, assembled by hand (the engine normally
//! // does all of this)
//! let cfg = SimulationConfig {
//!     model: ModelKind::TinyMlp,
//!     n_clients: 4,
//!     clients_per_round: 2,
//!     batch_size: 10,
//!     client_samples_override: Some(20),
//!     ..SimulationConfig::default()
//! };
//! let dataset = SyntheticVision::new(cfg.dataset, cfg.seed);
//! let mut spec = *dataset.spec();
//! spec.client_samples = 20;
//! let partition = Partition::build(&spec, cfg.heterogeneity, 4, cfg.seed);
//! let template = cfg.model.build(&spec.sample_shape(), spec.classes, cfg.seed);
//! let exec = ClientExecutor {
//!     cfg: &cfg,
//!     dataset: &dataset,
//!     partition: &partition,
//!     template: &template,
//!     compressor: &Identity,
//!     down_delta: false,
//!     resync_round: false,
//!     broadcast_epoch: 0,
//! };
//!
//! // train clients 1 and 3 in parallel from the initial global model
//! let global = template.params_flat();
//! let mut states = ClientStateStore::new(4);
//! let algorithm = AlgorithmKind::FedAvg.build(&HyperParams::default());
//! let outcomes = exec.train_batch(algorithm.as_ref(), &global, &mut states, &[1, 3], 1);
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| o.iterations > 0));
//! // only the two participants became resident in the sparse store
//! assert_eq!(states.resident(), 2);
//! assert_eq!(states.get(1).and_then(|s| s.last_round), Some(1));
//! assert_eq!(states.get(3).and_then(|s| s.last_round), Some(1));
//! ```

use crate::algorithms::{
    Algorithm, ClientData, ClientState, ClientStateStore, LocalContext, LocalOutcome,
};
use crate::compression::{error_feedback_step, Compressor};
use crate::engine::SimulationConfig;
use fedtrip_data::partition::Partition;
use fedtrip_data::synth::{SampleRef, SyntheticVision};
use fedtrip_tensor::{vecops, Sequential};
use rayon::prelude::*;
use std::sync::Arc;

/// Shared, read-only context for training a batch of clients.
pub struct ClientExecutor<'a> {
    /// Engine configuration (epochs, batch size, LR schedule, seed).
    pub cfg: &'a SimulationConfig,
    /// The procedural dataset.
    pub dataset: &'a SyntheticVision,
    /// Per-client sample assignment.
    pub partition: &'a Partition,
    /// Architecture template (cloned once per worker group).
    pub template: &'a Sequential,
    /// Upload codec applied to each outcome before it reaches the server
    /// (the lossless [`Identity`](crate::compression::Identity) skips the
    /// round trip entirely).
    pub compressor: &'a dyn Compressor,
    /// Whether the downlink broadcasts compressed **deltas** (a non-identity
    /// downlink codec). When `false` every broadcast is a dense full-model
    /// send and per-client sync epochs are never touched — the pre-delta
    /// path, bit for bit.
    pub down_delta: bool,
    /// Whether this round is a periodic full-model resync (every client
    /// receives the dense base regardless of its sync epoch).
    pub resync_round: bool,
    /// The server's current broadcast sync epoch: clients whose
    /// [`ClientState::sync_epoch`] differs (joiners, restores from pre-delta
    /// checkpoints) receive an on-demand dense base before any delta.
    pub broadcast_epoch: u64,
}

impl ClientExecutor<'_> {
    /// Train `clients` in parallel from `global`, as server step `round`
    /// (1-based; also the LR-schedule index and the RNG stream tag).
    ///
    /// Client states are taken out of the sparse `states` store for the
    /// duration of training and returned afterwards (which is what makes a
    /// client *resident*: only clients that ever reach this point hold a
    /// store entry); outcomes come back in `clients` order. The round's
    /// shards are materialized from the lazy partition **before** the
    /// parallel fan-out, so the memo fill stays deterministic and
    /// lock-free workers only read.
    pub fn train_batch(
        &self,
        algorithm: &dyn Algorithm,
        global: &[f32],
        states: &mut ClientStateStore,
        clients: &[usize],
        round: usize,
    ) -> Vec<LocalOutcome> {
        // pull the selected clients' states (and shards) so rayon workers
        // own everything they need
        let mut taken: Vec<(usize, ClientState, Arc<[SampleRef]>)> = clients
            .iter()
            .map(|&c| (c, states.take(c), self.partition.shard(c)))
            .collect();

        let cfg = self.cfg;
        let dataset = self.dataset;
        let template = self.template;
        let compressor = self.compressor;
        let (down_delta, resync_round, broadcast_epoch) =
            (self.down_delta, self.resync_round, self.broadcast_epoch);
        let round_lr = cfg.lr_schedule.lr_at(cfg.lr, round);

        // One template clone per worker group, not per client: the network
        // (its scratch arena, layer caches, and the thread-local GEMM pack
        // buffers it warms) is reused across every client in the group, so
        // steady-state local training stays allocation-free. Reuse cannot
        // change results: loading the global parameters plus the per-batch
        // `zero_grads` resets everything a training run reads, and scratch
        // buffers are overwritten before use — so outcomes are independent
        // of how clients are grouped onto workers.
        let groups = rayon::current_num_threads().max(1);
        let chunk = taken.len().div_ceil(groups).max(1);
        let grouped: Vec<Vec<LocalOutcome>> = taken
            .par_chunks_mut(chunk)
            .map(|group| {
                let mut net = template.clone();
                let mut outs = Vec::with_capacity(group.len());
                for (client_id, state, shard) in group.iter_mut() {
                    net.set_params_flat(global);
                    let ctx = LocalContext {
                        round,
                        client_id: *client_id,
                        global,
                        gap: state.last_round.map(|lr| round.saturating_sub(lr)),
                        epochs: cfg.local_epochs,
                        batch_size: cfg.batch_size,
                        lr: round_lr,
                        momentum: cfg.momentum,
                        seed: cfg.seed,
                    };
                    let data = ClientData {
                        dataset,
                        refs: &shard[..],
                    };
                    let mut outcome = algorithm.local_train(&mut net, &data, state, &ctx);
                    // delta-downlink bookkeeping: a client whose view is not
                    // in the current sync epoch (first participation, churn
                    // joiner, pre-delta restore) — or anyone on a resync
                    // round — received the dense base; everyone else got
                    // the compressed delta. Dense downlinks never touch the
                    // epoch, so the legacy state layout is preserved.
                    if down_delta {
                        outcome.dense_down =
                            resync_round || state.sync_epoch != Some(broadcast_epoch);
                        state.sync_epoch = Some(broadcast_epoch);
                    }
                    if !compressor.is_identity() {
                        compress_outcome(
                            &mut outcome,
                            global,
                            state,
                            compressor,
                            cfg.error_feedback,
                        );
                    }
                    outs.push(outcome);
                }
                outs
            })
            .collect();
        let outcomes: Vec<LocalOutcome> = grouped.into_iter().flatten().collect();

        // return states
        for (c, s, _) in taken {
            states.put(c, s);
        }
        outcomes
    }
}

/// Encode/decode a client's upload through the codec at the
/// executor→scheduler boundary, so the server only ever sees what actually
/// travelled the wire.
///
/// The codec works on the *update* `w_k - w_global` (updates are
/// near-zero-centred, which is what makes affine quantization and top-k
/// selection effective); the reconstructed parameters are
/// `w_global + decode(encode(delta))`. With error feedback on, the part of
/// the (residual-compensated) update the encoding dropped is stored back
/// into [`ClientState::residual`] and rides this client's next
/// participation. The client's own local state (`historical`, corrections)
/// keeps the uncompressed model — only the server-bound copy is lossy.
/// Auxiliary uploads (SCAFFOLD's control-variate delta, MimeLite's
/// full-batch gradient) take the same codec without feedback.
fn compress_outcome(
    outcome: &mut LocalOutcome,
    global: &[f32],
    state: &mut ClientState,
    compressor: &dyn Compressor,
    error_feedback: bool,
) {
    let delta = vecops::sub(&outcome.params, global);
    let (decoded, _wire) =
        error_feedback_step(compressor, &delta, &mut state.residual, error_feedback);
    let mut params = global.to_vec();
    vecops::axpy(&mut params, 1.0, &decoded);
    outcome.params = params;
    if let Some(aux) = outcome.aux.take() {
        let wire = compressor.encode(&aux);
        outcome.aux = Some(compressor.decode(&wire, aux.len()));
    }
}
