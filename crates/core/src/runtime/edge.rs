//! Hierarchical aggregation tier: edge aggregators between clients and the
//! root server.
//!
//! Planet-scale federations do not fold a million clients into one server;
//! they run a client → edge-aggregator → root tree (the standard production
//! topology of the communication-perspective surveys). This module models
//! that tier: clients are sharded across `E` edge nodes by `client mod E`,
//! each edge runs its **own** streaming [`ServerFold`] over its cohort and
//! its own [`VirtualClock`], and the root combines the edge summaries with
//! the associative [`ServerFold::merge`] — pairwise, level by level, across
//! rayon threads.
//!
//! Two invariants make the tier safe to leave always-on:
//!
//! * **`E = 1` is the flat fold, bit for bit.** A tree of one fold performs
//!   no merge and charges no uplink, so the degenerate tier runs the exact
//!   float sequence of the pre-tier scheduler (pinned by the golden
//!   fixtures).
//! * **Determinism at any `E`.** Sharding, per-edge fold order (arrival
//!   order within each shard), and the merge tree (ascending edge index,
//!   fixed pairing per level) are all functions of the cohort alone — never
//!   of thread scheduling.
//!
//! ```
//! use fedtrip_core::algorithms::{AlgorithmKind, HyperParams, LocalOutcome};
//! use fedtrip_core::runtime::{EdgeTier, VirtualClock};
//!
//! let alg = AlgorithmKind::FedAvg.build(&HyperParams::default());
//! let mk = |v: f32| LocalOutcome {
//!     params: vec![v, v],
//!     n_samples: 10,
//!     mean_loss: 0.0,
//!     iterations: 1,
//!     train_flops: 0.0,
//!     aux: None,
//!     staleness: 0,
//!     agg_weight: 1.0,
//!     dense_down: true,
//! };
//!
//! // four clients shard across two edges (client mod E); the root merge
//! // reproduces the flat weighted average
//! let tier = EdgeTier::new(2);
//! let outcomes = vec![mk(1.0), mk(2.0), mk(3.0), mk(4.0)];
//! let (fold, folded, active) =
//!     tier.fold_streamed(alg.as_ref(), &[0.0, 0.0], &[0, 1, 2, 3], outcomes);
//! assert_eq!(active, vec![0, 1]);
//! assert_eq!(folded.len(), 4);
//! assert!((fold.into_avg()[0] - 2.5).abs() < 1e-6);
//!
//! // each edge waits for its slowest cohort member, ships its summary
//! // uplink, and the root waits for the slowest edge
//! let mut tier = EdgeTier::new(2);
//! let mut root = VirtualClock::new();
//! tier.advance_round(&mut root, &[(0, 3.0), (1, 5.0)], 1.0);
//! assert_eq!(root.now(), 6.0);
//! ```

use super::clock::VirtualClock;
use super::scheduler::FoldStats;
use crate::algorithms::{Algorithm, FoldPlan, LocalOutcome, ServerFold};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// One edge's partial result: its streaming fold plus the per-outcome
/// accounting scalars, in shard arrival order.
type PartialFold = (ServerFold, Vec<FoldStats>);

/// One edge's cohort slice: `(client, outcome)` pairs in shard order, so
/// per-outcome stats keep their attribution through the shard-major
/// reorder.
type EdgeBucket = Vec<(usize, LocalOutcome)>;

/// The edge-aggregator tier: `E` edge nodes, each with its own virtual
/// clock, folding disjoint client shards before the root merge.
#[derive(Debug, Clone)]
pub struct EdgeTier {
    clocks: Vec<VirtualClock>,
}

impl EdgeTier {
    /// A tier of `n_edges` edge aggregators, all clocks at `t = 0`.
    ///
    /// # Panics
    /// Panics when `n_edges == 0`.
    pub fn new(n_edges: usize) -> Self {
        assert!(n_edges > 0, "need at least one edge aggregator");
        EdgeTier {
            clocks: vec![VirtualClock::new(); n_edges],
        }
    }

    /// Number of edge aggregators `E`.
    pub fn n_edges(&self) -> usize {
        self.clocks.len()
    }

    /// The edge aggregator a client reports to (`client mod E`).
    pub fn edge_of(&self, client: usize) -> usize {
        client % self.clocks.len()
    }

    /// Per-edge clock instants, in edge order (checkpoint capture).
    pub fn clock_times(&self) -> Vec<f64> {
        self.clocks.iter().map(|c| c.now()).collect()
    }

    /// Restore per-edge clocks from checkpointed instants.
    ///
    /// # Panics
    /// Panics when `times.len() != E` (checkpoint restore validates the
    /// length before calling this).
    pub fn restore_times(&mut self, times: &[f64]) {
        assert_eq!(
            times.len(),
            self.clocks.len(),
            "edge clock count mismatch on restore"
        );
        for (clock, &t) in self.clocks.iter_mut().zip(times) {
            clock.restore(t);
        }
    }

    /// Advance the tier through one fold: each listed edge first catches up
    /// to the root (it cannot start relaying before the root published the
    /// model it is relaying results for), then advances by its own cohort
    /// barrier `dt` plus the edge→root summary uplink; finally the root
    /// waits for the slowest participating edge.
    ///
    /// With `E = 1` and `uplink_secs == 0.0` this is bit-identical to
    /// `root.advance_by(dt)`: the single edge is never behind the root, and
    /// `dt + 0.0 == dt` exactly.
    pub fn advance_round(
        &mut self,
        root: &mut VirtualClock,
        edge_durations: &[(usize, f64)],
        uplink_secs: f64,
    ) {
        for &(e, dt) in edge_durations {
            let clock = &mut self.clocks[e];
            clock.advance_to(root.now());
            clock.advance_by(dt + uplink_secs);
        }
        for &(e, _) in edge_durations {
            root.advance_to(self.clocks[e].now());
        }
    }

    /// Fold a cohort through the edge tree: shard `(client, outcome)` pairs
    /// by `client mod E` (arrival order preserved within each shard), run
    /// one streaming [`ServerFold`] per non-empty edge across rayon
    /// threads, then merge the edge summaries pairwise in ascending edge
    /// order — each merge level's pairs also run in parallel.
    ///
    /// Returns the merged root fold, the per-outcome accounting scalars in
    /// shard-major order (which is the input order when `E = 1`), and the
    /// ascending list of active edge indices. Only active edges (at most
    /// `min(E, cohort)`) ever allocate a fold, so tier cost scales with the
    /// cohort, not with `E`.
    ///
    /// # Panics
    /// Panics when `clients` and `outcomes` disagree in length, or on an
    /// empty cohort ([`ServerFold::begin`]'s invariant).
    pub fn fold_streamed(
        &self,
        algorithm: &dyn Algorithm,
        global: &[f32],
        clients: &[usize],
        outcomes: Vec<LocalOutcome>,
    ) -> (ServerFold, Vec<FoldStats>, Vec<usize>) {
        assert_eq!(
            clients.len(),
            outcomes.len(),
            "one client id per outcome required"
        );
        // shard — the degenerate single-edge tier keeps the cohort as one
        // bucket in input order (the flat-fold float sequence); buckets
        // carry `(client, outcome)` pairs so the per-outcome stats keep
        // their attribution through the shard-major reorder
        let buckets: Vec<(usize, EdgeBucket)> = if self.n_edges() == 1 {
            vec![(0, clients.iter().copied().zip(outcomes).collect())]
        } else {
            let mut by_edge: BTreeMap<usize, EdgeBucket> = BTreeMap::new();
            for (o, &c) in outcomes.into_iter().zip(clients) {
                by_edge.entry(self.edge_of(c)).or_default().push((c, o));
            }
            by_edge.into_iter().collect()
        };
        let active: Vec<usize> = buckets.iter().map(|(e, _)| *e).collect();

        // per-edge streaming folds, one rayon item per active edge
        let mut work: Vec<(EdgeBucket, Option<PartialFold>)> = buckets
            .into_iter()
            .map(|(_, bucket)| (bucket, None))
            .collect();
        work.par_iter_mut().for_each(|(bucket, slot)| {
            let plan = FoldPlan::for_outcomes(bucket.iter().map(|(_, o)| o));
            let mut fold = ServerFold::begin(global.len(), plan);
            algorithm.server_begin(&mut fold);
            let mut stats = Vec::with_capacity(bucket.len());
            for (c, o) in bucket.drain(..) {
                fold.absorb(algorithm, &o, global);
                stats.push(FoldStats {
                    client: c,
                    mean_loss: o.mean_loss,
                    train_flops: o.train_flops,
                    staleness: o.staleness,
                    dense_down: o.dense_down,
                });
                // `o` (and its full parameter vector) drops here
            }
            *slot = Some((fold, stats));
        });
        let mut folds: Vec<PartialFold> = work
            .into_iter()
            .map(|(_, slot)| slot.expect("every bucket folded")) // lint:allow(panic) — every bucket filled by the fold loop above
            .collect();

        // root merge: fixed pairwise tree, ascending edge order; the pairs
        // of each level merge concurrently (merge is associative)
        while folds.len() > 1 {
            let mut level = folds.into_iter();
            let mut pairs: Vec<(PartialFold, Option<PartialFold>)> = Vec::new();
            while let Some(left) = level.next() {
                pairs.push((left, level.next()));
            }
            pairs.par_iter_mut().for_each(|(left, right)| {
                if let Some((fold, stats)) = right.take() {
                    left.0.merge(algorithm, fold);
                    left.1.extend(stats);
                }
            });
            folds = pairs.into_iter().map(|(left, _)| left).collect();
        }
        let (fold, folded) = folds.pop().expect("non-empty cohort"); // lint:allow(panic) — caller guarantees a non-empty cohort
        (fold, folded, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{AlgorithmKind, HyperParams};

    fn outcome(v: f32, n_samples: usize) -> LocalOutcome {
        LocalOutcome {
            params: vec![v; 3],
            n_samples,
            mean_loss: v as f64,
            iterations: 1,
            train_flops: 1.0,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    #[test]
    fn single_edge_tier_matches_flat_fold_bitwise() {
        let alg = AlgorithmKind::FedAvg.build(&HyperParams::default());
        let global = vec![0.0f32; 3];
        let outcomes: Vec<LocalOutcome> =
            (0..5).map(|i| outcome(i as f32 + 0.125, 10 + i)).collect();

        let plan = FoldPlan::for_outcomes(outcomes.iter());
        let mut flat = ServerFold::begin(global.len(), plan);
        alg.server_begin(&mut flat);
        for o in &outcomes {
            flat.absorb(alg.as_ref(), o, &global);
        }

        let tier = EdgeTier::new(1);
        let clients: Vec<usize> = (0..outcomes.len()).collect();
        let (fold, folded, active) = tier.fold_streamed(alg.as_ref(), &global, &clients, outcomes);
        assert_eq!(active, vec![0]);
        assert_eq!(folded.len(), 5);
        assert_eq!(fold.into_avg(), flat.into_avg());
    }

    #[test]
    fn sharding_is_by_client_mod_e_and_active_edges_are_sorted() {
        let alg = AlgorithmKind::FedAvg.build(&HyperParams::default());
        let global = vec![0.0f32; 3];
        let clients = [7, 2, 9, 4]; // mod 3: edges 1, 2, 0, 1
        let outcomes: Vec<LocalOutcome> = clients.iter().map(|&c| outcome(c as f32, 10)).collect();
        let tier = EdgeTier::new(3);
        let (fold, folded, active) = tier.fold_streamed(alg.as_ref(), &global, &clients, outcomes);
        assert_eq!(active, vec![0, 1, 2]);
        assert_eq!(fold.plan().cohort, 4);
        // shard-major stats order: edge 0 (client 9), edge 1 (7 then 4), edge 2 (2)
        let order: Vec<f64> = folded.iter().map(|s| s.mean_loss).collect();
        assert_eq!(order, vec![9.0, 7.0, 4.0, 2.0]);
        // attribution survives the reorder
        let by_client: Vec<usize> = folded.iter().map(|s| s.client).collect();
        assert_eq!(by_client, vec![9, 7, 4, 2]);
    }

    #[test]
    fn merged_fold_agrees_with_flat_average() {
        let alg = AlgorithmKind::FedAvg.build(&HyperParams::default());
        let global = vec![0.0f32; 3];
        let clients: Vec<usize> = (0..9).collect();
        let outcomes: Vec<LocalOutcome> = clients
            .iter()
            .map(|&c| outcome(c as f32 * 0.5 - 1.0, 5 + c))
            .collect();
        let flat = crate::algorithms::weighted_param_average(&outcomes);
        for e in [2, 4, 7] {
            let tier = EdgeTier::new(e);
            let (fold, _, _) =
                tier.fold_streamed(alg.as_ref(), &global, &clients, outcomes.clone());
            let merged = fold.into_avg();
            for (a, b) in merged.iter().zip(&flat) {
                assert!((a - b).abs() < 1e-5, "E={e}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn advance_round_is_max_of_edges_plus_uplink() {
        let mut tier = EdgeTier::new(4);
        let mut root = VirtualClock::new();
        tier.advance_round(&mut root, &[(0, 3.0), (2, 5.0)], 0.5);
        assert_eq!(root.now(), 5.5);
        // idle edges stayed at 0 and catch up on their next participation
        assert_eq!(tier.clock_times(), vec![3.5, 0.0, 5.5, 0.0]);
        tier.advance_round(&mut root, &[(1, 1.0)], 0.5);
        assert_eq!(root.now(), 7.0);
    }

    #[test]
    fn clock_times_round_trip_through_restore() {
        let mut tier = EdgeTier::new(3);
        let mut root = VirtualClock::new();
        tier.advance_round(&mut root, &[(0, 1.0), (1, 2.0), (2, 3.0)], 0.25);
        let times = tier.clock_times();
        let mut fresh = EdgeTier::new(3);
        fresh.restore_times(&times);
        assert_eq!(fresh.clock_times(), times);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn rejects_zero_edges() {
        let _ = EdgeTier::new(0);
    }
}
