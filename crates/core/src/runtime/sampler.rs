//! Client participation: selection strategies and straggler injection.
//!
//! Moved verbatim out of the monolithic engine — the RNG stream derivations
//! (`(seed, SELECT, t)` for selection, `(seed, FA11, t)` for failures) are
//! unchanged, which is what keeps the [`Synchronous`](super::Synchronous)
//! scheduler bit-identical to the pre-runtime engine.
//!
//! ```
//! use fedtrip_core::runtime::{Sampler, SelectionStrategy};
//!
//! // 3-of-6 uniform selection, no failure injection; client_sizes feed the
//! // WeightedBySamples strategy and are ignored here
//! let sampler = Sampler::new(7, 3, SelectionStrategy::Uniform, 0.0, vec![50; 6]);
//! let round_1 = sampler.participants(1);
//! assert_eq!(round_1.len(), 3);
//! assert_eq!(round_1, sampler.participants(1)); // pure function of (seed, t)
//! assert!(round_1.windows(2).all(|w| w[0] < w[1])); // sorted, distinct
//! ```

use fedtrip_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

/// How the server picks the `K` participants of each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// The paper's rule: uniform sampling without replacement.
    Uniform,
    /// Deterministic rotation through the client list — every client
    /// participates exactly once every `N / K` rounds (gap is constant,
    /// which also pins FedTrip's `xi`; useful for ablations).
    RoundRobin,
    /// Sample proportional to local data size (without replacement) —
    /// the "capability-aware" selection common in production FL.
    WeightedBySamples,
}

impl SelectionStrategy {
    /// Parse `uniform` / `roundrobin` / `weighted` (case-insensitive).
    pub fn parse(s: &str) -> Option<SelectionStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Some(SelectionStrategy::Uniform),
            "roundrobin" | "round-robin" => Some(SelectionStrategy::RoundRobin),
            "weighted" | "weightedbysamples" => Some(SelectionStrategy::WeightedBySamples),
            _ => None,
        }
    }
}

/// Owns *who* participates: seeded selection plus straggler injection.
#[derive(Debug, Clone)]
pub struct Sampler {
    seed: u64,
    n_clients: usize,
    clients_per_round: usize,
    strategy: SelectionStrategy,
    failure_prob: f32,
    /// Per-client sample counts (weights for `WeightedBySamples`).
    client_sizes: Vec<usize>,
}

impl Sampler {
    /// Build a sampler for a federation.
    pub fn new(
        seed: u64,
        clients_per_round: usize,
        strategy: SelectionStrategy,
        failure_prob: f32,
        client_sizes: Vec<usize>,
    ) -> Self {
        let n_clients = client_sizes.len();
        assert!(n_clients > 0, "need at least one client");
        assert!(
            clients_per_round > 0 && clients_per_round <= n_clients,
            "clients_per_round must be in 1..=n_clients"
        );
        Sampler {
            seed,
            n_clients,
            clients_per_round,
            strategy,
            failure_prob,
            client_sizes,
        }
    }

    /// Pick round `t`'s participants according to the selection strategy
    /// (sorted, distinct).
    pub fn select(&self, t: usize) -> Vec<usize> {
        let (n, k) = (self.n_clients, self.clients_per_round);
        let mut sel_rng = Prng::derive(self.seed, &[0x005E_1EC7 /* "SELECT" */, t as u64]);
        let mut selected = match self.strategy {
            SelectionStrategy::Uniform => sel_rng.sample_indices(n, k),
            SelectionStrategy::RoundRobin => (0..k).map(|i| ((t - 1) * k + i) % n).collect(),
            SelectionStrategy::WeightedBySamples => weighted_draw(
                &mut sel_rng,
                self.client_sizes.iter().map(|&c| c as f64).collect(),
                k,
            ),
        };
        selected.sort_unstable(); // deterministic aggregation order
        selected.dedup();
        selected
    }

    /// Apply straggler injection: drop each selected client with the
    /// configured probability, always keeping at least one survivor.
    pub fn apply_failures(&self, t: usize, selected: &[usize]) -> Vec<usize> {
        if self.failure_prob <= 0.0 {
            return selected.to_vec();
        }
        let mut rng = Prng::derive(self.seed, &[0xFA_11, t as u64]);
        let mut survivors: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|_| rng.uniform() >= self.failure_prob)
            .collect();
        if survivors.is_empty() {
            // keep one deterministic survivor so the round still aggregates
            survivors.push(selected[rng.below(selected.len())]);
        }
        survivors
    }

    /// Selection followed by failure injection — one round's participants.
    pub fn participants(&self, t: usize) -> Vec<usize> {
        self.apply_failures(t, &self.select(t))
    }

    /// Select up to `k` clients from a restricted candidate `pool` (the
    /// semi-async re-dispatch path: only idle clients are eligible). Uses a
    /// dedicated RNG stream tagged `(DISPATCH, t)` so it never collides with
    /// the synchronous selection stream.
    pub fn select_among(&self, t: usize, pool: &[usize], k: usize) -> Vec<usize> {
        let k = k.min(pool.len());
        if k == 0 {
            return Vec::new();
        }
        let mut rng = Prng::derive(self.seed, &[0xD15_9A7C /* "DISPATCH" */, t as u64]);
        let mut picked: Vec<usize> = match self.strategy {
            SelectionStrategy::Uniform => rng
                .sample_indices(pool.len(), k)
                .into_iter()
                .map(|i| pool[i])
                .collect(),
            SelectionStrategy::RoundRobin => {
                // rotate through the pool; dedup below collapses wrap-around
                (0..k).map(|i| pool[((t - 1) * k + i) % pool.len()]).collect()
            }
            SelectionStrategy::WeightedBySamples => weighted_draw(
                &mut rng,
                pool.iter().map(|&c| self.client_sizes[c] as f64).collect(),
                k,
            )
            .into_iter()
            .map(|i| pool[i])
            .collect(),
        };
        picked.sort_unstable();
        picked.dedup();
        picked
    }
}

/// Sequential weighted draw without replacement: up to `k` distinct indices
/// into `weights`, each draw proportional to the remaining weight mass.
/// Stops early if the remaining mass is exhausted. Shared by the full-
/// federation selection and the restricted semi-async redispatch so the two
/// paths can never diverge.
fn weighted_draw(rng: &mut Prng, mut weights: Vec<f64>, k: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    for _ in 0..k {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut u = rng.uniform() as f64 * total;
        let mut chosen = 0;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            u -= w;
            chosen = i;
            if u <= 0.0 {
                break;
            }
        }
        picked.push(chosen);
        weights[chosen] = 0.0;
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(strategy: SelectionStrategy, failure_prob: f32) -> Sampler {
        Sampler::new(42, 3, strategy, failure_prob, vec![10, 20, 30, 40, 50, 60])
    }

    #[test]
    fn select_is_distinct_sorted_and_deterministic() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ] {
            let s = sampler(strategy, 0.0);
            for t in 1..=8 {
                let a = s.select(t);
                let b = s.select(t);
                assert_eq!(a, b, "{strategy:?} t={t}");
                let mut sorted = a.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, a);
                assert!(a.iter().all(|&c| c < 6));
            }
        }
    }

    #[test]
    fn failures_always_keep_a_survivor() {
        let s = sampler(SelectionStrategy::Uniform, 1.0);
        for t in 1..=8 {
            let sel = s.select(t);
            let surv = s.apply_failures(t, &sel);
            assert_eq!(surv.len(), 1);
            assert!(sel.contains(&surv[0]));
        }
    }

    #[test]
    fn select_among_stays_in_pool() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ] {
            let s = sampler(strategy, 0.0);
            let pool = [1usize, 3, 5];
            for t in 1..=8 {
                let picked = s.select_among(t, &pool, 2);
                assert!(!picked.is_empty(), "{strategy:?}");
                assert!(picked.len() <= 2);
                assert!(picked.iter().all(|c| pool.contains(c)), "{picked:?}");
            }
        }
    }

    #[test]
    fn select_among_empty_pool_is_empty() {
        let s = sampler(SelectionStrategy::Uniform, 0.0);
        assert!(s.select_among(1, &[], 3).is_empty());
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            SelectionStrategy::parse("uniform"),
            Some(SelectionStrategy::Uniform)
        );
        assert_eq!(
            SelectionStrategy::parse("RoundRobin"),
            Some(SelectionStrategy::RoundRobin)
        );
        assert_eq!(
            SelectionStrategy::parse("weighted"),
            Some(SelectionStrategy::WeightedBySamples)
        );
        assert_eq!(SelectionStrategy::parse("x"), None);
    }
}
