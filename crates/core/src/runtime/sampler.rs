//! Client participation: selection strategies and straggler injection.
//!
//! Moved verbatim out of the monolithic engine — the RNG stream derivations
//! (`(seed, SELECT, t)` for selection, `(seed, FA11, t)` for failures) are
//! unchanged, which is what keeps the [`Synchronous`](super::Synchronous)
//! scheduler bit-identical to the pre-runtime engine.
//!
//! ```
//! use fedtrip_core::runtime::{Sampler, SelectionStrategy};
//!
//! // 3-of-6 uniform selection, no failure injection; client_sizes feed the
//! // WeightedBySamples strategy and are ignored here
//! let sampler = Sampler::new(7, 3, SelectionStrategy::Uniform, 0.0, vec![50; 6]);
//! let round_1 = sampler.participants(1);
//! assert_eq!(round_1.len(), 3);
//! assert_eq!(round_1, sampler.participants(1)); // pure function of (seed, t)
//! assert!(round_1.windows(2).all(|w| w[0] < w[1])); // sorted, distinct
//! ```

use super::availability::{AvailabilityModel, UtilityTable};
use super::clock::DeviceProfiles;
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use serde::{Deserialize, Serialize};

/// Exploration floor of the Oort-style strategy: the fraction of each
/// cohort reserved for uniform exploration of clients the utility table has
/// not observed recently. Oort anneals its ε from 0.9 towards 0.2; a fixed
/// floor keeps every round's stream layout a pure function of `t`.
const OORT_EXPLORE_FRAC: f64 = 0.3;

/// How the server picks the `K` participants of each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// The paper's rule: uniform sampling without replacement.
    Uniform,
    /// Deterministic rotation through the client list — every client
    /// participates exactly once every `N / K` rounds (gap is constant,
    /// which also pins FedTrip's `xi`; useful for ablations).
    RoundRobin,
    /// Sample proportional to local data size (without replacement) —
    /// the "capability-aware" selection common in production FL.
    WeightedBySamples,
    /// Oort-style utility-aware selection (Lai et al., OSDI '21): rank
    /// available clients by statistical utility (most recent observed
    /// training loss) × device speed, with a uniform exploration floor so
    /// unexplored clients keep entering the pool. Scores come from the
    /// engine-maintained [`UtilityTable`]; on the semi-async redispatch
    /// path ([`Sampler::select_idle`] / [`Sampler::select_among`]), where
    /// no utility snapshot is in scope, it degrades to uniform selection.
    Oort,
}

impl SelectionStrategy {
    /// Parse `uniform` / `roundrobin` / `weighted` / `oort`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<SelectionStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Some(SelectionStrategy::Uniform),
            "roundrobin" | "round-robin" => Some(SelectionStrategy::RoundRobin),
            "weighted" | "weightedbysamples" => Some(SelectionStrategy::WeightedBySamples),
            "oort" | "utility" => Some(SelectionStrategy::Oort),
            _ => None,
        }
    }

    /// Display name (round-trips through [`SelectionStrategy::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            SelectionStrategy::Uniform => "uniform",
            SelectionStrategy::RoundRobin => "roundrobin",
            SelectionStrategy::WeightedBySamples => "weighted",
            SelectionStrategy::Oort => "oort",
        }
    }
}

/// Per-client sample counts, without forcing an O(N) vector on the uniform
/// case.
///
/// The lazy partition guarantees every client the same quota, so the engine
/// describes a 10⁵-client federation in three words
/// ([`ClientSizes::Uniform`]); an explicit per-client vector stays available
/// for hand-built federations and the `WeightedBySamples` strategy's tests.
#[derive(Debug, Clone)]
pub enum ClientSizes {
    /// Every client holds `samples` samples.
    Uniform {
        /// Federation size.
        n_clients: usize,
        /// Samples per client.
        samples: usize,
    },
    /// Explicit per-client sample counts.
    PerClient(Vec<usize>),
}

impl ClientSizes {
    /// Federation size.
    pub fn n_clients(&self) -> usize {
        match self {
            ClientSizes::Uniform { n_clients, .. } => *n_clients,
            ClientSizes::PerClient(v) => v.len(),
        }
    }

    /// Client `c`'s sample count.
    pub fn get(&self, c: usize) -> usize {
        match self {
            ClientSizes::Uniform { samples, .. } => *samples,
            ClientSizes::PerClient(v) => v[c],
        }
    }

    /// Materialize the selection weights (O(N) — only the
    /// `WeightedBySamples` strategy pays this).
    fn weights(&self) -> Vec<f64> {
        (0..self.n_clients()).map(|c| self.get(c) as f64).collect()
    }
}

impl From<Vec<usize>> for ClientSizes {
    fn from(v: Vec<usize>) -> ClientSizes {
        ClientSizes::PerClient(v)
    }
}

/// Owns *who* participates: seeded selection plus straggler injection,
/// optionally filtered through an [`AvailabilityModel`].
#[derive(Debug, Clone)]
pub struct Sampler {
    seed: u64,
    n_clients: usize,
    clients_per_round: usize,
    strategy: SelectionStrategy,
    failure_prob: f32,
    /// Per-client sample counts (weights for `WeightedBySamples`).
    client_sizes: ClientSizes,
    /// Reachability traces and churn epochs; the default always-on model
    /// short-circuits to the legacy selection paths bit-for-bit.
    availability: AvailabilityModel,
    /// Device profiles for the Oort speed factor (unit spread by default).
    profiles: DeviceProfiles,
}

impl Sampler {
    /// Build a sampler for a federation (`client_sizes` may be a plain
    /// `Vec<usize>` or a [`ClientSizes`]). Availability defaults to
    /// always-on and device profiles to the homogeneous reference device;
    /// compose [`Sampler::with_availability`] /
    /// [`Sampler::with_profiles`] to override.
    pub fn new(
        seed: u64,
        clients_per_round: usize,
        strategy: SelectionStrategy,
        failure_prob: f32,
        client_sizes: impl Into<ClientSizes>,
    ) -> Self {
        let client_sizes = client_sizes.into();
        let n_clients = client_sizes.n_clients();
        assert!(n_clients > 0, "need at least one client");
        assert!(
            clients_per_round > 0 && clients_per_round <= n_clients,
            "clients_per_round must be in 1..=n_clients"
        );
        Sampler {
            seed,
            n_clients,
            clients_per_round,
            strategy,
            failure_prob,
            client_sizes,
            availability: AvailabilityModel::always_on(seed, n_clients),
            profiles: DeviceProfiles::new(seed, n_clients, 1.0),
        }
    }

    /// Replace the availability model (builder style).
    ///
    /// # Panics
    /// Panics when the model's federation size disagrees with the
    /// sampler's.
    pub fn with_availability(mut self, availability: AvailabilityModel) -> Self {
        assert_eq!(
            availability.n_clients(),
            self.n_clients,
            "availability model sized for a different federation"
        );
        self.availability = availability;
        self
    }

    /// Replace the device profiles used for the Oort speed factor
    /// (builder style).
    ///
    /// # Panics
    /// Panics when the profiles' federation size disagrees with the
    /// sampler's.
    pub fn with_profiles(mut self, profiles: DeviceProfiles) -> Self {
        assert_eq!(
            profiles.n_clients(),
            self.n_clients,
            "device profiles sized for a different federation"
        );
        self.profiles = profiles;
        self
    }

    /// The sampler's availability model (engine churn-eviction hook).
    pub fn availability(&self) -> &AvailabilityModel {
        &self.availability
    }

    /// Pick round `t`'s participants according to the selection strategy
    /// (sorted, distinct), with an empty utility table — identical to
    /// [`Sampler::select_with`] for every strategy except `Oort`, whose
    /// exploitation rank is empty without observed losses.
    pub fn select(&self, t: usize) -> Vec<usize> {
        self.select_with(t, &UtilityTable::default())
    }

    /// Pick round `t`'s participants (sorted, distinct), filtering through
    /// the availability model and scoring `Oort` selection against
    /// `utility`.
    ///
    /// The always-on model with a non-`Oort` strategy takes the legacy
    /// code path verbatim — same RNG stream, same draw count — which is
    /// what keeps the golden fixtures pinned. When a trace leaves *no*
    /// client reachable in round `t`, the filter is ignored for that round
    /// (liveness fallback, documented in DESIGN.md) so the federation
    /// never stalls.
    pub fn select_with(&self, t: usize, utility: &UtilityTable) -> Vec<usize> {
        if self.availability.is_always_on() && self.strategy != SelectionStrategy::Oort {
            return self.select_unfiltered(t);
        }
        let mut selected = match self.strategy {
            SelectionStrategy::Oort => self.select_oort(t, utility),
            SelectionStrategy::Uniform => self.select_uniform_filtered(t),
            SelectionStrategy::RoundRobin => self.select_roundrobin_filtered(t),
            SelectionStrategy::WeightedBySamples => self.select_weighted_filtered(t),
        };
        selected.sort_unstable(); // deterministic aggregation order
        selected.dedup();
        selected
    }

    /// The pre-availability selection paths, bit-identical to the original
    /// engine: `(SELECT, t)` stream, no reachability filter.
    fn select_unfiltered(&self, t: usize) -> Vec<usize> {
        let (n, k) = (self.n_clients, self.clients_per_round);
        let mut sel_rng = Prng::derive(self.seed, &[rng_tags::SELECT, t as u64]);
        let mut selected = match self.strategy {
            // `Oort` only lands here through the liveness fallback, where
            // no scoring is possible — degrade to uniform
            SelectionStrategy::Uniform | SelectionStrategy::Oort => sel_rng.sample_indices(n, k),
            SelectionStrategy::RoundRobin => (0..k).map(|i| ((t - 1) * k + i) % n).collect(),
            SelectionStrategy::WeightedBySamples => {
                weighted_draw(&mut sel_rng, self.client_sizes.weights(), k)
            }
        };
        selected.sort_unstable(); // deterministic aggregation order
        selected.dedup();
        selected
    }

    /// Uniform selection over the available set: rejection-sample the
    /// `(SELECT, t)` stream (expected O(K) while a reasonable fraction of
    /// the federation is reachable), falling back to materializing the
    /// available pool when the draw cap runs out.
    fn select_uniform_filtered(&self, t: usize) -> Vec<usize> {
        let (n, k) = (self.n_clients, self.clients_per_round);
        let mut rng = Prng::derive(self.seed, &[rng_tags::SELECT, t as u64]);
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        let cap = 16 * k + 64;
        let mut attempts = 0;
        while picked.len() < k && attempts < cap {
            attempts += 1;
            let c = rng.below(n);
            if self.availability.is_available(c, t) && !picked.contains(&c) {
                picked.push(c);
            }
        }
        if picked.len() < k {
            let mut pool: Vec<usize> = (0..n)
                .filter(|&c| self.availability.is_available(c, t) && !picked.contains(&c))
                .collect();
            if pool.is_empty() && picked.is_empty() {
                return self.select_unfiltered(t); // liveness fallback
            }
            while picked.len() < k && !pool.is_empty() {
                picked.push(pool.swap_remove(rng.below(pool.len())));
            }
        }
        picked
    }

    /// Round-robin over the available set: walk from the round's cursor,
    /// skipping unreachable clients (at most one full sweep).
    fn select_roundrobin_filtered(&self, t: usize) -> Vec<usize> {
        let (n, k) = (self.n_clients, self.clients_per_round);
        let start = (t - 1) * k;
        let mut picked = Vec::with_capacity(k);
        let mut off = 0;
        while picked.len() < k && off < n {
            let c = (start + off) % n;
            off += 1;
            if self.availability.is_available(c, t) && !picked.contains(&c) {
                picked.push(c);
            }
        }
        if picked.is_empty() {
            return self.select_unfiltered(t); // liveness fallback
        }
        picked
    }

    /// Weighted-by-samples over the available set: unreachable clients get
    /// zero weight (O(N), like the unfiltered weighted path).
    fn select_weighted_filtered(&self, t: usize) -> Vec<usize> {
        let mut rng = Prng::derive(self.seed, &[rng_tags::SELECT, t as u64]);
        let weights: Vec<f64> = (0..self.n_clients)
            .map(|c| {
                if self.availability.is_available(c, t) {
                    self.client_sizes.get(c) as f64
                } else {
                    0.0
                }
            })
            .collect();
        if weights.iter().all(|&w| w <= 0.0) {
            return self.select_unfiltered(t); // liveness fallback
        }
        weighted_draw(&mut rng, weights, self.clients_per_round)
    }

    /// Oort-style utility-aware selection on the `(OORT, t)` stream.
    ///
    /// Exploitation: available clients the utility table has observed are
    /// ranked by `mean_loss / compute_multiplier` — statistical utility ×
    /// speed, so "informative *and* fast" sorts first (`total_cmp` with a
    /// client-id tiebreak keeps the ranking deterministic) — and the top
    /// `K - ⌈εK⌉` fill the cohort. Exploration: the remaining `⌈εK⌉` slots
    /// (ε = 0.3) draw uniformly from the available set so unexplored
    /// clients keep entering the score table. Cost is
    /// O(|table| log |table| + K); the table never exceeds rounds × K
    /// entries.
    fn select_oort(&self, t: usize, utility: &UtilityTable) -> Vec<usize> {
        let (n, k) = (self.n_clients, self.clients_per_round);
        let mut rng = Prng::derive(self.seed, &[rng_tags::OORT, t as u64]);
        let mut scored: Vec<(f64, usize)> = utility
            .iter()
            .filter(|&(c, _)| c < n && self.availability.is_available(c, t))
            .map(|(c, loss)| (loss / self.profiles.get(c).compute_multiplier, c))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let explore_k = ((k as f64) * OORT_EXPLORE_FRAC).ceil() as usize;
        let exploit_k = k.saturating_sub(explore_k).min(scored.len());
        let mut picked: Vec<usize> = scored[..exploit_k].iter().map(|&(_, c)| c).collect();
        let cap = 16 * k + 64;
        let mut attempts = 0;
        while picked.len() < k && attempts < cap {
            attempts += 1;
            let c = rng.below(n);
            if self.availability.is_available(c, t) && !picked.contains(&c) {
                picked.push(c);
            }
        }
        if picked.len() < k {
            let mut pool: Vec<usize> = (0..n)
                .filter(|&c| self.availability.is_available(c, t) && !picked.contains(&c))
                .collect();
            if pool.is_empty() && picked.is_empty() {
                // liveness fallback: nobody reachable, nothing scored —
                // degrade to an unfiltered uniform draw on this stream
                return rng.sample_indices(n, k);
            }
            while picked.len() < k && !pool.is_empty() {
                picked.push(pool.swap_remove(rng.below(pool.len())));
            }
        }
        picked
    }

    /// Apply straggler injection: drop each selected client with the
    /// configured probability, always keeping at least one survivor.
    ///
    /// The all-failed survivor is elected on its own `(SURVIVOR, t)`
    /// stream rather than by continuing the `(FAILURE, t)` coin flips, so
    /// the choice is a pure function of the round — it cannot shift when
    /// the cohort size (and hence the number of failure draws) changes.
    pub fn apply_failures(&self, t: usize, selected: &[usize]) -> Vec<usize> {
        if self.failure_prob <= 0.0 {
            return selected.to_vec();
        }
        let mut rng = Prng::derive(self.seed, &[rng_tags::FAILURE, t as u64]);
        let mut survivors: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|_| rng.uniform() >= self.failure_prob)
            .collect();
        if survivors.is_empty() {
            // seed-derived survivor election so the round still aggregates
            let mut surv_rng = Prng::derive(self.seed, &[rng_tags::SURVIVOR, t as u64]);
            survivors.push(selected[surv_rng.below(selected.len())]);
        }
        survivors
    }

    /// Selection followed by failure injection — one round's participants,
    /// with an empty utility table (see [`Sampler::participants_with`]).
    pub fn participants(&self, t: usize) -> Vec<usize> {
        self.participants_with(t, &UtilityTable::default())
    }

    /// Selection (availability-filtered, utility-scored) followed by
    /// failure injection — one round's participants.
    pub fn participants_with(&self, t: usize, utility: &UtilityTable) -> Vec<usize> {
        self.apply_failures(t, &self.select_with(t, utility))
    }

    /// Select up to `k` clients from a restricted candidate `pool` (the
    /// semi-async re-dispatch path: only idle clients are eligible). Uses a
    /// dedicated RNG stream tagged `(DISPATCH, t)` so it never collides with
    /// the synchronous selection stream.
    pub fn select_among(&self, t: usize, pool: &[usize], k: usize) -> Vec<usize> {
        let k = k.min(pool.len());
        if k == 0 {
            return Vec::new();
        }
        let mut rng = Prng::derive(self.seed, &[rng_tags::DISPATCH, t as u64]);
        let mut picked: Vec<usize> = match self.strategy {
            // Oort degrades to uniform on the redispatch path (no utility
            // snapshot in scope — see the variant docs)
            SelectionStrategy::Uniform | SelectionStrategy::Oort => rng
                .sample_indices(pool.len(), k)
                .into_iter()
                .map(|i| pool[i])
                .collect(),
            SelectionStrategy::RoundRobin => {
                // rotate through the pool; dedup below collapses wrap-around
                (0..k)
                    .map(|i| pool[((t - 1) * k + i) % pool.len()])
                    .collect()
            }
            SelectionStrategy::WeightedBySamples => weighted_draw(
                &mut rng,
                pool.iter()
                    .map(|&c| self.client_sizes.get(c) as f64)
                    .collect(),
                k,
            )
            .into_iter()
            .map(|i| pool[i])
            .collect(),
        };
        picked.sort_unstable();
        picked.dedup();
        picked
    }

    /// Select up to `k` clients that are **not** in `busy` (sorted,
    /// distinct) — the semi-async redispatch path at population scale.
    ///
    /// Unlike [`Sampler::select_among`], the idle pool is never
    /// materialized: with at most `K` clients ever in flight, uniform
    /// selection rejection-samples over the whole federation (expected
    /// O(k) when `N ≫ K`) and round-robin walks from the round's cursor
    /// skipping busy clients, so the cost per server step is independent of
    /// federation size. `WeightedBySamples` under uniform sizes is exactly
    /// uniform selection; under explicit per-client sizes it falls back to
    /// materializing the idle pool (O(N), documented).
    ///
    /// Uses the same `(DISPATCH, t)` RNG tag as [`Sampler::select_among`],
    /// so it never collides with the synchronous selection stream.
    ///
    /// # Panics
    /// Panics when `busy` is not sorted/deduped or names out-of-range
    /// clients.
    pub fn select_idle(&self, t: usize, busy: &[usize], k: usize) -> Vec<usize> {
        assert!(
            busy.windows(2).all(|w| w[0] < w[1]) && busy.iter().all(|&c| c < self.n_clients),
            "busy list must be sorted, distinct, in-range"
        );
        let idle = self.n_clients - busy.len();
        let k = k.min(idle);
        if k == 0 {
            return Vec::new();
        }
        let is_busy = |c: usize| busy.binary_search(&c).is_ok();
        let mut rng = Prng::derive(self.seed, &[rng_tags::DISPATCH, t as u64]);
        // weighted-by-samples over uniform sizes IS uniform selection;
        // Oort degrades to uniform here (no utility snapshot in scope)
        let uniform = matches!(
            self.strategy,
            SelectionStrategy::Uniform | SelectionStrategy::Oort
        ) || (self.strategy == SelectionStrategy::WeightedBySamples
            && matches!(self.client_sizes, ClientSizes::Uniform { .. }));
        let mut picked: Vec<usize> = if uniform {
            let mut sel: Vec<usize> = Vec::with_capacity(k);
            while sel.len() < k {
                let c = rng.below(self.n_clients);
                if !is_busy(c) && !sel.contains(&c) {
                    sel.push(c);
                }
            }
            sel
        } else if self.strategy == SelectionStrategy::RoundRobin {
            // rotate from the round's cursor, skipping busy clients
            let start = (t - 1) * self.clients_per_round;
            let mut sel = Vec::with_capacity(k);
            let mut off = 0;
            while sel.len() < k && off < self.n_clients {
                let c = (start + off) % self.n_clients;
                off += 1;
                if !is_busy(c) && !sel.contains(&c) {
                    sel.push(c);
                }
            }
            sel
        } else {
            // explicit non-uniform sizes: materialize the idle pool
            let pool: Vec<usize> = (0..self.n_clients).filter(|&c| !is_busy(c)).collect();
            weighted_draw(
                &mut rng,
                pool.iter()
                    .map(|&c| self.client_sizes.get(c) as f64)
                    .collect(),
                k,
            )
            .into_iter()
            .map(|i| pool[i])
            .collect()
        };
        picked.sort_unstable();
        picked.dedup();
        picked
    }
}

/// Sequential weighted draw without replacement: up to `k` distinct indices
/// into `weights`, each draw proportional to the remaining weight mass.
/// Stops early if the remaining mass is exhausted. Shared by the full-
/// federation selection and the restricted semi-async redispatch so the two
/// paths can never diverge.
fn weighted_draw(rng: &mut Prng, mut weights: Vec<f64>, k: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    for _ in 0..k {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut u = rng.uniform() as f64 * total;
        let mut chosen = 0;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            u -= w;
            chosen = i;
            if u <= 0.0 {
                break;
            }
        }
        picked.push(chosen);
        weights[chosen] = 0.0;
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(strategy: SelectionStrategy, failure_prob: f32) -> Sampler {
        Sampler::new(42, 3, strategy, failure_prob, vec![10, 20, 30, 40, 50, 60])
    }

    #[test]
    fn select_is_distinct_sorted_and_deterministic() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ] {
            let s = sampler(strategy, 0.0);
            for t in 1..=8 {
                let a = s.select(t);
                let b = s.select(t);
                assert_eq!(a, b, "{strategy:?} t={t}");
                let mut sorted = a.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, a);
                assert!(a.iter().all(|&c| c < 6));
            }
        }
    }

    #[test]
    fn failures_always_keep_a_survivor() {
        let s = sampler(SelectionStrategy::Uniform, 1.0);
        for t in 1..=8 {
            let sel = s.select(t);
            let surv = s.apply_failures(t, &sel);
            assert_eq!(surv.len(), 1);
            assert!(sel.contains(&surv[0]));
        }
    }

    #[test]
    fn select_among_stays_in_pool() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ] {
            let s = sampler(strategy, 0.0);
            let pool = [1usize, 3, 5];
            for t in 1..=8 {
                let picked = s.select_among(t, &pool, 2);
                assert!(!picked.is_empty(), "{strategy:?}");
                assert!(picked.len() <= 2);
                assert!(picked.iter().all(|c| pool.contains(c)), "{picked:?}");
            }
        }
    }

    #[test]
    fn select_among_empty_pool_is_empty() {
        let s = sampler(SelectionStrategy::Uniform, 0.0);
        assert!(s.select_among(1, &[], 3).is_empty());
    }

    #[test]
    fn select_idle_avoids_busy_and_is_deterministic() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ] {
            let s = sampler(strategy, 0.0);
            let busy = [0usize, 2, 4];
            for t in 1..=8 {
                let a = s.select_idle(t, &busy, 2);
                let b = s.select_idle(t, &busy, 2);
                assert_eq!(a, b, "{strategy:?} t={t}");
                assert!(!a.is_empty() && a.len() <= 2);
                assert!(a.iter().all(|c| !busy.contains(c)), "{strategy:?} {a:?}");
                assert!(a.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn select_idle_caps_at_idle_count_and_handles_saturation() {
        let s = sampler(SelectionStrategy::Uniform, 0.0);
        // 6 clients, 5 busy: only one candidate remains
        let busy = [0usize, 1, 2, 3, 4];
        assert_eq!(s.select_idle(3, &busy, 4), vec![5]);
        // everyone busy: nothing to select
        let all = [0usize, 1, 2, 3, 4, 5];
        assert!(s.select_idle(3, &all, 2).is_empty());
    }

    #[test]
    fn select_idle_is_population_scale_cheap_for_uniform() {
        // a 1M-client federation: selection must not materialize the idle
        // pool (this test finishing instantly is the point)
        let s = Sampler::new(
            7,
            8,
            SelectionStrategy::Uniform,
            0.0,
            ClientSizes::Uniform {
                n_clients: 1_000_000,
                samples: 60,
            },
        );
        let busy = [10usize, 500_000];
        let picked = s.select_idle(1, &busy, 8);
        assert_eq!(picked.len(), 8);
        assert!(picked.iter().all(|c| !busy.contains(c)));
    }

    #[test]
    fn uniform_sizes_make_weighted_idle_selection_uniform() {
        let uni = Sampler::new(
            42,
            3,
            SelectionStrategy::Uniform,
            0.0,
            ClientSizes::Uniform {
                n_clients: 6,
                samples: 50,
            },
        );
        let wtd = Sampler::new(
            42,
            3,
            SelectionStrategy::WeightedBySamples,
            0.0,
            ClientSizes::Uniform {
                n_clients: 6,
                samples: 50,
            },
        );
        for t in 1..=6 {
            assert_eq!(uni.select_idle(t, &[1], 2), wtd.select_idle(t, &[1], 2));
        }
    }

    #[test]
    fn survivor_election_is_seed_derived_and_draw_count_independent() {
        // all clients fail: the survivor must come from the dedicated
        // (SURVIVOR, t) stream, so it cannot depend on how many failure
        // coin flips preceded it (regression: it used to continue the
        // FAILURE stream, coupling the choice to the cohort size)
        let s = sampler(SelectionStrategy::Uniform, 1.0);
        for t in 1..=8 {
            let sel = s.select(t);
            let surv = s.apply_failures(t, &sel);
            let mut rng = Prng::derive(42, &[rng_tags::SURVIVOR, t as u64]);
            assert_eq!(surv, vec![sel[rng.below(sel.len())]]);
            // shrinking the cohort changes the failure-draw count but not
            // the election stream
            let prefix = &sel[..sel.len() - 1];
            let surv_prefix = s.apply_failures(t, prefix);
            let mut rng = Prng::derive(42, &[rng_tags::SURVIVOR, t as u64]);
            assert_eq!(surv_prefix, vec![prefix[rng.below(prefix.len())]]);
        }
    }

    #[test]
    fn always_on_select_with_matches_legacy_select() {
        // the always-on fast path must be the legacy selection verbatim,
        // utility table or not — this is what pins the golden fixtures
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
        ] {
            let s = sampler(strategy, 0.3);
            let mut table = UtilityTable::new();
            table.record(1, 2.0);
            for t in 1..=8 {
                assert_eq!(s.select_with(t, &table), s.select(t), "{strategy:?}");
                assert_eq!(s.participants_with(t, &table), s.participants(t));
            }
        }
    }

    #[test]
    fn filtered_selection_only_picks_available_clients() {
        let avail = AvailabilityModel::new(42, 6, 4, 0.5, 0, 0);
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::RoundRobin,
            SelectionStrategy::WeightedBySamples,
            SelectionStrategy::Oort,
        ] {
            let s = sampler(strategy, 0.0).with_availability(avail);
            for t in 1..=12 {
                let picked = s.select_with(t, &UtilityTable::default());
                assert!(!picked.is_empty(), "{strategy:?} t={t}");
                if (0..6).any(|c| avail.is_available(c, t)) {
                    assert!(
                        picked.iter().all(|&c| avail.is_available(c, t)),
                        "{strategy:?} t={t} picked unavailable: {picked:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn oort_exploits_high_loss_clients() {
        // client 3 has by far the highest loss; with K=3 and an
        // exploration floor of ⌈0.3·3⌉ = 1 slot, the 2 exploitation slots
        // must include it every round
        let s = sampler(SelectionStrategy::Oort, 0.0);
        let mut u = UtilityTable::new();
        u.record(0, 0.1);
        u.record(3, 9.0);
        u.record(5, 0.2);
        for t in 1..=8 {
            let picked = s.select_with(t, &u);
            assert!(picked.contains(&3), "t={t} {picked:?}");
            assert_eq!(picked.len(), 3);
            assert!(picked.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            SelectionStrategy::parse("uniform"),
            Some(SelectionStrategy::Uniform)
        );
        assert_eq!(
            SelectionStrategy::parse("RoundRobin"),
            Some(SelectionStrategy::RoundRobin)
        );
        assert_eq!(
            SelectionStrategy::parse("weighted"),
            Some(SelectionStrategy::WeightedBySamples)
        );
        assert_eq!(
            SelectionStrategy::parse("Oort"),
            Some(SelectionStrategy::Oort)
        );
        assert_eq!(
            SelectionStrategy::parse("utility"),
            Some(SelectionStrategy::Oort)
        );
        assert_eq!(SelectionStrategy::parse("x"), None);
    }
}
