//! Trace-driven client availability, churn, and selection utility.
//!
//! The paper's evaluation assumes an idealized federation: every client is
//! reachable every round and failure is an i.i.d. coin flip. The
//! communication-perspective surveys identify *intermittent availability*
//! (devices charge at night, sit on metered links by day) and *device
//! churn* (clients join and leave the federation over its lifetime) as the
//! dominant practical constraints on cross-device FL. This module models
//! both as pure functions of `(seed, client, t)` so traces cost no memory,
//! replay bit-identically, and need no cursor beyond the round counter that
//! checkpoints already carry:
//!
//! * **Diurnal on/off traces** — client `c` draws a phase offset from the
//!   `(AVAIL, c)` RNG stream and is then available on the first
//!   `round(on_fraction * period)` rounds of every `period`-round cycle,
//!   shifted by its phase. Phases decorrelate clients, so the available
//!   fraction of the federation hovers near `on_fraction` each round.
//! * **Churn epochs** — client `c` draws a join round from `(CHURN, c)`
//!   (uniform over the first `join_window` rounds) and a residency lifetime
//!   (uniform in `[residency, 2·residency)` rounds), after which it leaves
//!   for good. Joiners admit lazily through the sparse
//!   [`ClientStateStore`](crate::algorithms::ClientStateStore) on first
//!   selection; the engine evicts a leaver's state the round it departs.
//!
//! The model composes into
//! [`Sampler::participants_with`](crate::runtime::Sampler::participants_with):
//! selection strategies filter to the available set, and the always-on
//! model short-circuits to the
//! legacy selection code paths bit-for-bit. [`UtilityTable`] carries the
//! per-client statistical utility (most recent observed training loss) that
//! the Oort-style `SelectionStrategy::Oort` scores against device speed.

use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use std::collections::BTreeMap;

/// Seed-derived availability traces and churn epochs for a federation.
///
/// A pure value type: `is_available(c, t)` is a function of
/// `(seed, c, t)` alone, so queries are order-independent and nothing needs
/// checkpointing beyond the round counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityModel {
    seed: u64,
    n_clients: usize,
    /// Diurnal cycle length in rounds; `0` disables the on/off trace.
    period: usize,
    /// Fraction of each cycle a client is reachable (clamped to `(0, 1]`
    /// by construction: at least one on-round per cycle).
    on_fraction: f32,
    /// Width of the join window in rounds; `0` disables churn.
    join_window: usize,
    /// Minimum residency in rounds once joined (lifetime is uniform in
    /// `[residency, 2·residency)`).
    residency: usize,
}

impl AvailabilityModel {
    /// The trivial model: every client reachable every round, nobody joins
    /// late or leaves.
    pub fn always_on(seed: u64, n_clients: usize) -> Self {
        AvailabilityModel {
            seed,
            n_clients,
            period: 0,
            on_fraction: 1.0,
            join_window: 0,
            residency: 0,
        }
    }

    /// A model with a diurnal trace (`period > 0`) and/or churn
    /// (`join_window > 0`). `period == 0` disables the on/off trace,
    /// `join_window == 0` disables churn; both zero is exactly
    /// [`AvailabilityModel::always_on`].
    ///
    /// # Panics
    /// Panics when `period > 0` and `on_fraction` is not in `(0, 1]`, or
    /// when `join_window > 0` and `residency == 0`.
    pub fn new(
        seed: u64,
        n_clients: usize,
        period: usize,
        on_fraction: f32,
        join_window: usize,
        residency: usize,
    ) -> Self {
        if period > 0 {
            assert!(
                on_fraction > 0.0 && on_fraction <= 1.0,
                "on_fraction must be in (0, 1]"
            );
        }
        if join_window > 0 {
            assert!(residency > 0, "churn requires a positive residency");
        }
        AvailabilityModel {
            seed,
            n_clients,
            period,
            on_fraction,
            join_window,
            residency,
        }
    }

    /// Whether this is the trivial always-on model (the legacy-selection
    /// fast path key).
    pub fn is_always_on(&self) -> bool {
        self.period == 0 && self.join_window == 0
    }

    /// Whether churn is enabled (leavers exist and need eviction).
    pub fn has_churn(&self) -> bool {
        self.join_window > 0
    }

    /// Federation size.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Client `c`'s diurnal on/off state at round `t` (always `true` when
    /// the trace is disabled).
    fn diurnal_on(&self, client: usize, t: usize) -> bool {
        if self.period == 0 {
            return true;
        }
        let mut rng = Prng::derive(self.seed, &[rng_tags::AVAIL, client as u64]);
        let phase = rng.below(self.period);
        let on_rounds =
            ((self.on_fraction as f64 * self.period as f64).round() as usize).clamp(1, self.period);
        (t + phase) % self.period < on_rounds
    }

    /// Client `c`'s churn epoch: the last round *before* it joins and the
    /// last round it is present. A client is a member at `t` iff
    /// `join < t <= leave`. Without churn every client is a founding member
    /// that never leaves.
    fn churn_epoch(&self, client: usize) -> (usize, usize) {
        if self.join_window == 0 {
            return (0, usize::MAX);
        }
        let mut rng = Prng::derive(self.seed, &[rng_tags::CHURN, client as u64]);
        let join = rng.below(self.join_window + 1);
        let lifetime = self.residency + rng.below(self.residency);
        (join, join + lifetime)
    }

    /// Whether client `c` has permanently left the federation by round `t`
    /// (its state is eligible for eviction).
    pub fn has_left(&self, client: usize, t: usize) -> bool {
        t > self.churn_epoch(client).1
    }

    /// Whether client `c` is reachable at round `t`: a member (joined, not
    /// yet left) whose diurnal trace is in an on-phase.
    pub fn is_available(&self, client: usize, t: usize) -> bool {
        let (join, leave) = self.churn_epoch(client);
        t > join && t <= leave && self.diurnal_on(client, t)
    }
}

/// Per-client statistical utility: the most recent observed mean training
/// loss, maintained by the engine after every fold.
///
/// The Oort insight is that clients whose local loss is still high carry
/// the most informative updates; scoring them against device speed
/// prioritizes "useful *and* fast". The table only ever holds clients that
/// have participated (at most rounds × K entries), so it adds nothing to
/// the population-scale memory axis, and it serializes into the v6
/// checkpoint so a resumed run scores identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilityTable {
    entries: BTreeMap<usize, f64>,
}

impl UtilityTable {
    /// An empty table (no client explored yet).
    pub fn new() -> Self {
        UtilityTable::default()
    }

    /// Number of explored clients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no client has been explored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The client's last observed mean loss, if it has participated.
    pub fn get(&self, client: usize) -> Option<f64> {
        self.entries.get(&client).copied()
    }

    /// Record the client's latest observed mean loss (overwrites).
    pub fn record(&mut self, client: usize, mean_loss: f64) {
        self.entries.insert(client, mean_loss);
    }

    /// Drop a departed client's utility (churn eviction).
    pub fn evict(&mut self, client: usize) {
        self.entries.remove(&client);
    }

    /// Iterate `(client, mean_loss)` in ascending client order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().map(|(&c, &l)| (c, l))
    }

    /// Export as sorted `(client, mean_loss)` pairs (checkpoint capture).
    pub fn export(&self) -> Vec<(usize, f64)> {
        self.iter().collect()
    }

    /// Rebuild from exported pairs (checkpoint restore).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        UtilityTable {
            entries: pairs.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_is_always_available() {
        let m = AvailabilityModel::always_on(7, 50);
        assert!(m.is_always_on());
        assert!(!m.has_churn());
        for c in 0..50 {
            for t in 1..=20 {
                assert!(m.is_available(c, t));
                assert!(!m.has_left(c, t));
            }
        }
    }

    #[test]
    fn diurnal_trace_is_periodic_with_correct_duty_cycle() {
        let m = AvailabilityModel::new(7, 40, 8, 0.5, 0, 0);
        for c in 0..40 {
            let on: Vec<bool> = (1..=8).map(|t| m.is_available(c, t)).collect();
            // exactly round(0.5 * 8) = 4 on-rounds per cycle
            assert_eq!(on.iter().filter(|&&b| b).count(), 4, "client {c}");
            // periodic: the next cycle repeats the first
            for t in 1..=8 {
                assert_eq!(m.is_available(c, t), m.is_available(c, t + 8));
            }
        }
        // phases decorrelate: not every client shares client 0's trace
        let c0: Vec<bool> = (1..=8).map(|t| m.is_available(0, t)).collect();
        assert!((1..40).any(|c| (1..=8).any(|t| m.is_available(c, t) != c0[t - 1])));
    }

    #[test]
    fn churn_epochs_are_ordered_and_bounded() {
        let m = AvailabilityModel::new(11, 100, 0, 1.0, 10, 6);
        assert!(m.has_churn());
        for c in 0..100 {
            let (join, leave) = m.churn_epoch(c);
            assert!(join <= 10, "join {join} outside window");
            assert!(leave - join >= 6 && leave - join < 12, "lifetime");
            // membership interval matches the epoch
            assert!(!m.is_available(c, join));
            assert!(m.is_available(c, join + 1));
            assert!(m.is_available(c, leave));
            assert!(!m.is_available(c, leave + 1));
            assert!(m.has_left(c, leave + 1));
            assert!(!m.has_left(c, leave));
        }
    }

    #[test]
    fn queries_are_pure_functions_of_seed_client_round() {
        let a = AvailabilityModel::new(3, 30, 6, 0.4, 5, 4);
        let b = AvailabilityModel::new(3, 30, 6, 0.4, 5, 4);
        for c in 0..30 {
            for t in 1..=30 {
                assert_eq!(a.is_available(c, t), b.is_available(c, t));
            }
        }
    }

    #[test]
    #[should_panic(expected = "on_fraction")]
    fn rejects_zero_duty_cycle() {
        let _ = AvailabilityModel::new(1, 10, 8, 0.0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "residency")]
    fn rejects_churn_without_residency() {
        let _ = AvailabilityModel::new(1, 10, 0, 1.0, 4, 0);
    }

    #[test]
    fn utility_table_round_trips_and_evicts() {
        let mut u = UtilityTable::new();
        assert!(u.is_empty());
        u.record(5, 0.75);
        u.record(2, 1.5);
        u.record(5, 0.5); // overwrite keeps the latest
        assert_eq!(u.len(), 2);
        assert_eq!(u.get(5), Some(0.5));
        assert_eq!(u.export(), vec![(2, 1.5), (5, 0.5)]);
        let v = UtilityTable::from_pairs(u.export());
        assert_eq!(u, v);
        u.evict(2);
        assert_eq!(u.get(2), None);
        assert_eq!(u.len(), 1);
    }
}
