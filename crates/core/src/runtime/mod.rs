//! The layered federation runtime.
//!
//! The paper's engine (§III-A) is a strictly synchronous round loop. Real
//! resource-constrained federations — the setting FedTrip targets — are
//! bottlenecked by heterogeneous device speed and stragglers, which a
//! synchronous-only engine cannot model. This module decomposes the engine
//! into composable layers so the async/staleness scenario family opens up
//! while the paper's sync semantics stay bit-identical:
//!
//! * [`clock`] — a [`VirtualClock`] plus per-client [`DeviceProfile`]s
//!   (compute-speed multiplier and link bandwidth, derived deterministically
//!   from the master seed) that compose with the Appendix-A cost accounting
//!   to turn FLOPs and bytes into virtual seconds;
//! * [`sampler`] — [`Sampler`] owns *who* participates: the selection
//!   strategies and straggler injection that used to live inside the engine,
//!   with the exact same RNG stream derivations;
//! * [`executor`] — [`ClientExecutor`] owns local-training fan-out: the
//!   rayon-parallel client loop with deterministic per-client RNG streams;
//! * [`scheduler`] — [`Scheduler`] owns *when* client results fold into the
//!   global model: [`Synchronous`] reproduces the paper's barriered round
//!   loop bit-for-bit (guarded by a golden regression test), [`SemiAsync`]
//!   is a FedBuff-style buffered aggregator that folds the first `B`
//!   arrivals by virtual completion time with staleness-discounted weights
//!   `1 / (1 + s)^a`;
//! * [`edge`] — [`EdgeTier`] owns *where* results fold: clients shard
//!   across `E` edge aggregators (`client mod E`), each with its own
//!   streaming fold and [`VirtualClock`], and the root merges the edge
//!   summaries with the associative `ServerFold::merge` across rayon
//!   threads. `E = 1` (the default) is the flat fold, bit for bit.
//!
//! The codecs of [`crate::compression`] plug in at both ends of the wire:
//! uplinks are encoded/decoded at the executor→scheduler boundary before
//! any scheduler sees them, downlink delta broadcasts are encoded by the
//! engine before the executor fans out, and both schedulers charge the
//! *encoded* bytes of each direction to the clock through
//! `RuntimeCtx::comm_bytes_for` (dense full-model sends — joiners,
//! resyncs — charge f32 width).
//!
//! Every layer is O(K) per server step and O(participants) in resident
//! memory — client states live in a sparse store, partition shards and
//! device profiles derive lazily on first participation, selection runs a
//! sparse Fisher–Yates, and both schedulers stream arrivals into a running
//! weighted fold — so federation size is not a cost axis (proven flat from
//! N = 1k to N = 100k by the `population_scale` bench and CI's
//! `bench_gate`).

pub mod availability;
pub mod clock;
pub mod edge;
pub mod executor;
pub mod sampler;
pub mod scheduler;

pub use availability::{AvailabilityModel, UtilityTable};
pub use clock::{DeviceProfile, DeviceProfiles, VirtualClock};
pub use edge::EdgeTier;
pub use executor::ClientExecutor;
pub use sampler::{ClientSizes, Sampler, SelectionStrategy};
pub use scheduler::{
    staleness_weight, FoldStats, RuntimeCtx, Scheduler, SchedulerState, SemiAsync, StepOutput,
    Synchronous,
};

use serde::{Deserialize, Serialize};

/// Which scheduler drives the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// The paper's barriered round loop: every selected client reports back
    /// before the server aggregates (bit-identical to the pre-runtime
    /// engine).
    Sync,
    /// FedBuff-style buffered semi-asynchronous aggregation: the server
    /// folds the first `B` arrivals by virtual completion time, discounting
    /// stale updates by `1 / (1 + s)^a`.
    SemiAsync,
}

impl RunMode {
    /// Parse `sync` / `semiasync` (case-insensitive).
    pub fn parse(s: &str) -> Option<RunMode> {
        match s.to_ascii_lowercase().as_str() {
            "sync" => Some(RunMode::Sync),
            "semiasync" | "semi-async" | "async" => Some(RunMode::SemiAsync),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RunMode::Sync => "sync",
            RunMode::SemiAsync => "semiasync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_round_trips() {
        assert_eq!(RunMode::parse("sync"), Some(RunMode::Sync));
        assert_eq!(RunMode::parse("SemiAsync"), Some(RunMode::SemiAsync));
        assert_eq!(RunMode::parse("semi-async"), Some(RunMode::SemiAsync));
        assert_eq!(RunMode::parse("nope"), None);
        assert_eq!(RunMode::parse(RunMode::Sync.name()), Some(RunMode::Sync));
    }
}
