//! Virtual time and per-client device profiles.
//!
//! The simulator has no real concurrency to measure, so elapsed time is
//! *virtual*: each client's round duration is derived from the work it
//! actually did (training FLOPs from the Appendix-A cost accounting, bytes
//! exchanged with the server) divided by its device capability. Profiles are
//! derived deterministically from the master seed, so heterogeneous-device
//! runs stay bit-reproducible.
//!
//! ```
//! use fedtrip_core::runtime::{DeviceProfile, VirtualClock};
//!
//! // a 4x speed spread: every profile lands in [1, 4)x of the reference
//! let profiles = DeviceProfile::federation(2023, 8, 4.0);
//! assert!(profiles.iter().all(|p| (1.0..4.0).contains(&p.compute_multiplier)));
//!
//! // a round that computes 1 GFLOP and ships 4 MB takes 2 virtual seconds
//! // on the reference device; the clock only ever moves forward
//! let mut clock = VirtualClock::new();
//! clock.advance_by(DeviceProfile::homogeneous().duration(1e9, 4e6));
//! assert!((clock.now() - 2.0).abs() < 1e-12);
//! clock.advance_to(1.0); // in the past: ignored
//! assert_eq!(clock.now(), 2.0);
//! ```

use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use serde::{Deserialize, Serialize};

/// Reference device compute throughput: 1 GFLOP/s, the ballpark of the
/// embedded-class devices the paper's resource argument targets.
pub const BASE_FLOPS_PER_SEC: f64 = 1e9;

/// Reference link bandwidth: 4 MB/s up and down.
pub const BASE_BANDWIDTH_BPS: f64 = 4e6;

/// Monotonically advancing virtual wall-clock, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at `t = 0`.
    pub fn new() -> Self {
        VirtualClock { now: 0.0 }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by a non-negative duration.
    pub fn advance_by(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative duration {dt}");
        self.now += dt;
    }

    /// Advance to an absolute instant; instants in the past are ignored
    /// (the clock never runs backwards).
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Restore from a checkpointed instant.
    pub fn restore(&mut self, t: f64) {
        self.now = t;
    }
}

/// A client device's capability: how much slower than the reference device
/// it computes, and how fast its link is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Compute slowdown relative to [`BASE_FLOPS_PER_SEC`] (`1.0` = the
    /// reference device, `4.0` = a 4x slower device).
    pub compute_multiplier: f64,
    /// Link bandwidth in bytes per second (up == down).
    pub bandwidth_bytes_per_sec: f64,
}

impl DeviceProfile {
    /// The reference device.
    pub fn homogeneous() -> Self {
        DeviceProfile {
            compute_multiplier: 1.0,
            bandwidth_bytes_per_sec: BASE_BANDWIDTH_BPS,
        }
    }

    /// Derive a client's profile from the master seed.
    ///
    /// `speed_spread >= 1` is the maximum slowdown: the client's compute
    /// multiplier is `spread^u` with `u ~ U[0, 1)` drawn from a dedicated
    /// RNG stream tagged `(DEVICE, client)`, so profiles never perturb the
    /// training/selection streams. The link slows down with the same factor
    /// (slow devices sit on slow links, the common case in the federated
    /// measurement studies). `speed_spread == 1` yields the reference
    /// device exactly.
    ///
    /// # Panics
    /// Panics when `speed_spread < 1`.
    pub fn derive(seed: u64, client: usize, speed_spread: f64) -> DeviceProfile {
        assert!(speed_spread >= 1.0, "speed_spread must be >= 1");
        let mut rng = Prng::derive(seed, &[rng_tags::DEVICE, client as u64]);
        let u = rng.uniform() as f64;
        let mult = speed_spread.powf(u);
        DeviceProfile {
            compute_multiplier: mult,
            bandwidth_bytes_per_sec: BASE_BANDWIDTH_BPS / mult,
        }
    }

    /// Profiles for a whole federation, materialized eagerly.
    ///
    /// O(n_clients) memory — fine for analysis over paper-scale
    /// federations; the engine itself uses the lazy [`DeviceProfiles`] so
    /// population size stays off the memory axis.
    pub fn federation(seed: u64, n_clients: usize, speed_spread: f64) -> Vec<DeviceProfile> {
        (0..n_clients)
            .map(|c| DeviceProfile::derive(seed, c, speed_spread))
            .collect()
    }

    /// Virtual seconds this device needs for one round that computes
    /// `flops` and exchanges `comm_bytes` with the server.
    pub fn duration(&self, flops: f64, comm_bytes: f64) -> f64 {
        flops * self.compute_multiplier / BASE_FLOPS_PER_SEC
            + comm_bytes / self.bandwidth_bytes_per_sec
    }
}

/// Lazily derived device profiles for a whole federation.
///
/// Since a profile is a pure function of `(seed, client, spread)`, nothing
/// needs to be stored per client: `get` derives on demand, so a
/// 10⁵-client federation costs the same three words as a 10-client one.
/// Bit-identical to indexing an eager [`DeviceProfile::federation`] vector.
#[derive(Debug, Clone, Copy)]
pub struct DeviceProfiles {
    seed: u64,
    n_clients: usize,
    speed_spread: f64,
}

impl DeviceProfiles {
    /// Lazy profiles for `n_clients` devices under the given speed spread.
    ///
    /// # Panics
    /// Panics when `speed_spread < 1`.
    pub fn new(seed: u64, n_clients: usize, speed_spread: f64) -> Self {
        assert!(speed_spread >= 1.0, "speed_spread must be >= 1");
        DeviceProfiles {
            seed,
            n_clients,
            speed_spread,
        }
    }

    /// Federation size.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Derive client `c`'s profile.
    ///
    /// # Panics
    /// Panics when `c >= n_clients`.
    pub fn get(&self, c: usize) -> DeviceProfile {
        assert!(c < self.n_clients, "client {c} out of range");
        DeviceProfile::derive(self.seed, c, self.speed_spread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_by(2.5);
        c.advance_to(2.0); // in the past: ignored
        assert_eq!(c.now(), 2.5);
        c.advance_to(4.0);
        assert_eq!(c.now(), 4.0);
    }

    #[test]
    fn unit_spread_is_exactly_homogeneous() {
        for client in 0..16 {
            let p = DeviceProfile::derive(9, client, 1.0);
            assert_eq!(p.compute_multiplier, 1.0);
            assert_eq!(p.bandwidth_bytes_per_sec, BASE_BANDWIDTH_BPS);
        }
    }

    #[test]
    fn profiles_are_seed_deterministic_and_bounded() {
        let a = DeviceProfile::federation(7, 20, 4.0);
        let b = DeviceProfile::federation(7, 20, 4.0);
        assert_eq!(a, b);
        for p in &a {
            assert!(p.compute_multiplier >= 1.0 && p.compute_multiplier < 4.0);
        }
        // a 4x spread actually spreads: slowest/fastest > 1.5 over 20 devices
        let max = a.iter().map(|p| p.compute_multiplier).fold(1.0, f64::max);
        let min = a.iter().map(|p| p.compute_multiplier).fold(4.0, f64::min);
        assert!(max / min > 1.5, "spread {}", max / min);
    }

    #[test]
    fn lazy_profiles_match_eager_federation() {
        let eager = DeviceProfile::federation(7, 20, 4.0);
        let lazy = DeviceProfiles::new(7, 20, 4.0);
        assert_eq!(lazy.n_clients(), 20);
        for (c, p) in eager.iter().enumerate() {
            assert_eq!(*p, lazy.get(c));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lazy_profiles_bound_check() {
        let _ = DeviceProfiles::new(7, 4, 1.0).get(4);
    }

    #[test]
    fn duration_composes_compute_and_comm() {
        let p = DeviceProfile::homogeneous();
        let d = p.duration(BASE_FLOPS_PER_SEC, BASE_BANDWIDTH_BPS);
        assert!((d - 2.0).abs() < 1e-12);
        let slow = DeviceProfile {
            compute_multiplier: 4.0,
            bandwidth_bytes_per_sec: BASE_BANDWIDTH_BPS / 4.0,
        };
        assert!((slow.duration(BASE_FLOPS_PER_SEC, BASE_BANDWIDTH_BPS) - 8.0).abs() < 1e-12);
    }
}
