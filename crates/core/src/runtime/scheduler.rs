//! Aggregation scheduling: *when* client results fold into the global model.
//!
//! [`Synchronous`] is the paper's barriered round loop (§III-A), moved out
//! of the monolithic engine without changing a single RNG derivation or
//! float operation — a golden regression test
//! (`crates/core/tests/golden_sync.rs`) pins it bit-for-bit against records
//! captured from the pre-runtime engine.
//!
//! [`SemiAsync`] is a FedBuff-style buffered aggregator (Nguyen et al.,
//! *Federated Learning with Buffered Asynchronous Aggregation*): clients
//! train continuously; the server folds the first `B` arrivals by virtual
//! completion time, discounting an update that trained against a global
//! model `s` versions old by `1 / (1 + s)^a`. Under heterogeneous device
//! profiles this trades some statistical efficiency per fold for not
//! waiting on stragglers, which lowers the virtual wall-clock to a target
//! accuracy — the practicality concern FedTrip's resource argument targets.
//!
//! ```
//! use fedtrip_core::runtime::{staleness_weight, Scheduler, SemiAsync, Synchronous};
//!
//! // fresh updates are never discounted; stale ones decay polynomially
//! assert_eq!(staleness_weight(0, 0.5), 1.0);
//! assert!(staleness_weight(3, 0.5) < staleness_weight(1, 0.5));
//!
//! // schedulers are trait objects the engine picks by `RunMode`; the
//! // stateless sync barrier exports an empty checkpoint state
//! let sync: Box<dyn Scheduler> = Box::new(Synchronous);
//! assert_eq!(sync.name(), "sync");
//! assert!(sync.export_state().in_flight.is_empty());
//! let semi: Box<dyn Scheduler> = Box::new(SemiAsync::new(2, 0.5));
//! assert_eq!(semi.name(), "semiasync");
//! ```

use super::availability::UtilityTable;
use super::clock::{DeviceProfiles, VirtualClock};
use super::edge::EdgeTier;
use super::executor::ClientExecutor;
use super::sampler::Sampler;
use crate::algorithms::{Algorithm, ClientStateStore, LocalOutcome, ServerFold};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Staleness-discounted aggregation weight `1 / (1 + s)^a`.
///
/// Positive for every `s`, monotone non-increasing in `s` (strictly
/// decreasing for `a > 0`), and exactly `1` for fresh updates (`s = 0`) or
/// a disabled discount (`a = 0`).
pub fn staleness_weight(staleness: usize, exponent: f32) -> f64 {
    (1.0 + staleness as f64).powf(-(exponent as f64))
}

/// Everything a scheduler may touch during one server step, borrowed from
/// the engine. Fields are split borrows of the
/// [`Simulation`](crate::engine::Simulation) so the scheduler itself stays
/// free of engine internals.
pub struct RuntimeCtx<'a> {
    /// Local-training fan-out.
    pub exec: ClientExecutor<'a>,
    /// Participation (selection + failure injection).
    pub sampler: &'a Sampler,
    /// Per-client device capabilities (derived lazily — O(1) per lookup).
    pub profiles: &'a DeviceProfiles,
    /// The federated method.
    pub algorithm: &'a dyn Algorithm,
    /// Virtual wall-clock (advanced by the scheduler).
    pub clock: &'a mut VirtualClock,
    /// Global parameters at step start.
    pub global: &'a [f32],
    /// Sparse per-client persistent states.
    pub states: &'a mut ClientStateStore,
    /// Encoded bytes one client **uploads** to the server per round
    /// (`|w|` + method extras, through the uplink codec), for link-time
    /// accounting.
    pub comm_up_bytes: f64,
    /// Downlink bytes of a **dense** full-model broadcast (`|w|` + method
    /// extras, raw f32) — what a client on a dense downlink, a resync
    /// round, or an on-demand base send receives.
    pub comm_down_dense_bytes: f64,
    /// Downlink bytes of a compressed **delta** broadcast (through the
    /// downlink codec). Equals `comm_down_dense_bytes` when the downlink is
    /// dense, so the legacy duration formula is reproduced bit for bit.
    pub comm_down_delta_bytes: f64,
    /// The hierarchical aggregation tier (a single-edge tier is the flat
    /// fold, bit for bit).
    pub edges: &'a mut EdgeTier,
    /// Virtual seconds one edge aggregator needs to ship its merged summary
    /// to the root — `0.0` when the root is colocated (`E = 1`).
    pub edge_uplink_secs: f64,
    /// Per-client statistical utility (most recent observed loss) for the
    /// Oort selection strategy; read-only during the step, updated by the
    /// engine from the fold stats afterwards.
    pub utility: &'a UtilityTable,
    /// Synchronous reporting deadline in virtual seconds — clients whose
    /// round duration exceeds it are dropped from the fold and the round
    /// barrier is capped at the deadline. `0.0` disables the cutoff
    /// (bit-identical to the pre-deadline scheduler). The semi-async
    /// scheduler ignores it: buffered aggregation already tolerates
    /// stragglers instead of dropping them.
    pub deadline_secs: f64,
}

impl RuntimeCtx<'_> {
    /// Total bytes one client exchanges with the server for `outcome`'s
    /// round: the encoded uplink plus whichever broadcast it received
    /// (dense base or compressed delta, per [`LocalOutcome::dense_down`]).
    pub fn comm_bytes_for(&self, outcome: &LocalOutcome) -> f64 {
        self.comm_up_bytes
            + if outcome.dense_down {
                self.comm_down_dense_bytes
            } else {
                self.comm_down_delta_bytes
            }
    }

    /// Stream a cohort of outcomes (already in arrival order, with
    /// `staleness` / `agg_weight` assigned) through the edge tier: outcomes
    /// shard across the edge aggregators by `client mod E`, each shard
    /// folds into its own streaming [`ServerFold`] — one parameter vector
    /// dropped per absorb, so no node ever holds its cohort's parameters
    /// beyond what training itself produced — and the root merges the edge
    /// summaries. Returns the merged fold, per-outcome scalars in
    /// shard-major order, and the ascending active-edge list.
    fn stream_fold(
        &mut self,
        clients: &[usize],
        outcomes: Vec<LocalOutcome>,
    ) -> (ServerFold, Vec<FoldStats>, Vec<usize>) {
        self.edges
            .fold_streamed(self.algorithm, self.global, clients, outcomes)
    }
}

/// Per-outcome scalars the engine needs for its round accounting — what is
/// left of a [`LocalOutcome`] once its vectors have been streamed into the
/// fold.
#[derive(Debug, Clone, Copy)]
pub struct FoldStats {
    /// The client that produced the outcome (utility-table attribution —
    /// multi-edge folds reorder shard-major, so position alone cannot
    /// identify the client).
    pub client: usize,
    /// Mean local training loss.
    pub mean_loss: f64,
    /// Local computation (model FLOPs + attach FLOPs).
    pub train_flops: f64,
    /// Global-model versions between dispatch and fold.
    pub staleness: usize,
    /// Whether this client received a dense full-model broadcast (rather
    /// than a compressed delta) this round — drives the engine's downlink
    /// byte accounting.
    pub dense_down: bool,
}

/// What one server step folded.
pub struct StepOutput {
    /// The streaming aggregation state, ready for
    /// [`Algorithm::server_finish`] — parameter vectors have already been
    /// folded in (in selection order for [`Synchronous`], virtual-arrival
    /// order for [`SemiAsync`], with `staleness` / `agg_weight` applied).
    pub fold: ServerFold,
    /// Per-outcome accounting scalars, in fold order.
    pub folded: Vec<FoldStats>,
    /// The clients that folded this step, in arrival order (which is fold
    /// order when `E = 1`; multi-edge folds reorder shard-major).
    pub participants: Vec<usize>,
    /// Edge aggregators that participated in this fold (each one shipped a
    /// summary uplink to the root). Always `1` for a single-edge tier.
    pub edges_active: usize,
}

/// Serializable scheduler position for checkpointing.
///
/// [`Synchronous`] is stateless and exports the default (empty) state;
/// [`SemiAsync`] carries its fold counter plus the in-flight and buffered
/// jobs so a restored run replays bit-identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchedulerState {
    /// Completed folds (the global model's version).
    pub version: usize,
    /// Jobs still training, with precomputed outcomes and finish times.
    pub in_flight: Vec<Job>,
    /// Arrivals awaiting the next fold.
    pub buffer: Vec<Job>,
}

/// One dispatched client: where it started and when it will report back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// The client index.
    pub client: usize,
    /// Global-model version the client trained against.
    pub dispatch_version: usize,
    /// Virtual instant the result arrives at the server.
    pub finish: f64,
    /// The training result (computed eagerly at dispatch — training is a
    /// pure function of the dispatch-time global model and client state).
    pub outcome: LocalOutcome,
}

/// Owns *when* client results fold into the global model.
pub trait Scheduler: Send {
    /// Scheduler name (for logs and reports).
    fn name(&self) -> &'static str;

    /// Execute one server step: train / collect arrivals, advance the
    /// virtual clock, and return the outcomes the engine should fold.
    fn step(&mut self, t: usize, rt: &mut RuntimeCtx<'_>) -> StepOutput;

    /// Export checkpointable state (stateless schedulers return the
    /// default).
    fn export_state(&self) -> SchedulerState {
        SchedulerState::default()
    }

    /// Restore state previously produced by [`Scheduler::export_state`].
    fn restore_state(&mut self, _state: SchedulerState) {}
}

/// The paper's synchronous round loop: select, train everyone, wait for the
/// slowest participant (barrier), fold all outcomes at once.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl Scheduler for Synchronous {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn step(&mut self, t: usize, rt: &mut RuntimeCtx<'_>) -> StepOutput {
        let selected = rt.sampler.participants_with(t, rt.utility);
        let outcomes = rt
            .exec
            .train_batch(rt.algorithm, rt.global, rt.states, &selected, t);
        // per-client round durations, in selection order
        let durs: Vec<f64> = outcomes
            .iter()
            .zip(&selected)
            .map(|(o, &c)| {
                rt.profiles
                    .get(c)
                    .duration(o.train_flops, rt.comm_bytes_for(o))
            })
            .collect();
        // deadline cutoff: clients that would report after the deadline
        // are dropped from the fold (their work is never received, so it
        // is not charged); when *everyone* would miss it, the fastest
        // client is kept so the round still aggregates. `deadline == 0`
        // keeps the whole cohort — the pre-deadline path.
        let keep: Vec<bool> = if rt.deadline_secs > 0.0 {
            let mut keep: Vec<bool> = durs.iter().map(|&d| d <= rt.deadline_secs).collect();
            if keep.iter().all(|&k| !k) {
                let mut fastest = 0;
                for (i, &d) in durs.iter().enumerate() {
                    if d < durs[fastest] {
                        fastest = i;
                    }
                }
                keep[fastest] = true;
            }
            keep
        } else {
            vec![true; selected.len()]
        };
        // per-edge barrier: each edge aggregator waits for its slowest
        // *reporting* cohort member (a single-edge tier reduces to the
        // global barrier — the same running f64::max over the same
        // sequence); an edge that dropped a straggler waited until the
        // deadline before giving up on it
        let mut edge_dt: BTreeMap<usize, f64> = BTreeMap::new();
        for ((&d, &c), &k) in durs.iter().zip(&selected).zip(&keep) {
            let slot = edge_dt.entry(rt.edges.edge_of(c)).or_insert(0.0f64);
            *slot = slot.max(if k { d } else { rt.deadline_secs });
        }
        let durations: Vec<(usize, f64)> = edge_dt.into_iter().collect();
        rt.edges
            .advance_round(rt.clock, &durations, rt.edge_uplink_secs);
        let mut kept_clients = Vec::with_capacity(selected.len());
        let mut kept_outcomes = Vec::with_capacity(selected.len());
        for ((o, &c), &k) in outcomes.into_iter().zip(&selected).zip(&keep) {
            if k {
                kept_clients.push(c);
                kept_outcomes.push(o);
            }
        }
        let (fold, folded, active) = rt.stream_fold(&kept_clients, kept_outcomes);
        StepOutput {
            fold,
            folded,
            participants: kept_clients,
            edges_active: active.len(),
        }
    }
}

/// FedBuff-style buffered semi-asynchronous aggregation.
///
/// Keeps `clients_per_round` clients training at all times. Each server
/// step tops the in-flight pool back up from the idle clients (new
/// dispatches train against the *current* global model), then pops arrivals
/// in virtual-completion order until `buffer_size` results are buffered,
/// and folds them with staleness-discounted weights. One engine round ==
/// one fold, so `RoundRecord`s keep their meaning across modes.
///
/// **Caveat for server-stateful corrections:** the staleness discount is
/// exact for the streamed parameter average every method funnels through
/// (the [`ServerFold`] accumulation), but methods whose `server_fold` also
/// interprets outcomes *relative to the current global* — FedDyn's `h`
/// drift, SCAFFOLD's control-variate delta, MimeLite's momentum statistics
/// — see the fold-time global rather than the (older) model a stale client
/// actually trained from. Under staleness those corrections absorb the
/// server's own inter-fold movement: a modeling approximation inherent to
/// running sync-designed corrections asynchronously (an exact treatment
/// would need a per-job global snapshot at dispatch). All eight methods
/// run and converge; interpret their server-state dynamics under high
/// staleness with this in mind.
#[derive(Debug, Clone)]
pub struct SemiAsync {
    buffer_size: usize,
    staleness_exponent: f32,
    state: SchedulerState,
}

impl SemiAsync {
    /// Create a semi-async scheduler folding `buffer_size` arrivals per
    /// step with discount exponent `staleness_exponent`.
    ///
    /// # Panics
    /// Panics when `buffer_size == 0` or the exponent is negative.
    pub fn new(buffer_size: usize, staleness_exponent: f32) -> Self {
        assert!(buffer_size > 0, "buffer_size must be positive");
        assert!(
            staleness_exponent >= 0.0,
            "staleness exponent must be non-negative"
        );
        SemiAsync {
            buffer_size,
            staleness_exponent,
            state: SchedulerState::default(),
        }
    }

    /// Dispatch `batch` at the current clock against the current global.
    fn dispatch(&mut self, t: usize, rt: &mut RuntimeCtx<'_>, batch: &[usize]) {
        if batch.is_empty() {
            return;
        }
        let outcomes = rt
            .exec
            .train_batch(rt.algorithm, rt.global, rt.states, batch, t);
        for (outcome, &client) in outcomes.into_iter().zip(batch) {
            let duration = rt
                .profiles
                .get(client)
                .duration(outcome.train_flops, rt.comm_bytes_for(&outcome));
            self.state.in_flight.push(Job {
                client,
                dispatch_version: self.state.version,
                finish: rt.clock.now() + duration,
                outcome,
            });
        }
    }

    /// Index of the next arrival: earliest finish time, ties broken by
    /// client index (both deterministic), so pop order never depends on
    /// container order.
    fn next_arrival(&self) -> Option<usize> {
        self.state
            .in_flight
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.finish
                    .partial_cmp(&b.finish)
                    .expect("finite finish times") // lint:allow(panic) — finish times are finite by construction
                    .then(a.client.cmp(&b.client))
            })
            .map(|(i, _)| i)
    }
}

impl Scheduler for SemiAsync {
    fn name(&self) -> &'static str {
        "semiasync"
    }

    fn step(&mut self, t: usize, rt: &mut RuntimeCtx<'_>) -> StepOutput {
        // 1. top the in-flight pool back up from idle clients; the initial
        //    cohort (t = 1) is just the degenerate case of an empty pool.
        //    The busy list is at most K entries, and `select_idle` never
        //    materializes the idle pool, so this step costs O(K) — not
        //    O(N) — per fold.
        let desired = rt.exec.cfg.clients_per_round;
        let deficit = desired.saturating_sub(self.state.in_flight.len());
        if deficit > 0 {
            let mut busy: Vec<usize> = self.state.in_flight.iter().map(|j| j.client).collect();
            busy.sort_unstable();
            let picked = rt.sampler.select_idle(t, &busy, deficit);
            if !picked.is_empty() {
                let batch = rt.sampler.apply_failures(t, &picked);
                self.dispatch(t, rt, &batch);
            }
        }

        // 2. collect arrivals in virtual-completion order until the buffer
        //    holds B results (or nothing is left in flight).
        while self.state.buffer.len() < self.buffer_size && !self.state.in_flight.is_empty() {
            let idx = self.next_arrival().expect("in_flight non-empty"); // lint:allow(panic) — loop condition keeps in_flight non-empty
            let job = self.state.in_flight.swap_remove(idx);
            rt.clock.advance_to(job.finish);
            self.state.buffer.push(job);
        }

        // 3. fold: a scalar pass assigns staleness/weights relative to the
        //    current version, then each arrival streams into the running
        //    weighted sum and its parameter vector is released.
        for job in &mut self.state.buffer {
            let staleness = self.state.version - job.dispatch_version;
            job.outcome.staleness = staleness;
            job.outcome.agg_weight = staleness_weight(staleness, self.staleness_exponent);
        }
        let participants: Vec<usize> = self.state.buffer.iter().map(|j| j.client).collect();
        let outcomes: Vec<LocalOutcome> = self.state.buffer.drain(..).map(|j| j.outcome).collect();
        let (fold, folded, active) = rt.stream_fold(&participants, outcomes);
        // 4. with a real edge tier (E > 1) the participating edges relay
        //    the buffered arrivals: each catches up to the root (arrivals
        //    already advanced it) and ships its summary uplink. A
        //    single-edge tier skips this entirely — the root is colocated.
        if rt.edges.n_edges() > 1 {
            let durations: Vec<(usize, f64)> = active.iter().map(|&e| (e, 0.0)).collect();
            rt.edges
                .advance_round(rt.clock, &durations, rt.edge_uplink_secs);
        }
        self.state.version += 1;
        StepOutput {
            fold,
            folded,
            participants,
            edges_active: active.len(),
        }
    }

    fn export_state(&self) -> SchedulerState {
        self.state.clone()
    }

    fn restore_state(&mut self, state: SchedulerState) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_weight_is_positive_and_decreasing() {
        let mut prev = f64::INFINITY;
        for s in 0..50 {
            let w = staleness_weight(s, 0.5);
            assert!(w > 0.0);
            assert!(w < prev);
            prev = w;
        }
    }

    #[test]
    fn fresh_updates_are_undiscounted() {
        for a in [0.0f32, 0.5, 1.0, 3.0] {
            assert_eq!(staleness_weight(0, a), 1.0);
        }
        for s in 0..20 {
            assert_eq!(staleness_weight(s, 0.0), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "buffer_size")]
    fn semiasync_rejects_empty_buffer() {
        let _ = SemiAsync::new(0, 0.5);
    }
}
