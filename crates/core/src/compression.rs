//! Communication compression for both halves of the wire: client→server
//! updates and server→client delta broadcasts.
//!
//! FedTrip's resource argument is about *not* paying the overheads of
//! stateful methods; this module attacks the remaining cost every method
//! pays — shipping the model itself, in both directions. A [`Compressor`]
//! turns a dense f32 vector into a compact wire format with **exact** byte
//! accounting ([`Compressor::encoded_len`] is what the virtual clock and
//! the cost tables charge), and an optional error-feedback buffer
//! accumulates what each round's encoding dropped so the lost mass is
//! retransmitted later instead of vanishing. The same [`error_feedback_step`]
//! drives the client-side uplink buffer and the server-side residual that
//! backs compressed downlink delta broadcasts (the engine encodes
//! `Δ = w_global − w_broadcast` each round; see `DESIGN.md`).
//!
//! Three lossy codecs ship alongside the lossless [`Identity`]:
//!
//! * [`QuantizeQ8`] / [`QuantizeQ4`] — per-tensor affine integer
//!   quantization (`code = round((v - min) / scale)` with
//!   `scale = (max - min) / levels`), 8 or 4 bits per value plus an
//!   8-byte `(min, scale)` header;
//! * [`TopK`] — magnitude sparsification: only the `k = max(1, ceil(ρ n))`
//!   largest-magnitude entries travel, as `(u32 index, f32 value)` pairs.
//!
//! Codecs are pure functions of their input — no RNG, ties broken by
//! index — so compressed simulations stay bit-reproducible and
//! checkpoint/resume stays exact.
//!
//! ```
//! use fedtrip_core::compression::{CompressionKind, Compressor};
//!
//! let codec = CompressionKind::Q8.build();
//! let update = vec![0.5f32, -1.25, 0.0, 2.0];
//! let wire = codec.encode(&update);
//! assert_eq!(wire.len(), codec.encoded_len(update.len())); // exact accounting
//! let back = codec.decode(&wire, update.len());
//! for (x, y) in update.iter().zip(&back) {
//!     assert!((x - y).abs() <= (2.0 - (-1.25)) / 255.0); // one quantization step
//! }
//! ```

use fedtrip_tensor::compress::{
    dequantize_affine, pack_nibbles, quantize_affine, top_k_indices, unpack_nibbles,
};
use serde::{Deserialize, Serialize};

/// A communication codec for flat f32 parameter updates.
///
/// Implementations must be deterministic (no RNG, index-ordered
/// tie-breaks) and must honour the contract
/// `encode(x).len() == encoded_len(x.len())` — the engine charges
/// [`Compressor::encoded_len`] bytes to the virtual clock without
/// materializing every client's wire bytes.
pub trait Compressor: Send + Sync {
    /// Codec name for logs and reports (e.g. `q8`, `topk:0.01`).
    fn name(&self) -> String;

    /// Exact wire size in bytes of an encoded `n`-element vector.
    fn encoded_len(&self, n: usize) -> usize;

    /// Encode a dense update into the codec's wire format.
    fn encode(&self, x: &[f32]) -> Vec<u8>;

    /// Decode wire bytes produced by [`Compressor::encode`] back into a
    /// dense `n`-element vector.
    ///
    /// # Panics
    /// Panics when `bytes` is not a valid encoding for length `n`.
    fn decode(&self, bytes: &[u8], n: usize) -> Vec<f32>;

    /// `true` when the codec is the lossless identity — the executor skips
    /// the encode/decode round trip entirely, which keeps uncompressed runs
    /// bit-identical to the pre-compression engine.
    fn is_identity(&self) -> bool {
        false
    }
}

/// The lossless pass-through codec: dense little-endian f32, `4n` bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Compressor for Identity {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn encoded_len(&self, n: usize) -> usize {
        4 * n
    }

    fn encode(&self, x: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 * x.len());
        for v in x {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Vec<f32> {
        assert_eq!(bytes.len(), 4 * n, "identity payload length mismatch");
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    fn is_identity(&self) -> bool {
        true
    }
}

/// Read the `(min, scale)` header off a quantized payload.
fn read_header(bytes: &[u8]) -> (f32, f32) {
    let min = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let scale = f32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    (min, scale)
}

/// Per-tensor 8-bit affine quantization: an 8-byte `(min, scale)` header
/// followed by one byte per value — a fixed ~4x shrink with error at most
/// `scale / 2 = (max - min) / 510` per element.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizeQ8;

impl Compressor for QuantizeQ8 {
    fn name(&self) -> String {
        "q8".to_string()
    }

    fn encoded_len(&self, n: usize) -> usize {
        8 + n
    }

    fn encode(&self, x: &[f32]) -> Vec<u8> {
        let (min, scale, codes) = quantize_affine(x, 255);
        let mut out = Vec::with_capacity(8 + codes.len());
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&scale.to_le_bytes());
        out.extend_from_slice(&codes);
        out
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Vec<f32> {
        assert_eq!(bytes.len(), 8 + n, "q8 payload length mismatch");
        let (min, scale) = read_header(bytes);
        dequantize_affine(&bytes[8..], min, scale)
    }
}

/// Per-tensor 4-bit affine quantization: an 8-byte `(min, scale)` header
/// followed by two values per byte (low nibble first) — a ~8x shrink with
/// error at most `scale / 2 = (max - min) / 30` per element.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizeQ4;

impl Compressor for QuantizeQ4 {
    fn name(&self) -> String {
        "q4".to_string()
    }

    fn encoded_len(&self, n: usize) -> usize {
        8 + n.div_ceil(2)
    }

    fn encode(&self, x: &[f32]) -> Vec<u8> {
        let (min, scale, codes) = quantize_affine(x, 15);
        let mut out = Vec::with_capacity(self.encoded_len(x.len()));
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&scale.to_le_bytes());
        out.extend_from_slice(&pack_nibbles(&codes));
        out
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Vec<f32> {
        assert_eq!(
            bytes.len(),
            self.encoded_len(n),
            "q4 payload length mismatch"
        );
        let (min, scale) = read_header(bytes);
        dequantize_affine(&unpack_nibbles(&bytes[8..], n), min, scale)
    }
}

/// Top-k magnitude sparsification: only the `k = max(1, ceil(fraction n))`
/// largest-magnitude entries travel, each as a `(u32 index, f32 value)`
/// pair — `8k` bytes total. Everything else decodes to zero, which is what
/// makes error feedback matter: dropped coordinates accumulate client-side
/// and ride a later round.
#[derive(Debug, Clone, Copy)]
pub struct TopK {
    fraction: f32,
}

impl TopK {
    /// A top-k codec keeping the given fraction of coordinates.
    ///
    /// Each kept coordinate costs 8 wire bytes (index + value) against 4
    /// for a dense f32, so fractions above `0.5` *expand* the uplink —
    /// useful only for testing; `flrun` warns about them.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn new(fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "top-k fraction must be in (0, 1], got {fraction}"
        );
        TopK { fraction }
    }

    /// Number of coordinates kept for an `n`-element update
    /// (`max(1, ceil(fraction * n))`, capped at `n`).
    pub fn k_for(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (((n as f64) * self.fraction as f64).ceil() as usize).clamp(1, n)
    }
}

impl Compressor for TopK {
    fn name(&self) -> String {
        format!("topk:{}", self.fraction)
    }

    fn encoded_len(&self, n: usize) -> usize {
        8 * self.k_for(n)
    }

    fn encode(&self, x: &[f32]) -> Vec<u8> {
        let k = self.k_for(x.len());
        let idx = top_k_indices(x, k);
        let mut out = Vec::with_capacity(8 * idx.len());
        for &i in &idx {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&x[i as usize].to_le_bytes());
        }
        out
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Vec<f32> {
        assert_eq!(
            bytes.len(),
            self.encoded_len(n),
            "top-k payload length mismatch"
        );
        let mut out = vec![0.0f32; n];
        for pair in bytes.chunks_exact(8) {
            let i = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
            let v = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
            assert!(i < n, "top-k index {i} out of range for length {n}");
            out[i] = v;
        }
        out
    }
}

/// Which codec compresses client uploads, as a config/CLI-facing enum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompressionKind {
    /// No compression: dense f32 uploads (the paper's setting).
    None,
    /// 8-bit affine quantization ([`QuantizeQ8`]).
    Q8,
    /// 4-bit affine quantization ([`QuantizeQ4`]).
    Q4,
    /// Top-k sparsification keeping this fraction of coordinates
    /// ([`TopK`]). Fractions above `0.5` expand rather than shrink the
    /// uplink (8 bytes per kept coordinate vs 4 dense).
    TopK(f32),
}

impl CompressionKind {
    /// Parse `none` / `q8` / `q4` / `topk:FRACTION` (case-insensitive).
    pub fn parse(s: &str) -> Option<CompressionKind> {
        let l = s.to_ascii_lowercase();
        match l.as_str() {
            "none" | "identity" => return Some(CompressionKind::None),
            "q8" => return Some(CompressionKind::Q8),
            "q4" => return Some(CompressionKind::Q4),
            _ => {}
        }
        let frac: f32 = l.strip_prefix("topk:")?.parse().ok()?;
        if frac > 0.0 && frac <= 1.0 {
            Some(CompressionKind::TopK(frac))
        } else {
            None
        }
    }

    /// Display name (round-trips through [`CompressionKind::parse`]).
    pub fn name(&self) -> String {
        self.build().name()
    }

    /// Instantiate the codec.
    pub fn build(&self) -> Box<dyn Compressor> {
        match *self {
            CompressionKind::None => Box::new(Identity),
            CompressionKind::Q8 => Box::new(QuantizeQ8),
            CompressionKind::Q4 => Box::new(QuantizeQ4),
            CompressionKind::TopK(f) => Box::new(TopK::new(f)),
        }
    }
}

/// One client-side error-feedback step around a codec.
///
/// Adds the carried residual to the raw update, encodes/decodes the sum,
/// and returns `(decoded, wire_bytes)` while storing the new residual
/// (`compensated - decoded`) back into `residual`. With a `None` residual
/// the carry starts at zero. The decoded vector is exactly what the server
/// will see; the residual is exactly what it won't (yet).
pub fn error_feedback_step(
    codec: &dyn Compressor,
    update: &[f32],
    residual: &mut Option<Vec<f32>>,
    feedback: bool,
) -> (Vec<f32>, Vec<u8>) {
    let mut compensated = update.to_vec();
    if feedback {
        if let Some(r) = residual.as_ref() {
            debug_assert_eq!(r.len(), compensated.len(), "residual length mismatch");
            fedtrip_tensor::vecops::axpy(&mut compensated, 1.0, r);
        }
    }
    let wire = codec.encode(&compensated);
    debug_assert_eq!(
        wire.len(),
        codec.encoded_len(compensated.len()),
        "codec byte accounting violated"
    );
    let decoded = codec.decode(&wire, compensated.len());
    if feedback {
        let mut r = compensated;
        fedtrip_tensor::vecops::axpy(&mut r, -1.0, &decoded);
        *residual = Some(r);
    }
    (decoded, wire)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.73).sin() * 2.5).collect()
    }

    #[test]
    fn identity_roundtrip_is_bit_exact() {
        let x = sample(33);
        let c = Identity;
        let wire = c.encode(&x);
        assert_eq!(wire.len(), c.encoded_len(x.len()));
        assert_eq!(c.decode(&wire, x.len()), x);
    }

    #[test]
    fn q8_and_q4_respect_error_bounds() {
        let x = sample(257);
        let (min, max) = fedtrip_tensor::compress::minmax(&x);
        for (codec, levels) in [
            (Box::new(QuantizeQ8) as Box<dyn Compressor>, 255.0f32),
            (Box::new(QuantizeQ4), 15.0),
        ] {
            let wire = codec.encode(&x);
            assert_eq!(wire.len(), codec.encoded_len(x.len()));
            let back = codec.decode(&wire, x.len());
            let step = (max - min) / levels;
            for (a, b) in x.iter().zip(&back) {
                assert!(
                    (a - b).abs() <= step / 2.0 + 1e-5,
                    "{} error {} > {}",
                    codec.name(),
                    (a - b).abs(),
                    step / 2.0
                );
            }
        }
    }

    #[test]
    fn topk_keeps_the_largest_and_zeroes_the_rest() {
        let x = vec![0.1f32, -9.0, 0.2, 8.0, -0.3, 0.05, 7.0, -0.2];
        let c = TopK::new(0.375); // k = 3 of 8
        assert_eq!(c.k_for(x.len()), 3);
        let back = c.decode(&c.encode(&x), x.len());
        assert_eq!(back, vec![0.0, -9.0, 0.0, 8.0, 0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            CompressionKind::None,
            CompressionKind::Q8,
            CompressionKind::Q4,
            CompressionKind::TopK(0.01),
        ] {
            assert_eq!(CompressionKind::parse(&kind.name()), Some(kind));
        }
        assert_eq!(CompressionKind::parse("topk:0"), None);
        assert_eq!(CompressionKind::parse("topk:1.5"), None);
        assert_eq!(CompressionKind::parse("zip"), None);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn topk_rejects_zero_fraction() {
        let _ = TopK::new(0.0);
    }

    #[test]
    fn error_feedback_carries_the_dropped_mass() {
        // one coordinate of four survives each round; the feedback loop
        // conserves mass exactly (delivered + residual == everything sent)
        // and eventually transmits even the smallest coordinate
        let codec = TopK::new(0.25);
        let update = vec![4.0f32, 3.0, 2.0, 1.0];
        let rounds = 40;
        let mut residual = None;
        let mut delivered = vec![0.0f32; 4];
        for _ in 0..rounds {
            let (decoded, _) = error_feedback_step(&codec, &update, &mut residual, true);
            fedtrip_tensor::vecops::axpy(&mut delivered, 1.0, &decoded);
        }
        let carry = residual.expect("residual recorded");
        for i in 0..4 {
            let sent = update[i] * rounds as f32;
            assert!(
                (delivered[i] + carry[i] - sent).abs() < 1e-3,
                "coordinate {i}: {} + {} != {sent}",
                delivered[i],
                carry[i]
            );
            assert!(delivered[i] > 0.0, "coordinate {i} never transmitted");
        }
        // without feedback the small coordinates never travel
        let mut none = None;
        let (decoded, _) = error_feedback_step(&codec, &update, &mut none, false);
        assert_eq!(decoded, vec![4.0, 0.0, 0.0, 0.0]);
        assert!(none.is_none());
    }
}
