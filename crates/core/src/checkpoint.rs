//! Simulation checkpointing: pause a federated run, serialize everything
//! that defines its future (global model, per-client states, server-side
//! algorithm state, round records), and resume bit-identically later.
//!
//! Because every random stream in the engine is derived from
//! `(seed, domain tags, round, client)` rather than from mutable generator
//! state, a resumed run needs no RNG snapshot: replaying round `t+1` after a
//! restore produces exactly the bytes the uninterrupted run would have.

use crate::algorithms::{AlgorithmKind, ClientState, HyperParams};
use crate::engine::{RestoreError, RoundRecord, Simulation, SimulationConfig};
use crate::runtime::SchedulerState;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current snapshot format version. Bumped to 2 when the runtime split
/// added the virtual clock and scheduler (in-flight/buffer) state, to 3
/// when the compression subsystem added the codec/error-feedback config
/// fields and per-client error-feedback residuals, to 4 when client
/// states went **sparse** (a v4 snapshot stores `(client, state)` entries
/// only for clients that have participated), to 5 when the hierarchical
/// aggregation tier added the `edges` configuration knob and the per-edge
/// clock vector, to 6 when the availability layer added the
/// availability/churn/deadline configuration knobs and the server-side
/// utility table that utility-aware (Oort) selection scores from, and to
/// 7 when the downlink went compressible: the configuration gained the
/// `downlink_compression`/`resync_interval` knobs, round records gained
/// the downlink byte/ratio columns, client states gained the broadcast
/// sync epoch, scheduler jobs gained the dense-downlink bit, and the
/// snapshot gained the server's broadcast state (clients' reconstructed
/// view, the delta reference, the downlink error-feedback residual, and
/// the sync epoch). v6 snapshots migrate as the dense-downlink federation
/// they were (downlink codec off, sync epochs absent, empty broadcast
/// vectors, downlink byte columns derived from the cumulative totals they
/// already recorded) — dense downlink takes the exact legacy engine path,
/// so a migrated resume stays bit-identical (pinned by a test). v5
/// snapshots migrate as the always-on federation they were (availability
/// knobs zeroed, empty utility table); because the always-on model with a
/// non-Oort strategy takes the exact legacy selection path — and v5
/// predates the Oort variant — a migrated resume stays bit-identical
/// (pinned by a test). No availability *cursor* is stored beyond the
/// round counter: traces are pure functions of `(seed, client, round)`.
/// v4 snapshots migrate as the single-edge federation they were
/// (`edges = 1`, one edge clock colocated with the root), which is
/// behavior-preserving — the flat fold *is* the one-edge tree — so a
/// migrated resume stays bit-identical (pinned by a test).
/// v3 snapshots (dense state vectors) chain through the v4 migration:
/// dense entries indistinguishable from "never participated" are dropped,
/// which keeps a migrated *synchronous* resume bit-identical. A semi-async
/// v3 resume is faithful to *this* engine but not to the pre-v4 binary
/// that wrote it: the semi-async redispatch selection changed from
/// pool-materializing `select_among` to the O(K) `select_idle` in the
/// population-scale rework, so dispatches from the resume point follow the
/// new stream. Older versions predate fields that cannot be
/// reconstructed, so [`Checkpoint::load`] rejects them with a clear error
/// (the version is checked *before* full deserialization, so a foreign
/// snapshot reports its version instead of a confusing missing-field
/// error).
pub const CHECKPOINT_VERSION: u32 = 7;

/// One sparse client-state entry of a v4+ snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientEntry {
    /// Client id within the federation.
    pub client: usize,
    /// The client's persistent state.
    pub state: ClientState,
}

/// One utility-table entry of a v6+ snapshot: the most recent mean
/// training loss reported by a client, the statistical-utility half of
/// the Oort selection score. Stored sparse and in ascending client order
/// (the table is a `BTreeMap` server-side), so serialization is
/// deterministic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UtilityEntry {
    /// Client id within the federation.
    pub client: usize,
    /// Last observed mean training loss for that client.
    pub loss: f64,
}

/// A serialized simulation snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Snapshot format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Engine configuration.
    pub config: SimulationConfig,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Per-client persistent state — sparse: only clients that have
    /// participated carry an entry, in ascending client order.
    pub states: Vec<ClientEntry>,
    /// Server-side algorithm state (momentum buffers etc.).
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far.
    pub records: Vec<RoundRecord>,
    /// Root virtual-clock instant at capture (can sit past the last
    /// record's fold time while semi-async arrivals were being collected).
    pub clock: f64,
    /// Per-edge virtual-clock instants at capture, one per configured edge
    /// aggregator in edge order (`config.edges` entries; a single entry
    /// equal to `clock` for the flat `edges = 1` federation).
    pub edge_clocks: Vec<f64>,
    /// Scheduler position: fold counter plus in-flight / buffered jobs
    /// (empty for the stateless synchronous scheduler).
    pub scheduler: SchedulerState,
    /// Server-side utility table — last observed mean loss per client,
    /// sparse, ascending client order. Selection under the Oort strategy
    /// depends on it, so it must survive the round trip for a resumed run
    /// to stay bit-identical. The availability traces themselves need no
    /// snapshot state: they are pure functions of `(seed, client, round)`,
    /// so `round` above is the whole availability cursor.
    pub utility: Vec<UtilityEntry>,
    /// Clients' reconstructed view of the global model under delta
    /// broadcasts — empty when the downlink is dense (nothing to carry;
    /// restore re-anchors it to the global model if a delta-downlink
    /// configuration later resumes this snapshot).
    pub broadcast_view: Vec<f32>,
    /// Global parameters at the last broadcast (the delta reference
    /// `w_broadcast_base`); empty when the downlink is dense.
    pub broadcast_last: Vec<f32>,
    /// Server-side downlink error-feedback residual; empty when absent
    /// (dense downlink, or a delta run that has not dropped mass yet).
    pub broadcast_residual: Vec<f32>,
    /// Broadcast sync epoch — which full-model resync generation the
    /// clients' views belong to.
    pub broadcast_epoch: u64,
}

/// The pre-hierarchical-tier configuration layout (no `edges` field),
/// kept for v3/v4 snapshot migration. `Serialize` stays derived so tests
/// can author legacy fixtures.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct SimulationConfigV4 {
    pub dataset: fedtrip_data::synth::DatasetKind,
    pub model: fedtrip_models::ModelKind,
    pub heterogeneity: fedtrip_data::partition::HeterogeneityKind,
    pub n_clients: usize,
    pub clients_per_round: usize,
    pub rounds: usize,
    pub local_epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub momentum: f32,
    pub seed: u64,
    pub test_per_class: usize,
    pub client_samples_override: Option<usize>,
    pub eval_every: usize,
    pub selection: crate::runtime::SelectionStrategy,
    pub failure_prob: f32,
    pub lr_schedule: fedtrip_tensor::optim::LrSchedule,
    pub mode: crate::runtime::RunMode,
    pub device_het: f32,
    pub async_buffer: usize,
    pub staleness_exponent: f32,
    pub compression: crate::compression::CompressionKind,
    pub error_feedback: bool,
}

impl From<SimulationConfigV4> for SimulationConfigV5 {
    /// A pre-hierarchical configuration is the flat single-edge federation.
    fn from(v4: SimulationConfigV4) -> SimulationConfigV5 {
        SimulationConfigV5 {
            dataset: v4.dataset,
            model: v4.model,
            heterogeneity: v4.heterogeneity,
            n_clients: v4.n_clients,
            clients_per_round: v4.clients_per_round,
            rounds: v4.rounds,
            local_epochs: v4.local_epochs,
            batch_size: v4.batch_size,
            lr: v4.lr,
            momentum: v4.momentum,
            seed: v4.seed,
            test_per_class: v4.test_per_class,
            client_samples_override: v4.client_samples_override,
            eval_every: v4.eval_every,
            selection: v4.selection,
            failure_prob: v4.failure_prob,
            lr_schedule: v4.lr_schedule,
            mode: v4.mode,
            device_het: v4.device_het,
            async_buffer: v4.async_buffer,
            staleness_exponent: v4.staleness_exponent,
            compression: v4.compression,
            error_feedback: v4.error_feedback,
            edges: 1,
        }
    }
}

impl From<SimulationConfig> for SimulationConfigV4 {
    /// Project a current configuration onto the v3/v4 layout (drops the
    /// `edges` field and the availability/churn/deadline knobs) — used by
    /// tests that author legacy fixtures.
    fn from(cfg: SimulationConfig) -> SimulationConfigV4 {
        SimulationConfigV4 {
            dataset: cfg.dataset,
            model: cfg.model,
            heterogeneity: cfg.heterogeneity,
            n_clients: cfg.n_clients,
            clients_per_round: cfg.clients_per_round,
            rounds: cfg.rounds,
            local_epochs: cfg.local_epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            momentum: cfg.momentum,
            seed: cfg.seed,
            test_per_class: cfg.test_per_class,
            client_samples_override: cfg.client_samples_override,
            eval_every: cfg.eval_every,
            selection: cfg.selection,
            failure_prob: cfg.failure_prob,
            lr_schedule: cfg.lr_schedule,
            mode: cfg.mode,
            device_het: cfg.device_het,
            async_buffer: cfg.async_buffer,
            staleness_exponent: cfg.staleness_exponent,
            compression: cfg.compression,
            error_feedback: cfg.error_feedback,
        }
    }
}

/// The pre-availability-layer configuration layout (has `edges`, lacks
/// the availability/churn/deadline knobs), kept for v5 snapshot
/// migration. `Serialize` stays derived so tests can author legacy
/// fixtures.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct SimulationConfigV5 {
    pub dataset: fedtrip_data::synth::DatasetKind,
    pub model: fedtrip_models::ModelKind,
    pub heterogeneity: fedtrip_data::partition::HeterogeneityKind,
    pub n_clients: usize,
    pub clients_per_round: usize,
    pub rounds: usize,
    pub local_epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub momentum: f32,
    pub seed: u64,
    pub test_per_class: usize,
    pub client_samples_override: Option<usize>,
    pub eval_every: usize,
    pub selection: crate::runtime::SelectionStrategy,
    pub failure_prob: f32,
    pub lr_schedule: fedtrip_tensor::optim::LrSchedule,
    pub mode: crate::runtime::RunMode,
    pub device_het: f32,
    pub async_buffer: usize,
    pub staleness_exponent: f32,
    pub compression: crate::compression::CompressionKind,
    pub error_feedback: bool,
    pub edges: usize,
}

impl From<SimulationConfigV5> for SimulationConfigV6 {
    /// A legacy configuration describes an always-on federation: no
    /// diurnal cycle (`availability_period = 0`), no churn, no deadline.
    fn from(v5: SimulationConfigV5) -> SimulationConfigV6 {
        SimulationConfigV6 {
            dataset: v5.dataset,
            model: v5.model,
            heterogeneity: v5.heterogeneity,
            n_clients: v5.n_clients,
            clients_per_round: v5.clients_per_round,
            rounds: v5.rounds,
            local_epochs: v5.local_epochs,
            batch_size: v5.batch_size,
            lr: v5.lr,
            momentum: v5.momentum,
            seed: v5.seed,
            test_per_class: v5.test_per_class,
            client_samples_override: v5.client_samples_override,
            eval_every: v5.eval_every,
            selection: v5.selection,
            failure_prob: v5.failure_prob,
            lr_schedule: v5.lr_schedule,
            mode: v5.mode,
            device_het: v5.device_het,
            async_buffer: v5.async_buffer,
            staleness_exponent: v5.staleness_exponent,
            compression: v5.compression,
            error_feedback: v5.error_feedback,
            edges: v5.edges,
            availability_period: 0,
            availability_on_fraction: 0.5,
            churn_join_window: 0,
            churn_residency: 0,
            deadline_secs: 0.0,
        }
    }
}

impl From<SimulationConfig> for SimulationConfigV5 {
    /// Project a current configuration onto the v5 layout (drops the
    /// availability/churn/deadline knobs) — used by tests that author
    /// legacy fixtures.
    fn from(cfg: SimulationConfig) -> SimulationConfigV5 {
        SimulationConfigV5 {
            dataset: cfg.dataset,
            model: cfg.model,
            heterogeneity: cfg.heterogeneity,
            n_clients: cfg.n_clients,
            clients_per_round: cfg.clients_per_round,
            rounds: cfg.rounds,
            local_epochs: cfg.local_epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            momentum: cfg.momentum,
            seed: cfg.seed,
            test_per_class: cfg.test_per_class,
            client_samples_override: cfg.client_samples_override,
            eval_every: cfg.eval_every,
            selection: cfg.selection,
            failure_prob: cfg.failure_prob,
            lr_schedule: cfg.lr_schedule,
            mode: cfg.mode,
            device_het: cfg.device_het,
            async_buffer: cfg.async_buffer,
            staleness_exponent: cfg.staleness_exponent,
            compression: cfg.compression,
            error_feedback: cfg.error_feedback,
            edges: cfg.edges,
        }
    }
}

/// The pre-downlink-compression configuration layout (has the
/// availability knobs, lacks `downlink_compression`/`resync_interval`),
/// kept for v6 snapshot migration. `Serialize` stays derived so tests can
/// author legacy fixtures.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct SimulationConfigV6 {
    pub dataset: fedtrip_data::synth::DatasetKind,
    pub model: fedtrip_models::ModelKind,
    pub heterogeneity: fedtrip_data::partition::HeterogeneityKind,
    pub n_clients: usize,
    pub clients_per_round: usize,
    pub rounds: usize,
    pub local_epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub momentum: f32,
    pub seed: u64,
    pub test_per_class: usize,
    pub client_samples_override: Option<usize>,
    pub eval_every: usize,
    pub selection: crate::runtime::SelectionStrategy,
    pub failure_prob: f32,
    pub lr_schedule: fedtrip_tensor::optim::LrSchedule,
    pub mode: crate::runtime::RunMode,
    pub device_het: f32,
    pub async_buffer: usize,
    pub staleness_exponent: f32,
    pub compression: crate::compression::CompressionKind,
    pub error_feedback: bool,
    pub edges: usize,
    pub availability_period: usize,
    pub availability_on_fraction: f32,
    pub churn_join_window: usize,
    pub churn_residency: usize,
    pub deadline_secs: f32,
}

impl From<SimulationConfigV6> for SimulationConfig {
    /// A legacy configuration broadcast the dense full model every round:
    /// downlink codec off, no resync cadence.
    fn from(v6: SimulationConfigV6) -> SimulationConfig {
        SimulationConfig {
            dataset: v6.dataset,
            model: v6.model,
            heterogeneity: v6.heterogeneity,
            n_clients: v6.n_clients,
            clients_per_round: v6.clients_per_round,
            rounds: v6.rounds,
            local_epochs: v6.local_epochs,
            batch_size: v6.batch_size,
            lr: v6.lr,
            momentum: v6.momentum,
            seed: v6.seed,
            test_per_class: v6.test_per_class,
            client_samples_override: v6.client_samples_override,
            eval_every: v6.eval_every,
            selection: v6.selection,
            failure_prob: v6.failure_prob,
            lr_schedule: v6.lr_schedule,
            mode: v6.mode,
            device_het: v6.device_het,
            async_buffer: v6.async_buffer,
            staleness_exponent: v6.staleness_exponent,
            compression: v6.compression,
            error_feedback: v6.error_feedback,
            edges: v6.edges,
            availability_period: v6.availability_period,
            availability_on_fraction: v6.availability_on_fraction,
            churn_join_window: v6.churn_join_window,
            churn_residency: v6.churn_residency,
            deadline_secs: v6.deadline_secs,
            downlink_compression: crate::compression::CompressionKind::None,
            resync_interval: 0,
        }
    }
}

impl From<SimulationConfig> for SimulationConfigV6 {
    /// Project a current configuration onto the v6 layout (drops the
    /// downlink codec and resync knobs) — used by tests that author legacy
    /// fixtures.
    fn from(cfg: SimulationConfig) -> SimulationConfigV6 {
        SimulationConfigV6 {
            dataset: cfg.dataset,
            model: cfg.model,
            heterogeneity: cfg.heterogeneity,
            n_clients: cfg.n_clients,
            clients_per_round: cfg.clients_per_round,
            rounds: cfg.rounds,
            local_epochs: cfg.local_epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            momentum: cfg.momentum,
            seed: cfg.seed,
            test_per_class: cfg.test_per_class,
            client_samples_override: cfg.client_samples_override,
            eval_every: cfg.eval_every,
            selection: cfg.selection,
            failure_prob: cfg.failure_prob,
            lr_schedule: cfg.lr_schedule,
            mode: cfg.mode,
            device_het: cfg.device_het,
            async_buffer: cfg.async_buffer,
            staleness_exponent: cfg.staleness_exponent,
            compression: cfg.compression,
            error_feedback: cfg.error_feedback,
            edges: cfg.edges,
            availability_period: cfg.availability_period,
            availability_on_fraction: cfg.availability_on_fraction,
            churn_join_window: cfg.churn_join_window,
            churn_residency: cfg.churn_residency,
            deadline_secs: cfg.deadline_secs,
        }
    }
}

/// The pre-v7 per-client state layout (no broadcast sync epoch), kept for
/// v3–v6 snapshot migration. `Serialize` stays derived so tests can author
/// legacy fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct ClientStateV6 {
    pub last_round: Option<usize>,
    pub historical: Option<Vec<f32>>,
    pub correction: Option<Vec<f32>>,
    pub residual: Option<Vec<f32>>,
}

impl ClientStateV6 {
    /// The v3-era vacancy rule (no sync epoch to check).
    fn is_vacant(&self) -> bool {
        self.last_round.is_none()
            && self.historical.is_none()
            && self.correction.is_none()
            && self.residual.is_none()
    }
}

impl From<ClientStateV6> for ClientState {
    /// Legacy clients never saw a delta downlink: no sync epoch.
    fn from(s: ClientStateV6) -> ClientState {
        ClientState {
            last_round: s.last_round,
            historical: s.historical,
            correction: s.correction,
            residual: s.residual,
            sync_epoch: None,
        }
    }
}

impl From<ClientState> for ClientStateV6 {
    /// Project a current state onto the v6 layout (drops the sync epoch)
    /// — used by tests that author legacy fixtures.
    fn from(s: ClientState) -> ClientStateV6 {
        ClientStateV6 {
            last_round: s.last_round,
            historical: s.historical,
            correction: s.correction,
            residual: s.residual,
        }
    }
}

/// One sparse client-state entry of a v4–v6 snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct ClientEntryV6 {
    pub client: usize,
    pub state: ClientStateV6,
}

impl From<ClientEntryV6> for ClientEntry {
    fn from(e: ClientEntryV6) -> ClientEntry {
        ClientEntry {
            client: e.client,
            state: e.state.into(),
        }
    }
}

impl From<ClientEntry> for ClientEntryV6 {
    fn from(e: ClientEntry) -> ClientEntryV6 {
        ClientEntryV6 {
            client: e.client,
            state: e.state.into(),
        }
    }
}

/// The pre-v7 round-record layout (no downlink byte/ratio columns), kept
/// for v3–v6 snapshot migration. `Serialize` stays derived so tests can
/// author legacy fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct RoundRecordV6 {
    pub round: usize,
    pub accuracy: Option<f64>,
    pub mean_loss: f64,
    pub cum_comm_bytes: f64,
    pub cum_flops: f64,
    pub selected: Vec<usize>,
    pub virtual_time: f64,
    pub mean_staleness: f64,
    pub comm_bytes_up: f64,
    pub compression_ratio: f64,
}

impl From<RoundRecord> for RoundRecordV6 {
    /// Project a current record onto the v6 layout (drops the downlink
    /// columns) — used by tests that author legacy fixtures.
    fn from(r: RoundRecord) -> RoundRecordV6 {
        RoundRecordV6 {
            round: r.round,
            accuracy: r.accuracy,
            mean_loss: r.mean_loss,
            cum_comm_bytes: r.cum_comm_bytes,
            cum_flops: r.cum_flops,
            selected: r.selected,
            virtual_time: r.virtual_time,
            mean_staleness: r.mean_staleness,
            comm_bytes_up: r.comm_bytes_up,
            compression_ratio: r.compression_ratio,
        }
    }
}

/// Migrate legacy records: a pre-v7 round's downlink bytes are exactly
/// what its cumulative totals already accounted for —
/// `cum_comm_bytes(t) − cum_comm_bytes(t−1) − comm_bytes_up(t)` (legacy
/// downlinks were always dense, so the per-round split is recoverable) —
/// and the downlink ratio is 1.0 by definition.
fn migrate_records(records: Vec<RoundRecordV6>) -> Vec<RoundRecord> {
    let mut prev_cum = 0.0f64;
    records
        .into_iter()
        .map(|r| {
            let comm_bytes_down = (r.cum_comm_bytes - prev_cum - r.comm_bytes_up).max(0.0);
            prev_cum = r.cum_comm_bytes;
            RoundRecord {
                round: r.round,
                accuracy: r.accuracy,
                mean_loss: r.mean_loss,
                cum_comm_bytes: r.cum_comm_bytes,
                cum_flops: r.cum_flops,
                selected: r.selected,
                virtual_time: r.virtual_time,
                mean_staleness: r.mean_staleness,
                comm_bytes_up: r.comm_bytes_up,
                compression_ratio: r.compression_ratio,
                comm_bytes_down,
                compression_ratio_down: 1.0,
            }
        })
        .collect()
}

/// The pre-v7 scheduler job layout: its embedded outcome lacks the
/// dense-downlink bit. Kept for v3–v6 snapshot migration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct LocalOutcomeV6 {
    pub params: Vec<f32>,
    pub n_samples: usize,
    pub mean_loss: f64,
    pub iterations: usize,
    pub train_flops: f64,
    pub aux: Option<Vec<f32>>,
    pub staleness: usize,
    pub agg_weight: f64,
}

impl From<LocalOutcomeV6> for crate::algorithms::LocalOutcome {
    /// Legacy outcomes were dispatched under a dense downlink.
    fn from(o: LocalOutcomeV6) -> crate::algorithms::LocalOutcome {
        crate::algorithms::LocalOutcome {
            params: o.params,
            n_samples: o.n_samples,
            mean_loss: o.mean_loss,
            iterations: o.iterations,
            train_flops: o.train_flops,
            aux: o.aux,
            staleness: o.staleness,
            agg_weight: o.agg_weight,
            dense_down: true,
        }
    }
}

impl From<crate::algorithms::LocalOutcome> for LocalOutcomeV6 {
    /// Project a current outcome onto the v6 layout — used by tests that
    /// author legacy fixtures.
    fn from(o: crate::algorithms::LocalOutcome) -> LocalOutcomeV6 {
        LocalOutcomeV6 {
            params: o.params,
            n_samples: o.n_samples,
            mean_loss: o.mean_loss,
            iterations: o.iterations,
            train_flops: o.train_flops,
            aux: o.aux,
            staleness: o.staleness,
            agg_weight: o.agg_weight,
        }
    }
}

/// One dispatched client of a pre-v7 snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct JobV6 {
    pub client: usize,
    pub dispatch_version: usize,
    pub finish: f64,
    pub outcome: LocalOutcomeV6,
}

impl From<JobV6> for crate::runtime::scheduler::Job {
    fn from(j: JobV6) -> crate::runtime::scheduler::Job {
        crate::runtime::scheduler::Job {
            client: j.client,
            dispatch_version: j.dispatch_version,
            finish: j.finish,
            outcome: j.outcome.into(),
        }
    }
}

impl From<crate::runtime::scheduler::Job> for JobV6 {
    fn from(j: crate::runtime::scheduler::Job) -> JobV6 {
        JobV6 {
            client: j.client,
            dispatch_version: j.dispatch_version,
            finish: j.finish,
            outcome: j.outcome.into(),
        }
    }
}

/// The pre-v7 scheduler-state layout. Kept for v3–v6 snapshot migration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
#[allow(missing_docs)]
pub struct SchedulerStateV6 {
    pub version: usize,
    pub in_flight: Vec<JobV6>,
    pub buffer: Vec<JobV6>,
}

impl From<SchedulerStateV6> for SchedulerState {
    fn from(s: SchedulerStateV6) -> SchedulerState {
        SchedulerState {
            version: s.version,
            in_flight: s.in_flight.into_iter().map(Into::into).collect(),
            buffer: s.buffer.into_iter().map(Into::into).collect(),
        }
    }
}

impl From<SchedulerState> for SchedulerStateV6 {
    fn from(s: SchedulerState) -> SchedulerStateV6 {
        SchedulerStateV6 {
            version: s.version,
            in_flight: s.in_flight.into_iter().map(Into::into).collect(),
            buffer: s.buffer.into_iter().map(Into::into).collect(),
        }
    }
}

/// The v4 snapshot layout (sparse client states, but no edge tier), kept
/// for migration. `Serialize` stays derived so tests can author v4
/// fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
pub struct CheckpointV4 {
    /// Snapshot format version (always 4).
    pub version: u32,
    /// Engine configuration (legacy layout, no `edges`).
    pub config: SimulationConfigV4,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Sparse per-client state (legacy layout, no sync epoch).
    pub states: Vec<ClientEntryV6>,
    /// Server-side algorithm state.
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far (legacy layout, no downlink columns).
    pub records: Vec<RoundRecordV6>,
    /// Virtual-clock instant at capture.
    pub clock: f64,
    /// Scheduler position (legacy layout).
    pub scheduler: SchedulerStateV6,
}

impl CheckpointV4 {
    /// Migrate a v4 snapshot to the v5 layout: the federation it describes
    /// had no edge tier, which in v5 terms is `edges = 1` with the single
    /// edge clock colocated with the root. The one-edge tree performs the
    /// exact fold the flat engine did, so a migrated resume is
    /// bit-identical (pinned by a test). Chain a further `.migrate()` to
    /// reach the current layout.
    pub fn migrate(self) -> CheckpointV5 {
        CheckpointV5 {
            version: 5,
            config: self.config.into(),
            algorithm: self.algorithm,
            hyper: self.hyper,
            round: self.round,
            global: self.global,
            states: self.states,
            server_state: self.server_state,
            records: self.records,
            clock: self.clock,
            edge_clocks: vec![self.clock],
            scheduler: self.scheduler,
        }
    }
}

/// The v5 snapshot layout (edge tier, but no availability layer), kept
/// for migration. `Serialize` stays derived so tests can author v5
/// fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
pub struct CheckpointV5 {
    /// Snapshot format version (always 5).
    pub version: u32,
    /// Engine configuration (legacy layout, no availability knobs).
    pub config: SimulationConfigV5,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Sparse per-client state (legacy layout, no sync epoch).
    pub states: Vec<ClientEntryV6>,
    /// Server-side algorithm state.
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far (legacy layout, no downlink columns).
    pub records: Vec<RoundRecordV6>,
    /// Root virtual-clock instant at capture.
    pub clock: f64,
    /// Per-edge virtual-clock instants at capture.
    pub edge_clocks: Vec<f64>,
    /// Scheduler position (legacy layout).
    pub scheduler: SchedulerStateV6,
}

impl CheckpointV5 {
    /// Migrate a v5 snapshot to the v6 layout: the federation it describes
    /// was always-on with no utility history, so the availability knobs
    /// zero out and the utility table starts empty. Always-on with a
    /// legacy (non-Oort) strategy takes the exact pre-availability
    /// selection path, so a migrated resume is bit-identical (pinned by a
    /// test). Chain a further `.migrate()` to reach the current layout.
    pub fn migrate(self) -> CheckpointV6 {
        CheckpointV6 {
            version: 6,
            config: self.config.into(),
            algorithm: self.algorithm,
            hyper: self.hyper,
            round: self.round,
            global: self.global,
            states: self.states,
            server_state: self.server_state,
            records: self.records,
            clock: self.clock,
            edge_clocks: self.edge_clocks,
            scheduler: self.scheduler,
            utility: Vec::new(),
        }
    }
}

/// The v6 snapshot layout (availability layer, but a dense-only
/// downlink), kept for migration. `Serialize` stays derived so tests can
/// author v6 fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
pub struct CheckpointV6 {
    /// Snapshot format version (always 6).
    pub version: u32,
    /// Engine configuration (legacy layout, no downlink knobs).
    pub config: SimulationConfigV6,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Sparse per-client state (legacy layout, no sync epoch).
    pub states: Vec<ClientEntryV6>,
    /// Server-side algorithm state.
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far (legacy layout, no downlink columns).
    pub records: Vec<RoundRecordV6>,
    /// Root virtual-clock instant at capture.
    pub clock: f64,
    /// Per-edge virtual-clock instants at capture.
    pub edge_clocks: Vec<f64>,
    /// Scheduler position (legacy layout).
    pub scheduler: SchedulerStateV6,
    /// Server-side utility table.
    pub utility: Vec<UtilityEntry>,
}

impl CheckpointV6 {
    /// Migrate a v6 snapshot to the v7 layout: the federation it describes
    /// broadcast the dense full model every round, so the downlink codec
    /// zeroes out (off), sync epochs stay absent, the broadcast vectors
    /// stay empty (restore re-anchors them to the global model on demand),
    /// and each record's downlink bytes are recovered from the cumulative
    /// totals it already carried. Dense downlink takes the exact legacy
    /// engine path, so a migrated resume is bit-identical (pinned by a
    /// test).
    pub fn migrate(self) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: self.config.into(),
            algorithm: self.algorithm,
            hyper: self.hyper,
            round: self.round,
            global: self.global,
            states: self.states.into_iter().map(Into::into).collect(),
            server_state: self.server_state,
            records: migrate_records(self.records),
            clock: self.clock,
            edge_clocks: self.edge_clocks,
            scheduler: self.scheduler.into(),
            utility: self.utility,
            broadcast_view: Vec::new(),
            broadcast_last: Vec::new(),
            broadcast_residual: Vec::new(),
            broadcast_epoch: 0,
        }
    }
}

/// The v3 snapshot layout (dense client states), kept for migration.
/// `Serialize` stays derived so tests can author v3 fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
pub struct CheckpointV3 {
    /// Snapshot format version (always 3).
    pub version: u32,
    /// Engine configuration (legacy layout, no `edges`).
    pub config: SimulationConfigV4,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Dense per-client state (one entry per client, participant or not;
    /// legacy layout, no sync epoch).
    pub states: Vec<ClientStateV6>,
    /// Server-side algorithm state.
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far (legacy layout, no downlink columns).
    pub records: Vec<RoundRecordV6>,
    /// Virtual-clock instant at capture.
    pub clock: f64,
    /// Scheduler position (legacy layout).
    pub scheduler: SchedulerStateV6,
}

impl CheckpointV3 {
    /// Migrate a dense v3 snapshot to the sparse v4 layout: vacant states
    /// (indistinguishable from never-participated) are dropped; everything
    /// else carries over unchanged, so a resumed synchronous run is
    /// bit-identical (see [`CHECKPOINT_VERSION`] for the semi-async
    /// redispatch caveat). Chain `.migrate().migrate().migrate().migrate()`
    /// to reach the current layout.
    pub fn migrate(self) -> CheckpointV4 {
        CheckpointV4 {
            version: 4,
            config: self.config,
            algorithm: self.algorithm,
            hyper: self.hyper,
            round: self.round,
            global: self.global,
            states: self
                .states
                .into_iter()
                .enumerate()
                .filter(|(_, s)| !s.is_vacant())
                .map(|(client, state)| ClientEntryV6 { client, state })
                .collect(),
            server_state: self.server_state,
            records: self.records,
            clock: self.clock,
            scheduler: self.scheduler,
        }
    }
}

/// Wrap an I/O or parse failure as the uniform [`RestoreError::Snapshot`]
/// so every way a `--resume` can fail reports through one `Display` path.
fn snapshot_err(context: &str, detail: impl std::fmt::Display) -> RestoreError {
    RestoreError::Snapshot(format!("{context}: {detail}"))
}

impl Checkpoint {
    /// Capture a snapshot of a running simulation.
    ///
    /// `algorithm`/`hyper` must be the values the simulation was built with
    /// (the engine holds only the type-erased method).
    pub fn capture(sim: &Simulation, algorithm: AlgorithmKind, hyper: HyperParams) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: *sim.config(),
            algorithm,
            hyper,
            round: sim.rounds_done(),
            global: sim.global_params().to_vec(),
            states: sim
                .client_states()
                .iter()
                .map(|(client, state)| ClientEntry {
                    client,
                    state: state.clone(),
                })
                .collect(),
            server_state: sim.algorithm_server_state(),
            records: sim.records().to_vec(),
            clock: sim.virtual_time(),
            edge_clocks: sim.edge_clock_times(),
            scheduler: sim.scheduler_state(),
            utility: sim
                .utility_table()
                .export()
                .into_iter()
                .map(|(client, loss)| UtilityEntry { client, loss })
                .collect(),
            broadcast_view: sim.broadcast_state().0.to_vec(),
            broadcast_last: sim.broadcast_state().1.to_vec(),
            broadcast_residual: sim
                .broadcast_state()
                .2
                .map(<[f32]>::to_vec)
                .unwrap_or_default(),
            broadcast_epoch: sim.broadcast_state().3,
        }
    }

    /// Rebuild a simulation that continues exactly where the snapshot
    /// stopped.
    ///
    /// A snapshot that does not fit its own recorded configuration (wrong
    /// parameter count, client entries beyond the federation, edge-clock
    /// count diverging from `config.edges`, inconsistent record count)
    /// returns a clean [`RestoreError`] instead of panicking — this is
    /// also the path migrated legacy snapshots are validated through.
    pub fn restore(&self) -> Result<Simulation, RestoreError> {
        // a corrupted/hand-edited snapshot must not reach Simulation::new's
        // asserts: re-check its invariants as a clean error first
        self.config
            .validate()
            .map_err(RestoreError::InvalidConfig)?;
        // the scheduler's in-flight/buffered jobs also carry client ids;
        // validate them here so a shrunken-config or corrupt snapshot
        // errors cleanly instead of panicking rounds later
        for job in self
            .scheduler
            .in_flight
            .iter()
            .chain(&self.scheduler.buffer)
        {
            if job.client >= self.config.n_clients {
                return Err(RestoreError::InvalidClientStates(format!(
                    "scheduler job for client {} out of range for a federation of {}",
                    job.client, self.config.n_clients
                )));
            }
            if job.outcome.params.len() != self.global.len() {
                return Err(RestoreError::GlobalSizeMismatch {
                    snapshot: job.outcome.params.len(),
                    expected: self.global.len(),
                });
            }
        }
        // utility entries carry client ids too: reject out-of-range ones
        // here so a shrunken-config snapshot errors cleanly
        for e in &self.utility {
            if e.client >= self.config.n_clients {
                return Err(RestoreError::InvalidClientStates(format!(
                    "utility entry for client {} out of range for a federation of {}",
                    e.client, self.config.n_clients
                )));
            }
        }
        let alg = self.algorithm.build(&self.hyper);
        let mut sim = Simulation::new(self.config, alg);
        // order matters: Simulation::new ran on_init, which sized-and-zeroed
        // the server state; overwrite it now
        sim.restore_algorithm_state(self.server_state.clone());
        sim.restore_snapshot(
            self.round,
            self.global.clone(),
            self.states.iter().map(|e| (e.client, e.state.clone())),
            self.records.clone(),
        )?;
        sim.restore_runtime(self.clock, &self.edge_clocks, self.scheduler.clone())?;
        sim.restore_utility(self.utility.iter().map(|e| (e.client, e.loss)));
        // after restore_snapshot: empty broadcast vectors (dense captures,
        // pre-v7 migrations) re-anchor to the restored global model
        sim.restore_broadcast(
            self.broadcast_view.clone(),
            self.broadcast_last.clone(),
            (!self.broadcast_residual.is_empty()).then(|| self.broadcast_residual.clone()),
            self.broadcast_epoch,
        )?;
        Ok(sim)
    }

    /// Write the snapshot as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Read a snapshot back, migrating the previous formats transparently:
    /// v6 (no downlink compression) resumes as the dense-downlink
    /// federation it was, v5 (no availability layer) additionally resumes
    /// as the always-on federation it was with an empty utility table, v4
    /// (no edge tier) additionally resumes as the single-edge federation
    /// it was, v3 (dense states) additionally drops vacant entries.
    ///
    /// Every failure — unreadable file, malformed JSON, foreign `version`
    /// (including pre-versioning files, which lack the field entirely),
    /// fields that no longer deserialize — surfaces as
    /// [`RestoreError::Snapshot`], so callers report `--resume` problems
    /// through one uniform [`std::fmt::Display`] path.
    pub fn load(path: &Path) -> Result<Checkpoint, RestoreError> {
        let body = fs::read_to_string(path)
            .map_err(|e| snapshot_err(&format!("cannot read {}", path.display()), e))?;
        // check the version off the raw JSON first: a snapshot from another
        // format version should report that version, not whatever
        // missing-field error full deserialization happens to hit first
        let value: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| snapshot_err("malformed snapshot JSON", e))?;
        let version = value.get("version").and_then(|v| v.as_u64());
        match version {
            Some(v) if v == CHECKPOINT_VERSION as u64 => {
                let ckpt: Checkpoint = serde::Deserialize::from_value(&value).map_err(|e| {
                    snapshot_err(
                        &format!("snapshot does not fit the v{CHECKPOINT_VERSION} layout"),
                        e,
                    )
                })?;
                Ok(ckpt)
            }
            Some(6) => {
                let legacy: CheckpointV6 = serde::Deserialize::from_value(&value)
                    .map_err(|e| snapshot_err("snapshot does not fit the v6 layout", e))?;
                Ok(legacy.migrate())
            }
            Some(5) => {
                let legacy: CheckpointV5 = serde::Deserialize::from_value(&value)
                    .map_err(|e| snapshot_err("snapshot does not fit the v5 layout", e))?;
                Ok(legacy.migrate().migrate())
            }
            Some(4) => {
                let legacy: CheckpointV4 = serde::Deserialize::from_value(&value)
                    .map_err(|e| snapshot_err("snapshot does not fit the v4 layout", e))?;
                Ok(legacy.migrate().migrate().migrate())
            }
            Some(3) => {
                let legacy: CheckpointV3 = serde::Deserialize::from_value(&value)
                    .map_err(|e| snapshot_err("snapshot does not fit the v3 layout", e))?;
                Ok(legacy.migrate().migrate().migrate().migrate())
            }
            other => Err(RestoreError::Snapshot(format!(
                "checkpoint format version {} unsupported (expected {}, 6, 5, 4, or 3)",
                other
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "<missing>".into()),
                CHECKPOINT_VERSION
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedtrip_data::partition::HeterogeneityKind;
    use fedtrip_data::synth::DatasetKind;
    use fedtrip_models::ModelKind;

    fn cfg(seed: u64) -> SimulationConfig {
        SimulationConfig {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::TinyMlp,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 6,
            clients_per_round: 3,
            rounds: 8,
            batch_size: 25,
            lr: 0.05,
            seed,
            test_per_class: 5,
            client_samples_override: Some(50),
            ..SimulationConfig::default()
        }
    }

    fn resume_equals_straight_cfg(config: SimulationConfig, kind: AlgorithmKind) {
        let hyper = HyperParams::default();
        // straight run: 8 rounds
        let mut straight = Simulation::new(config, kind.build(&hyper));
        straight.run();

        // split run: 4 rounds, checkpoint, restore, 4 more
        let mut first = Simulation::new(config, kind.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let ckpt = Checkpoint::capture(&first, kind, hyper);
        let mut resumed = ckpt.restore().expect("self-consistent checkpoint");
        resumed.run();

        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "{}: resumed run diverged from straight run",
            kind.name()
        );
        assert_eq!(straight.records().len(), resumed.records().len());
    }

    fn resume_equals_straight(kind: AlgorithmKind) {
        resume_equals_straight_cfg(cfg(31), kind);
    }

    #[test]
    fn resume_is_bit_identical_stateless_method() {
        resume_equals_straight(AlgorithmKind::FedTrip);
    }

    #[test]
    fn resume_is_bit_identical_server_stateful_methods() {
        // these keep server-side vectors that must survive the round trip
        resume_equals_straight(AlgorithmKind::SlowMo);
        resume_equals_straight(AlgorithmKind::FedDyn);
        resume_equals_straight(AlgorithmKind::Scaffold);
        resume_equals_straight(AlgorithmKind::MimeLite);
    }

    #[test]
    fn resume_is_bit_identical_under_compression_with_error_feedback() {
        use crate::compression::CompressionKind;
        // top-k exercises the residual state hardest: most of each update
        // is dropped and must survive the JSON round trip exactly
        let mut c = cfg(35);
        c.compression = CompressionKind::TopK(0.25);
        c.error_feedback = true;
        resume_equals_straight_cfg(c, AlgorithmKind::FedTrip);
        let mut c = cfg(36);
        c.compression = CompressionKind::Q8;
        c.error_feedback = true;
        c.mode = crate::runtime::RunMode::SemiAsync;
        c.device_het = 4.0;
        resume_equals_straight_cfg(c, AlgorithmKind::FedAvg);
    }

    #[test]
    fn resume_is_bit_identical_with_edge_tier() {
        // the per-edge clocks and the tree fold must survive the snapshot:
        // split an E=3 run and compare to the straight E=3 run, both modes
        let mut c = cfg(45);
        c.edges = 3;
        resume_equals_straight_cfg(c, AlgorithmKind::FedTrip);
        let mut c = cfg(46);
        c.edges = 2;
        c.mode = crate::runtime::RunMode::SemiAsync;
        c.device_het = 4.0;
        resume_equals_straight_cfg(c, AlgorithmKind::Scaffold);
    }

    #[test]
    fn resume_is_bit_identical_under_availability_churn_and_oort() {
        // the utility table feeds Oort selection, so it must survive the
        // round trip for the resumed half to pick the same clients; the
        // availability traces themselves are pure functions of
        // (seed, client, round) and need no snapshot state
        let mut c = cfg(50);
        c.selection = crate::runtime::SelectionStrategy::Oort;
        c.availability_period = 6;
        c.availability_on_fraction = 0.5;
        c.churn_join_window = 4;
        c.churn_residency = 8;
        c.device_het = 4.0;
        resume_equals_straight_cfg(c, AlgorithmKind::FedTrip);
        // deadline dropout charges the barrier differently: resume must
        // reproduce the kept/dropped split exactly
        let mut c = cfg(51);
        c.deadline_secs = 30.0;
        c.device_het = 4.0;
        resume_equals_straight_cfg(c, AlgorithmKind::FedAvg);
    }

    #[test]
    fn resume_is_bit_identical_under_delta_downlink_across_resync() {
        use crate::compression::CompressionKind;
        // capture at round 4 with resyncs at rounds 3 and 6: the resumed
        // half must carry the broadcast view / delta reference / downlink
        // residual and the per-client sync epochs across the boundary,
        // then replay round 6's resync identically
        let mut c = cfg(54);
        c.downlink_compression = CompressionKind::Q8;
        c.resync_interval = 3;
        resume_equals_straight_cfg(c, AlgorithmKind::FedTrip);
        // bidirectional compression with uplink error feedback, plus churn
        // joiners receiving on-demand dense bases after the resume point
        let mut c = cfg(55);
        c.compression = CompressionKind::Q8;
        c.error_feedback = true;
        c.downlink_compression = CompressionKind::Q4;
        c.resync_interval = 5;
        c.churn_join_window = 4;
        c.churn_residency = 8;
        resume_equals_straight_cfg(c, AlgorithmKind::FedAvg);
    }

    #[test]
    fn checkpoint_carries_broadcast_state() {
        use crate::compression::CompressionKind;
        let hyper = HyperParams::default();
        let mut c = cfg(56);
        c.downlink_compression = CompressionKind::TopK(0.1);
        c.resync_interval = 0; // never resync: the residual accumulates
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        for _ in 0..3 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        let n = ckpt.global.len();
        assert_eq!(ckpt.broadcast_view.len(), n);
        assert_eq!(ckpt.broadcast_last.len(), n);
        assert_eq!(ckpt.broadcast_residual.len(), n, "top-k must drop mass");
        assert!(
            ckpt.states.iter().all(|e| e.state.sync_epoch == Some(0)),
            "participants must be stamped with the broadcast epoch"
        );
        let restored = ckpt.restore().expect("self-consistent checkpoint");
        let (view, last, residual, epoch) = restored.broadcast_state();
        assert_eq!(view, &ckpt.broadcast_view[..]);
        assert_eq!(last, &ckpt.broadcast_last[..]);
        assert_eq!(residual, Some(&ckpt.broadcast_residual[..]));
        assert_eq!(epoch, ckpt.broadcast_epoch);

        // dense downlink: nothing to carry
        let mut sim = Simulation::new(cfg(57), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(ckpt.broadcast_view.is_empty());
        assert!(ckpt.broadcast_last.is_empty());
        assert!(ckpt.broadcast_residual.is_empty());
        assert!(ckpt.states.iter().all(|e| e.state.sync_epoch.is_none()));
    }

    #[test]
    fn v6_snapshot_migrates_as_dense_downlink_and_resumes_bit_identically() {
        let hyper = HyperParams::default();
        let config = cfg(58);
        // straight 8-round run as ground truth
        let mut straight = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        straight.run();

        // 4 rounds, then author a v6 (pre-downlink) snapshot by hand
        let mut first = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let cur = Checkpoint::capture(&first, AlgorithmKind::FedTrip, hyper);
        let legacy = CheckpointV6 {
            version: 6,
            config: cur.config.into(),
            algorithm: cur.algorithm,
            hyper: cur.hyper,
            round: cur.round,
            global: cur.global.clone(),
            states: cur.states.iter().cloned().map(Into::into).collect(),
            server_state: cur.server_state.clone(),
            records: cur.records.iter().cloned().map(Into::into).collect(),
            clock: cur.clock,
            edge_clocks: cur.edge_clocks.clone(),
            scheduler: cur.scheduler.clone().into(),
            utility: cur.utility.clone(),
        };
        let path = std::env::temp_dir().join("fedtrip_ckpt_v6_migration_test.json");
        fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();

        let migrated = Checkpoint::load(&path).unwrap();
        assert_eq!(migrated.version, CHECKPOINT_VERSION);
        assert_eq!(
            migrated.config.downlink_compression,
            crate::compression::CompressionKind::None,
            "v6 federations broadcast dense"
        );
        assert_eq!(migrated.config.resync_interval, 0);
        assert!(migrated.broadcast_view.is_empty());
        assert_eq!(migrated.broadcast_epoch, 0);
        assert!(migrated.states.iter().all(|e| e.state.sync_epoch.is_none()));
        // downlink bytes recovered from the cumulative totals
        let mut prev = 0.0;
        for (got, want) in migrated.records.iter().zip(&cur.records) {
            assert!(
                (got.comm_bytes_down - (want.cum_comm_bytes - prev - want.comm_bytes_up)).abs()
                    < 1e-6,
                "round {}: derived {} bytes",
                got.round,
                got.comm_bytes_down
            );
            assert_eq!(got.compression_ratio_down, 1.0);
            prev = want.cum_comm_bytes;
        }
        let mut resumed = migrated.restore().expect("migrated checkpoint restores");
        resumed.run();
        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "v6-migrated resume diverged from the straight run"
        );
    }

    #[test]
    fn checkpoint_carries_utility_table() {
        let hyper = HyperParams::default();
        let mut c = cfg(52);
        c.selection = crate::runtime::SelectionStrategy::Oort;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        for _ in 0..3 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(!ckpt.utility.is_empty(), "no utility captured");
        // ascending client order (deterministic serialization)
        assert!(ckpt.utility.windows(2).all(|w| w[0].client < w[1].client));
        let restored = ckpt.restore().expect("self-consistent checkpoint");
        let got = restored.utility_table().export();
        let want: Vec<(usize, f64)> = ckpt.utility.iter().map(|e| (e.client, e.loss)).collect();
        assert_eq!(got, want, "utility table diverged across the round trip");
    }

    #[test]
    fn restore_rejects_out_of_range_utility_entries() {
        let hyper = HyperParams::default();
        let mut c = cfg(53);
        c.selection = crate::runtime::SelectionStrategy::Oort;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.utility.push(UtilityEntry {
            client: ckpt.config.n_clients,
            loss: 1.0,
        });
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("utility entry"), "{err}");
    }

    #[test]
    fn checkpoint_carries_error_feedback_residuals() {
        use crate::compression::CompressionKind;
        let hyper = HyperParams::default();
        let mut c = cfg(37);
        c.compression = CompressionKind::TopK(0.1);
        c.error_feedback = true;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        for _ in 0..3 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(
            ckpt.states.iter().any(|e| e.state.residual.is_some()),
            "no residual captured"
        );
        let restored = ckpt.restore().expect("self-consistent checkpoint");
        for e in &ckpt.states {
            assert_eq!(
                Some(&e.state.residual),
                restored.client_states().get(e.client).map(|s| &s.residual),
                "client {}",
                e.client
            );
        }
    }

    #[test]
    fn load_rejects_foreign_format_versions() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(33), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.version = CHECKPOINT_VERSION + 1;
        let path = std::env::temp_dir().join("fedtrip_ckpt_version_test.json");
        ckpt.save(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, RestoreError::Snapshot(_)),
            "unexpected error: {err}"
        );
        assert!(
            err.to_string().contains("version"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn load_reports_missing_file_and_bad_json_uniformly() {
        let err = Checkpoint::load(Path::new("/nonexistent/fedtrip_ckpt.json")).unwrap_err();
        assert!(matches!(err, RestoreError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("cannot load checkpoint"), "{err}");

        let path = std::env::temp_dir().join("fedtrip_ckpt_bad_json_test.json");
        fs::write(&path, "{ not json").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(matches!(err, RestoreError::Snapshot(_)), "{err}");
    }

    #[test]
    fn capture_records_clock_and_scheduler_state() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(34), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert!(ckpt.clock > 0.0, "virtual clock should have advanced");
        // flat federation: one edge clock, colocated with the root
        assert_eq!(ckpt.edge_clocks.len(), 1);
        // sync scheduler is stateless
        assert!(ckpt.scheduler.in_flight.is_empty());
    }

    #[test]
    fn capture_carries_one_clock_per_edge() {
        let hyper = HyperParams::default();
        let mut c = cfg(47);
        c.edges = 3;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert_eq!(ckpt.edge_clocks.len(), 3);
        // every edge clock sits at or behind the root
        assert!(ckpt.edge_clocks.iter().all(|&t| t <= ckpt.clock));
    }

    #[test]
    fn save_load_round_trip() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(32), AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..2 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedTrip, hyper);
        let path = std::env::temp_dir().join("fedtrip_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.round, 2);
        assert_eq!(loaded.global, ckpt.global);
        assert_eq!(loaded.edge_clocks, ckpt.edge_clocks);
        let mut resumed = loaded.restore().expect("self-consistent checkpoint");
        resumed.run_round();
        assert_eq!(resumed.rounds_done(), 3);
    }

    #[test]
    fn snapshots_are_sparse_in_participants() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(40), AlgorithmKind::FedTrip.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedTrip, hyper);
        // one round of K=3: at most 3 entries, never one per client
        assert!(!ckpt.states.is_empty());
        assert!(ckpt.states.len() <= 3, "{} entries", ckpt.states.len());
        // ascending client order (deterministic serialization)
        assert!(ckpt.states.windows(2).all(|w| w[0].client < w[1].client));
    }

    #[test]
    fn v4_snapshot_migrates_as_single_edge_and_resumes_bit_identically() {
        let hyper = HyperParams::default();
        let config = cfg(48);
        // straight 8-round run as ground truth
        let mut straight = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        straight.run();

        // 4 rounds, then author a v4 (edge-less) snapshot by hand
        let mut first = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let cur = Checkpoint::capture(&first, AlgorithmKind::FedTrip, hyper);
        let legacy = CheckpointV4 {
            version: 4,
            config: cur.config.into(),
            algorithm: cur.algorithm,
            hyper: cur.hyper,
            round: cur.round,
            global: cur.global.clone(),
            states: cur.states.iter().cloned().map(Into::into).collect(),
            server_state: cur.server_state.clone(),
            records: cur.records.iter().cloned().map(Into::into).collect(),
            clock: cur.clock,
            scheduler: cur.scheduler.clone().into(),
        };
        let path = std::env::temp_dir().join("fedtrip_ckpt_v4_migration_test.json");
        fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();

        let migrated = Checkpoint::load(&path).unwrap();
        assert_eq!(migrated.version, CHECKPOINT_VERSION);
        assert_eq!(migrated.config.edges, 1);
        assert_eq!(migrated.config.availability_period, 0, "always-on");
        assert_eq!(migrated.edge_clocks, vec![cur.clock]);
        assert!(migrated.utility.is_empty());
        let mut resumed = migrated.restore().expect("migrated checkpoint restores");
        resumed.run();
        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "v4-migrated resume diverged from the straight run"
        );
    }

    #[test]
    fn v5_snapshot_migrates_as_always_on_and_resumes_bit_identically() {
        let hyper = HyperParams::default();
        let config = cfg(49);
        // straight 8-round run as ground truth
        let mut straight = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        straight.run();

        // 4 rounds, then author a v5 (pre-availability) snapshot by hand
        let mut first = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let cur = Checkpoint::capture(&first, AlgorithmKind::FedTrip, hyper);
        let legacy = CheckpointV5 {
            version: 5,
            config: cur.config.into(),
            algorithm: cur.algorithm,
            hyper: cur.hyper,
            round: cur.round,
            global: cur.global.clone(),
            states: cur.states.iter().cloned().map(Into::into).collect(),
            server_state: cur.server_state.clone(),
            records: cur.records.iter().cloned().map(Into::into).collect(),
            clock: cur.clock,
            edge_clocks: cur.edge_clocks.clone(),
            scheduler: cur.scheduler.clone().into(),
        };
        let path = std::env::temp_dir().join("fedtrip_ckpt_v5_migration_test.json");
        fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();

        let migrated = Checkpoint::load(&path).unwrap();
        assert_eq!(migrated.version, CHECKPOINT_VERSION);
        assert_eq!(migrated.config.availability_period, 0, "always-on");
        assert_eq!(migrated.config.churn_join_window, 0);
        assert_eq!(migrated.config.deadline_secs, 0.0);
        assert!(migrated.utility.is_empty());
        let mut resumed = migrated.restore().expect("migrated checkpoint restores");
        resumed.run();
        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "v5-migrated resume diverged from the straight run"
        );
    }

    #[test]
    fn v3_dense_snapshot_migrates_and_resumes_bit_identically() {
        let hyper = HyperParams::default();
        let config = cfg(41);
        // straight 8-round run as ground truth
        let mut straight = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        straight.run();

        // 4 rounds, then author a v3 (dense-states) snapshot by hand
        let mut first = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let cur = Checkpoint::capture(&first, AlgorithmKind::FedTrip, hyper);
        let dense: Vec<ClientStateV6> = (0..config.n_clients)
            .map(|c| {
                first
                    .client_states()
                    .get(c)
                    .cloned()
                    .unwrap_or_default()
                    .into()
            })
            .collect();
        let legacy = CheckpointV3 {
            version: 3,
            config: cur.config.into(),
            algorithm: cur.algorithm,
            hyper: cur.hyper,
            round: cur.round,
            global: cur.global.clone(),
            states: dense,
            server_state: cur.server_state.clone(),
            records: cur.records.iter().cloned().map(Into::into).collect(),
            clock: cur.clock,
            scheduler: cur.scheduler.clone().into(),
        };
        let path = std::env::temp_dir().join("fedtrip_ckpt_v3_migration_test.json");
        fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();

        let migrated = Checkpoint::load(&path).unwrap();
        assert_eq!(migrated.version, CHECKPOINT_VERSION);
        let mut resumed = migrated.restore().expect("migrated checkpoint restores");
        resumed.run();
        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "v3-migrated resume diverged from the straight run"
        );
    }

    #[test]
    fn restore_reports_clean_error_on_config_mismatch() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(42), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        // shrink the federation below a recorded participant id: the old
        // engine hard-asserted here; now it must surface a RestoreError
        let max_client = ckpt.states.iter().map(|e| e.client).max().unwrap();
        ckpt.config.n_clients = max_client; // ids are 0-based: now out of range
        ckpt.config.clients_per_round = ckpt.config.clients_per_round.min(max_client);
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(
            matches!(err, crate::engine::RestoreError::InvalidClientStates(_)),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");

        // records/round mismatch is also a clean error
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.round = 5;
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(
            matches!(err, crate::engine::RestoreError::RecordsMismatch { .. }),
            "unexpected error: {err}"
        );

        // edge-clock count diverging from config.edges is a clean error too
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.edge_clocks.push(0.0);
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(
            matches!(err, crate::engine::RestoreError::EdgeClocksMismatch { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("edge clocks"), "{err}");
    }

    #[test]
    fn restore_rejects_inconsistent_config_without_panicking() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(44), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let good = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        // each corruption used to hit a Simulation::new assert (panic);
        // all must now surface as a clean RestoreError
        type Corrupt = fn(&mut Checkpoint);
        let corruptions: [(&str, Corrupt); 5] = [
            ("K > N", |c| {
                c.config.clients_per_round = c.config.n_clients + 1
            }),
            ("zero rounds", |c| c.config.rounds = 0),
            ("zero eval_every", |c| c.config.eval_every = 0),
            ("sub-unit device_het", |c| c.config.device_het = 0.5),
            ("zero edges", |c| c.config.edges = 0),
        ];
        for (name, corrupt) in corruptions {
            let mut ckpt = good.clone();
            corrupt(&mut ckpt);
            let err = ckpt.restore().map(|_| ()).unwrap_err();
            assert!(
                matches!(err, crate::engine::RestoreError::InvalidConfig(_)),
                "{name}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn restore_rejects_out_of_range_scheduler_jobs() {
        let hyper = HyperParams::default();
        let mut c = cfg(43);
        c.mode = crate::runtime::RunMode::SemiAsync;
        c.device_het = 4.0;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(
            !ckpt.scheduler.in_flight.is_empty(),
            "semi-async capture should carry in-flight jobs"
        );
        // shrink the federation below a dispatched client id: must be a
        // clean RestoreError, not a panic rounds after resume
        let max_client = ckpt
            .scheduler
            .in_flight
            .iter()
            .chain(&ckpt.scheduler.buffer)
            .map(|j| j.client)
            .max()
            .unwrap();
        ckpt.config.n_clients = max_client;
        ckpt.config.clients_per_round = ckpt.config.clients_per_round.min(max_client.max(1));
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("scheduler job"), "{err}");
    }
}
