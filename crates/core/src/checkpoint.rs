//! Simulation checkpointing: pause a federated run, serialize everything
//! that defines its future (global model, per-client states, server-side
//! algorithm state, round records), and resume bit-identically later.
//!
//! Because every random stream in the engine is derived from
//! `(seed, domain tags, round, client)` rather than from mutable generator
//! state, a resumed run needs no RNG snapshot: replaying round `t+1` after a
//! restore produces exactly the bytes the uninterrupted run would have.

use crate::algorithms::{AlgorithmKind, ClientState, HyperParams};
use crate::engine::{RoundRecord, Simulation, SimulationConfig};
use crate::runtime::SchedulerState;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current snapshot format version. Bumped to 2 when the runtime split
/// added the virtual clock and scheduler (in-flight/buffer) state, and to 3
/// when the compression subsystem added the codec/error-feedback config
/// fields and per-client error-feedback residuals. Older snapshots predate
/// those fields and cannot be resumed faithfully, so [`Checkpoint::load`]
/// rejects any other version with a clear error (the version is checked
/// *before* full deserialization, so a foreign snapshot reports its version
/// instead of a confusing missing-field error).
pub const CHECKPOINT_VERSION: u32 = 3;

/// A serialized simulation snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Snapshot format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Engine configuration.
    pub config: SimulationConfig,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Per-client persistent state.
    pub states: Vec<ClientState>,
    /// Server-side algorithm state (momentum buffers etc.).
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far.
    pub records: Vec<RoundRecord>,
    /// Virtual-clock instant at capture (can sit past the last record's
    /// fold time while semi-async arrivals were being collected).
    pub clock: f64,
    /// Scheduler position: fold counter plus in-flight / buffered jobs
    /// (empty for the stateless synchronous scheduler).
    pub scheduler: SchedulerState,
}

impl Checkpoint {
    /// Capture a snapshot of a running simulation.
    ///
    /// `algorithm`/`hyper` must be the values the simulation was built with
    /// (the engine holds only the type-erased method).
    pub fn capture(sim: &Simulation, algorithm: AlgorithmKind, hyper: HyperParams) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: *sim.config(),
            algorithm,
            hyper,
            round: sim.rounds_done(),
            global: sim.global_params().to_vec(),
            states: sim.client_states().to_vec(),
            server_state: sim.algorithm_server_state(),
            records: sim.records().to_vec(),
            clock: sim.virtual_time(),
            scheduler: sim.scheduler_state(),
        }
    }

    /// Rebuild a simulation that continues exactly where the snapshot
    /// stopped.
    pub fn restore(&self) -> Simulation {
        let alg = self.algorithm.build(&self.hyper);
        let mut sim = Simulation::new(self.config, alg);
        // order matters: Simulation::new ran on_init, which sized-and-zeroed
        // the server state; overwrite it now
        sim.restore_algorithm_state(self.server_state.clone());
        sim.restore_snapshot(
            self.round,
            self.global.clone(),
            self.states.clone(),
            self.records.clone(),
        );
        sim.restore_runtime(self.clock, self.scheduler.clone());
        sim
    }

    /// Write the snapshot as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Read a snapshot back.
    ///
    /// Rejects snapshots whose `version` differs from
    /// [`CHECKPOINT_VERSION`] (including pre-versioning files, which lack
    /// the field entirely).
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let body = fs::read_to_string(path)?;
        // check the version off the raw JSON first: a snapshot from another
        // format version should report that version, not whatever
        // missing-field error full deserialization happens to hit first
        let value: serde_json::Value = serde_json::from_str(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let version = value.get("version").and_then(|v| v.as_u64());
        if version != Some(CHECKPOINT_VERSION as u64) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint format version {} unsupported (expected {})",
                    version.map(|v| v.to_string()).unwrap_or_else(|| "<missing>".into()),
                    CHECKPOINT_VERSION
                ),
            ));
        }
        let ckpt: Checkpoint = serde::Deserialize::from_value(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedtrip_data::partition::HeterogeneityKind;
    use fedtrip_data::synth::DatasetKind;
    use fedtrip_models::ModelKind;

    fn cfg(seed: u64) -> SimulationConfig {
        SimulationConfig {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::TinyMlp,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 6,
            clients_per_round: 3,
            rounds: 8,
            batch_size: 25,
            lr: 0.05,
            seed,
            test_per_class: 5,
            client_samples_override: Some(50),
            ..SimulationConfig::default()
        }
    }

    fn resume_equals_straight_cfg(config: SimulationConfig, kind: AlgorithmKind) {
        let hyper = HyperParams::default();
        // straight run: 8 rounds
        let mut straight = Simulation::new(config, kind.build(&hyper));
        straight.run();

        // split run: 4 rounds, checkpoint, restore, 4 more
        let mut first = Simulation::new(config, kind.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let ckpt = Checkpoint::capture(&first, kind, hyper);
        let mut resumed = ckpt.restore();
        resumed.run();

        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "{}: resumed run diverged from straight run",
            kind.name()
        );
        assert_eq!(straight.records().len(), resumed.records().len());
    }

    fn resume_equals_straight(kind: AlgorithmKind) {
        resume_equals_straight_cfg(cfg(31), kind);
    }

    #[test]
    fn resume_is_bit_identical_stateless_method() {
        resume_equals_straight(AlgorithmKind::FedTrip);
    }

    #[test]
    fn resume_is_bit_identical_server_stateful_methods() {
        // these keep server-side vectors that must survive the round trip
        resume_equals_straight(AlgorithmKind::SlowMo);
        resume_equals_straight(AlgorithmKind::FedDyn);
        resume_equals_straight(AlgorithmKind::Scaffold);
        resume_equals_straight(AlgorithmKind::MimeLite);
    }

    #[test]
    fn resume_is_bit_identical_under_compression_with_error_feedback() {
        use crate::compression::CompressionKind;
        // top-k exercises the residual state hardest: most of each update
        // is dropped and must survive the JSON round trip exactly
        let mut c = cfg(35);
        c.compression = CompressionKind::TopK(0.25);
        c.error_feedback = true;
        resume_equals_straight_cfg(c, AlgorithmKind::FedTrip);
        let mut c = cfg(36);
        c.compression = CompressionKind::Q8;
        c.error_feedback = true;
        c.mode = crate::runtime::RunMode::SemiAsync;
        c.device_het = 4.0;
        resume_equals_straight_cfg(c, AlgorithmKind::FedAvg);
    }

    #[test]
    fn checkpoint_carries_error_feedback_residuals() {
        use crate::compression::CompressionKind;
        let hyper = HyperParams::default();
        let mut c = cfg(37);
        c.compression = CompressionKind::TopK(0.1);
        c.error_feedback = true;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        for _ in 0..3 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(
            ckpt.states.iter().any(|s| s.residual.is_some()),
            "no residual captured"
        );
        let restored = ckpt.restore();
        for (a, b) in ckpt.states.iter().zip(restored.client_states()) {
            assert_eq!(a.residual, b.residual);
        }
    }

    #[test]
    fn load_rejects_foreign_format_versions() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(33), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.version = CHECKPOINT_VERSION + 1;
        let path = std::env::temp_dir().join("fedtrip_ckpt_version_test.json");
        ckpt.save(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("version"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn capture_records_clock_and_scheduler_state() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(34), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert!(ckpt.clock > 0.0, "virtual clock should have advanced");
        // sync scheduler is stateless
        assert!(ckpt.scheduler.in_flight.is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(32), AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..2 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedTrip, hyper);
        let path = std::env::temp_dir().join("fedtrip_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.round, 2);
        assert_eq!(loaded.global, ckpt.global);
        let mut resumed = loaded.restore();
        resumed.run_round();
        assert_eq!(resumed.rounds_done(), 3);
    }
}
