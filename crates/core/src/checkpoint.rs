//! Simulation checkpointing: pause a federated run, serialize everything
//! that defines its future (global model, per-client states, server-side
//! algorithm state, round records), and resume bit-identically later.
//!
//! Because every random stream in the engine is derived from
//! `(seed, domain tags, round, client)` rather than from mutable generator
//! state, a resumed run needs no RNG snapshot: replaying round `t+1` after a
//! restore produces exactly the bytes the uninterrupted run would have.

use crate::algorithms::{AlgorithmKind, ClientState, HyperParams};
use crate::engine::{RestoreError, RoundRecord, Simulation, SimulationConfig};
use crate::runtime::SchedulerState;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current snapshot format version. Bumped to 2 when the runtime split
/// added the virtual clock and scheduler (in-flight/buffer) state, to 3
/// when the compression subsystem added the codec/error-feedback config
/// fields and per-client error-feedback residuals, and to 4 when client
/// states went **sparse**: a v4 snapshot stores `(client, state)` entries
/// only for clients that have participated, so checkpoint size scales with
/// participants instead of federation size. v3 snapshots (dense state
/// vectors) are migrated on load — dense entries that are
/// indistinguishable from "never participated" are dropped, which is
/// behavior-preserving, so a migrated *synchronous* resume stays
/// bit-identical (pinned by a test). A semi-async v3 resume is faithful
/// to *this* engine but not to the pre-v4 binary that wrote it: the
/// semi-async redispatch selection changed from pool-materializing
/// `select_among` to the O(K) `select_idle` in the population-scale
/// rework, so dispatches from the resume point follow the new stream.
/// Older versions predate fields that cannot be reconstructed, so
/// [`Checkpoint::load`] rejects them with a clear error (the version is
/// checked *before* full deserialization, so a foreign snapshot reports
/// its version instead of a confusing missing-field error).
pub const CHECKPOINT_VERSION: u32 = 4;

/// One sparse client-state entry of a v4 snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientEntry {
    /// Client id within the federation.
    pub client: usize,
    /// The client's persistent state.
    pub state: ClientState,
}

/// A serialized simulation snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Snapshot format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Engine configuration.
    pub config: SimulationConfig,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Per-client persistent state — sparse: only clients that have
    /// participated carry an entry, in ascending client order.
    pub states: Vec<ClientEntry>,
    /// Server-side algorithm state (momentum buffers etc.).
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far.
    pub records: Vec<RoundRecord>,
    /// Virtual-clock instant at capture (can sit past the last record's
    /// fold time while semi-async arrivals were being collected).
    pub clock: f64,
    /// Scheduler position: fold counter plus in-flight / buffered jobs
    /// (empty for the stateless synchronous scheduler).
    pub scheduler: SchedulerState,
}

/// The v3 snapshot layout (dense client states), kept for migration.
/// `Serialize` stays derived so tests can author v3 fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[doc(hidden)]
pub struct CheckpointV3 {
    /// Snapshot format version (always 3).
    pub version: u32,
    /// Engine configuration.
    pub config: SimulationConfig,
    /// Which method was running.
    pub algorithm: AlgorithmKind,
    /// Its hyper-parameters.
    pub hyper: HyperParams,
    /// Rounds completed.
    pub round: usize,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Dense per-client state (one entry per client, participant or not).
    pub states: Vec<ClientState>,
    /// Server-side algorithm state.
    pub server_state: Vec<Vec<f32>>,
    /// Round records so far.
    pub records: Vec<RoundRecord>,
    /// Virtual-clock instant at capture.
    pub clock: f64,
    /// Scheduler position.
    pub scheduler: SchedulerState,
}

impl CheckpointV3 {
    /// Migrate a dense v3 snapshot to the sparse v4 layout: vacant states
    /// (indistinguishable from never-participated) are dropped; everything
    /// else carries over unchanged, so a resumed synchronous run is
    /// bit-identical (see [`CHECKPOINT_VERSION`] for the semi-async
    /// redispatch caveat).
    pub fn migrate(self) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: self.config,
            algorithm: self.algorithm,
            hyper: self.hyper,
            round: self.round,
            global: self.global,
            states: self
                .states
                .into_iter()
                .enumerate()
                .filter(|(_, s)| !s.is_vacant())
                .map(|(client, state)| ClientEntry { client, state })
                .collect(),
            server_state: self.server_state,
            records: self.records,
            clock: self.clock,
            scheduler: self.scheduler,
        }
    }
}

impl Checkpoint {
    /// Capture a snapshot of a running simulation.
    ///
    /// `algorithm`/`hyper` must be the values the simulation was built with
    /// (the engine holds only the type-erased method).
    pub fn capture(sim: &Simulation, algorithm: AlgorithmKind, hyper: HyperParams) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: *sim.config(),
            algorithm,
            hyper,
            round: sim.rounds_done(),
            global: sim.global_params().to_vec(),
            states: sim
                .client_states()
                .iter()
                .map(|(client, state)| ClientEntry {
                    client,
                    state: state.clone(),
                })
                .collect(),
            server_state: sim.algorithm_server_state(),
            records: sim.records().to_vec(),
            clock: sim.virtual_time(),
            scheduler: sim.scheduler_state(),
        }
    }

    /// Rebuild a simulation that continues exactly where the snapshot
    /// stopped.
    ///
    /// A snapshot that does not fit its own recorded configuration (wrong
    /// parameter count, client entries beyond the federation, inconsistent
    /// record count) returns a clean [`RestoreError`] instead of panicking
    /// — this is also the path v3→v4 migrated snapshots are validated
    /// through.
    pub fn restore(&self) -> Result<Simulation, RestoreError> {
        // a corrupted/hand-edited snapshot must not reach Simulation::new's
        // asserts: re-check its invariants as a clean error first
        self.config
            .validate()
            .map_err(RestoreError::InvalidConfig)?;
        // the scheduler's in-flight/buffered jobs also carry client ids;
        // validate them here so a shrunken-config or corrupt snapshot
        // errors cleanly instead of panicking rounds later
        for job in self
            .scheduler
            .in_flight
            .iter()
            .chain(&self.scheduler.buffer)
        {
            if job.client >= self.config.n_clients {
                return Err(RestoreError::InvalidClientStates(format!(
                    "scheduler job for client {} out of range for a federation of {}",
                    job.client, self.config.n_clients
                )));
            }
            if job.outcome.params.len() != self.global.len() {
                return Err(RestoreError::GlobalSizeMismatch {
                    snapshot: job.outcome.params.len(),
                    expected: self.global.len(),
                });
            }
        }
        let alg = self.algorithm.build(&self.hyper);
        let mut sim = Simulation::new(self.config, alg);
        // order matters: Simulation::new ran on_init, which sized-and-zeroed
        // the server state; overwrite it now
        sim.restore_algorithm_state(self.server_state.clone());
        sim.restore_snapshot(
            self.round,
            self.global.clone(),
            self.states.iter().map(|e| (e.client, e.state.clone())),
            self.records.clone(),
        )?;
        sim.restore_runtime(self.clock, self.scheduler.clone());
        Ok(sim)
    }

    /// Write the snapshot as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Read a snapshot back, migrating the previous (dense-state) v3
    /// format transparently.
    ///
    /// Rejects snapshots whose `version` is neither [`CHECKPOINT_VERSION`]
    /// nor 3 (including pre-versioning files, which lack the field
    /// entirely).
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let body = fs::read_to_string(path)?;
        // check the version off the raw JSON first: a snapshot from another
        // format version should report that version, not whatever
        // missing-field error full deserialization happens to hit first
        let value: serde_json::Value = serde_json::from_str(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let version = value.get("version").and_then(|v| v.as_u64());
        match version {
            Some(v) if v == CHECKPOINT_VERSION as u64 => {
                let ckpt: Checkpoint = serde::Deserialize::from_value(&value)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(ckpt)
            }
            Some(3) => {
                let legacy: CheckpointV3 = serde::Deserialize::from_value(&value)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(legacy.migrate())
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint format version {} unsupported (expected {} or 3)",
                    other
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "<missing>".into()),
                    CHECKPOINT_VERSION
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedtrip_data::partition::HeterogeneityKind;
    use fedtrip_data::synth::DatasetKind;
    use fedtrip_models::ModelKind;

    fn cfg(seed: u64) -> SimulationConfig {
        SimulationConfig {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::TinyMlp,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 6,
            clients_per_round: 3,
            rounds: 8,
            batch_size: 25,
            lr: 0.05,
            seed,
            test_per_class: 5,
            client_samples_override: Some(50),
            ..SimulationConfig::default()
        }
    }

    fn resume_equals_straight_cfg(config: SimulationConfig, kind: AlgorithmKind) {
        let hyper = HyperParams::default();
        // straight run: 8 rounds
        let mut straight = Simulation::new(config, kind.build(&hyper));
        straight.run();

        // split run: 4 rounds, checkpoint, restore, 4 more
        let mut first = Simulation::new(config, kind.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let ckpt = Checkpoint::capture(&first, kind, hyper);
        let mut resumed = ckpt.restore().expect("self-consistent checkpoint");
        resumed.run();

        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "{}: resumed run diverged from straight run",
            kind.name()
        );
        assert_eq!(straight.records().len(), resumed.records().len());
    }

    fn resume_equals_straight(kind: AlgorithmKind) {
        resume_equals_straight_cfg(cfg(31), kind);
    }

    #[test]
    fn resume_is_bit_identical_stateless_method() {
        resume_equals_straight(AlgorithmKind::FedTrip);
    }

    #[test]
    fn resume_is_bit_identical_server_stateful_methods() {
        // these keep server-side vectors that must survive the round trip
        resume_equals_straight(AlgorithmKind::SlowMo);
        resume_equals_straight(AlgorithmKind::FedDyn);
        resume_equals_straight(AlgorithmKind::Scaffold);
        resume_equals_straight(AlgorithmKind::MimeLite);
    }

    #[test]
    fn resume_is_bit_identical_under_compression_with_error_feedback() {
        use crate::compression::CompressionKind;
        // top-k exercises the residual state hardest: most of each update
        // is dropped and must survive the JSON round trip exactly
        let mut c = cfg(35);
        c.compression = CompressionKind::TopK(0.25);
        c.error_feedback = true;
        resume_equals_straight_cfg(c, AlgorithmKind::FedTrip);
        let mut c = cfg(36);
        c.compression = CompressionKind::Q8;
        c.error_feedback = true;
        c.mode = crate::runtime::RunMode::SemiAsync;
        c.device_het = 4.0;
        resume_equals_straight_cfg(c, AlgorithmKind::FedAvg);
    }

    #[test]
    fn checkpoint_carries_error_feedback_residuals() {
        use crate::compression::CompressionKind;
        let hyper = HyperParams::default();
        let mut c = cfg(37);
        c.compression = CompressionKind::TopK(0.1);
        c.error_feedback = true;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        for _ in 0..3 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(
            ckpt.states.iter().any(|e| e.state.residual.is_some()),
            "no residual captured"
        );
        let restored = ckpt.restore().expect("self-consistent checkpoint");
        for e in &ckpt.states {
            assert_eq!(
                Some(&e.state.residual),
                restored.client_states().get(e.client).map(|s| &s.residual),
                "client {}",
                e.client
            );
        }
    }

    #[test]
    fn load_rejects_foreign_format_versions() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(33), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.version = CHECKPOINT_VERSION + 1;
        let path = std::env::temp_dir().join("fedtrip_ckpt_version_test.json");
        ckpt.save(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("version"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn capture_records_clock_and_scheduler_state() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(34), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert!(ckpt.clock > 0.0, "virtual clock should have advanced");
        // sync scheduler is stateless
        assert!(ckpt.scheduler.in_flight.is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(32), AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..2 {
            sim.run_round();
        }
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedTrip, hyper);
        let path = std::env::temp_dir().join("fedtrip_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.round, 2);
        assert_eq!(loaded.global, ckpt.global);
        let mut resumed = loaded.restore().expect("self-consistent checkpoint");
        resumed.run_round();
        assert_eq!(resumed.rounds_done(), 3);
    }

    #[test]
    fn snapshots_are_sparse_in_participants() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(40), AlgorithmKind::FedTrip.build(&hyper));
        sim.run_round();
        let ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedTrip, hyper);
        // one round of K=3: at most 3 entries, never one per client
        assert!(!ckpt.states.is_empty());
        assert!(ckpt.states.len() <= 3, "{} entries", ckpt.states.len());
        // ascending client order (deterministic serialization)
        assert!(ckpt.states.windows(2).all(|w| w[0].client < w[1].client));
    }

    #[test]
    fn v3_dense_snapshot_migrates_and_resumes_bit_identically() {
        let hyper = HyperParams::default();
        let config = cfg(41);
        // straight 8-round run as ground truth
        let mut straight = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        straight.run();

        // 4 rounds, then author a v3 (dense-states) snapshot by hand
        let mut first = Simulation::new(config, AlgorithmKind::FedTrip.build(&hyper));
        for _ in 0..4 {
            first.run_round();
        }
        let v4 = Checkpoint::capture(&first, AlgorithmKind::FedTrip, hyper);
        let dense: Vec<ClientState> = (0..config.n_clients)
            .map(|c| first.client_states().get(c).cloned().unwrap_or_default())
            .collect();
        let legacy = CheckpointV3 {
            version: 3,
            config: v4.config,
            algorithm: v4.algorithm,
            hyper: v4.hyper,
            round: v4.round,
            global: v4.global.clone(),
            states: dense,
            server_state: v4.server_state.clone(),
            records: v4.records.clone(),
            clock: v4.clock,
            scheduler: v4.scheduler.clone(),
        };
        let path = std::env::temp_dir().join("fedtrip_ckpt_v3_migration_test.json");
        fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();

        let migrated = Checkpoint::load(&path).unwrap();
        assert_eq!(migrated.version, CHECKPOINT_VERSION);
        let mut resumed = migrated.restore().expect("migrated checkpoint restores");
        resumed.run();
        assert_eq!(
            straight.global_params(),
            resumed.global_params(),
            "v3-migrated resume diverged from the straight run"
        );
    }

    #[test]
    fn restore_reports_clean_error_on_config_mismatch() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(42), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        // shrink the federation below a recorded participant id: the old
        // engine hard-asserted here; now it must surface a RestoreError
        let max_client = ckpt.states.iter().map(|e| e.client).max().unwrap();
        ckpt.config.n_clients = max_client; // ids are 0-based: now out of range
        ckpt.config.clients_per_round = ckpt.config.clients_per_round.min(max_client);
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(
            matches!(err, crate::engine::RestoreError::InvalidClientStates(_)),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");

        // records/round mismatch is also a clean error
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        ckpt.round = 5;
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(
            matches!(err, crate::engine::RestoreError::RecordsMismatch { .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn restore_rejects_inconsistent_config_without_panicking() {
        let hyper = HyperParams::default();
        let mut sim = Simulation::new(cfg(44), AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let good = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        // each corruption used to hit a Simulation::new assert (panic);
        // all must now surface as a clean RestoreError
        type Corrupt = fn(&mut Checkpoint);
        let corruptions: [(&str, Corrupt); 4] = [
            ("K > N", |c| {
                c.config.clients_per_round = c.config.n_clients + 1
            }),
            ("zero rounds", |c| c.config.rounds = 0),
            ("zero eval_every", |c| c.config.eval_every = 0),
            ("sub-unit device_het", |c| c.config.device_het = 0.5),
        ];
        for (name, corrupt) in corruptions {
            let mut ckpt = good.clone();
            corrupt(&mut ckpt);
            let err = ckpt.restore().map(|_| ()).unwrap_err();
            assert!(
                matches!(err, crate::engine::RestoreError::InvalidConfig(_)),
                "{name}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn restore_rejects_out_of_range_scheduler_jobs() {
        let hyper = HyperParams::default();
        let mut c = cfg(43);
        c.mode = crate::runtime::RunMode::SemiAsync;
        c.device_het = 4.0;
        let mut sim = Simulation::new(c, AlgorithmKind::FedAvg.build(&hyper));
        sim.run_round();
        let mut ckpt = Checkpoint::capture(&sim, AlgorithmKind::FedAvg, hyper);
        assert!(
            !ckpt.scheduler.in_flight.is_empty(),
            "semi-async capture should carry in-flight jobs"
        );
        // shrink the federation below a dispatched client id: must be a
        // clean RestoreError, not a panic rounds after resume
        let max_client = ckpt
            .scheduler
            .in_flight
            .iter()
            .chain(&ckpt.scheduler.buffer)
            .map(|j| j.client)
            .max()
            .unwrap();
        ckpt.config.n_clients = max_client;
        ckpt.config.clients_per_round = ckpt.config.clients_per_round.min(max_client.max(1));
        let err = ckpt.restore().map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("scheduler job"), "{err}");
    }
}
